"""PS-Lite baseline: centralized scheduler, non-overlap synchronization.

Reproduces the three properties the paper attributes PS-Lite's slowdown
to (§II-B, Figures 4a/5a/6):

1. **one global synchronization model** enforced by a central scheduler
   that records every worker's progress;
2. **non-overlap synchronization** — a fast worker may not even *send*
   its pull requests until the slowest worker has updated **all** M
   parameter shards and the scheduler has granted the pull (Figure 5a's
   extra dotted round-trip).  Within one iteration the push phase and the
   pull phase are strictly serialized, and the barrier releases all
   workers' pulls at once (an incast burst on every server);
3. **default slicing** — range partition of the raw key space
   (:class:`~repro.core.keyspace.DefaultSlicer`), which concentrates most
   parameter bytes on one server.

Servers themselves hold no conditions — they apply pushes and answer
pulls immediately; all waiting happens at the scheduler.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Dict, List

from repro.core.driver import StepContext
from repro.core.keyspace import RangeKeySlicer
from repro.core.models import SyncModel, asp
from repro.sim.engine import Signal, Timeout
from repro.sim.network import Message, NicSpec
from repro.sim.runner import (
    FluentPSSimRunner,
    SimConfig,
    SimRunResult,
    _PendingPull,
    _PullMsg,
    _PushMsg,
)
from repro.sim.trace import SpanKind

SCHEDULER_NODE = "scheduler"


@dataclass
class _ReportMsg:
    worker: int
    progress: int


@dataclass
class _GrantMsg:
    worker: int
    progress: int


class PSLiteSimRunner(FluentPSSimRunner):
    """PS-Lite-style execution on the same simulated cluster.

    ``config.sync`` selects the scheduler's global model via its nominal
    staleness: BSP (s=0), bounded delay (s>0), or ASP (s=∞) — the models
    PS-Lite supports (Table I).  The DPR/staleness metrics of the shard
    servers are not meaningful here (servers never delay); the scheduler
    wait is what shows up as communication time.
    """

    def __init__(self, config: SimConfig):
        if not isinstance(config.sync, SyncModel):
            raise ValueError("PS-Lite runs one global model, not per-server models")
        self.scheduler_staleness = config.sync.staleness
        config = replace(
            config,
            sync=asp(),  # shard servers answer immediately; scheduler gates
            slicer=config.slicer or RangeKeySlicer(),
        )
        super().__init__(config)
        # The scheduler is its own node on the fabric.
        self.net.add_node(SCHEDULER_NODE, NicSpec(bandwidth_Bps=1.25e9, overhead_s=30e-6))
        self._sched_count: Dict[int, int] = defaultdict(int)
        self._sched_frontier = 0
        self._sched_waiting: List[_ReportMsg] = []
        self._grant_signals: Dict[int, Signal] = {}

    # -- scheduler ----------------------------------------------------------

    def _grantable(self, progress: int) -> bool:
        s = self.scheduler_staleness
        if math.isinf(s):
            return True
        return progress < self._sched_frontier + s

    def _scheduler_proc(self):
        ep = self.net.endpoint(SCHEDULER_NODE)
        n = self.cfg.cluster.n_workers
        while True:
            msg: Message = yield ep.inbox.get()
            report: _ReportMsg = msg.payload
            self._sched_count[report.progress] += 1
            while self._sched_count[self._sched_frontier] >= n:
                self._sched_frontier += 1
            self._sched_waiting.append(report)
            still_waiting = []
            for r in self._sched_waiting:
                if self._grantable(r.progress):
                    self.net.send(
                        SCHEDULER_NODE,
                        self.cfg.cluster.worker_id(r.worker),
                        self.cfg.request_bytes,
                        payload=_GrantMsg(r.worker, r.progress),
                        tag="grant",
                    ).subscribe(self._on_grant_delivered)
                else:
                    still_waiting.append(r)
            self._sched_waiting = still_waiting

    def _on_grant_delivered(self, msg: Message) -> None:
        grant: _GrantMsg = msg.payload
        self._grant_signals.pop(grant.worker).fire(grant)

    # -- worker (non-overlap protocol, Figure 5a) ------------------------------

    def _worker_proc(self, w: int):
        cfg = self.cfg
        node = cfg.cluster.worker_id(w)
        name = f"worker{w}"
        base = cfg.resolved_base_compute(cfg.cluster.workers[w].flops)
        params = cfg.task.init_params.copy() if cfg.task is not None else None
        for i in range(cfg.max_iter):
            dur = self.compute_model.sample(w, i, base, self._compute_rngs[w])
            t0 = self.engine.now
            yield Timeout(dur)
            self.trace.record_span(name, SpanKind.COMPUTE, t0, self.engine.now, i)
            if cfg.task is not None:
                update = cfg.task.step_fn(
                    StepContext(worker=w, iteration=i, params=params, rng=self._step_rngs[w])
                )
                shards = self.layout.scatter(update)
            else:
                shards = [None] * cfg.cluster.n_servers
            # Phase 1: push to every shard and WAIT until every shard is
            # updated (non-overlap: the pull phase may not begin earlier).
            t_push = self.engine.now
            push_sigs = [
                self.net.send(
                    node,
                    cfg.cluster.server_id(m),
                    self._payload_bytes(m),
                    payload=_PushMsg(w, i, shards[m]),
                    tag="push",
                )
                for m in range(cfg.cluster.n_servers)
            ]
            yield self.engine.all_of(push_sigs)
            self.trace.record_span(name, SpanKind.PUSH, t_push, self.engine.now, i)
            # Phase 2: report progress to the scheduler and wait for the
            # grant (the dotted line in Figure 5a).
            t_wait = self.engine.now
            grant = self.engine.signal(f"grant:{w}:{i}")
            self._grant_signals[w] = grant
            self.net.send(
                node, SCHEDULER_NODE, cfg.request_bytes,
                payload=_ReportMsg(w, i), tag="report",
            )
            yield grant
            if self.engine.now > t_wait:
                self.trace.record_span(name, SpanKind.BLOCKED, t_wait, self.engine.now, i)
            # Phase 3: pull all shards.
            t_pull = self.engine.now
            pending = _PendingPull(
                self.engine,
                cfg.cluster.n_servers,
                self.spec.total_elements if cfg.task is not None else None,
            )
            self._pending[(w, i)] = pending
            for m in range(cfg.cluster.n_servers):
                self.net.send(
                    node, cfg.cluster.server_id(m), cfg.request_bytes,
                    payload=_PullMsg(w, i), tag="pull",
                )
            yield pending.signal
            self.trace.record_span(name, SpanKind.PULL, t_pull, self.engine.now, i)
            if params is not None:
                params = pending.flat
            if w == 0 and cfg.task is not None and cfg.eval_every > 0:
                if (i + 1) % cfg.eval_every == 0 or i + 1 == cfg.max_iter:
                    value = cfg.task.eval_fn(self._global_params())
                    self.eval_by_time.append(self.engine.now, value)
                    self.eval_by_iteration.append(i + 1, value)
        self._finish_times[w] = self.engine.now

    def run(self) -> SimRunResult:
        self.engine.spawn(self._scheduler_proc(), name="scheduler")
        return super().run()


def run_pslite(config: SimConfig) -> SimRunResult:
    """One-call convenience wrapper."""
    return PSLiteSimRunner(config).run()
