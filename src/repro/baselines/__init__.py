"""Baseline parameter-server systems the paper compares against.

- :mod:`repro.baselines.pslite` — PS-Lite: centralized scheduler in the
  synchronization path, **non-overlap** synchronization (Figure 5a), and
  the default range-partition slicing that leaves servers imbalanced;
- :mod:`repro.baselines.sspable` — Bösen/PMLS-Caffe's SSPtable: worker-
  side parameter caches with clock-based invalidation, whose consistency
  maintenance degrades convergence at scale (Figures 1 and 7).
"""

from repro.baselines.pslite import PSLiteSimRunner, run_pslite
from repro.baselines.specsync import SpecSyncConfig, SpecSyncRunner, run_specsync
from repro.baselines.sspable import SSPTableConfig, SSPTableRunner, run_ssptable

__all__ = [
    "PSLiteSimRunner",
    "run_pslite",
    "SpecSyncConfig",
    "SpecSyncRunner",
    "run_specsync",
    "SSPTableConfig",
    "SSPTableRunner",
    "run_ssptable",
]
