"""Bösen/PMLS-Caffe baseline: SSPtable worker-side parameter caching.

Bösen implements SSP through SSPtable, "a convenient shared-memory model
which invalidates the outdated parameter entries cached at workers"
(paper §V-A).  Mechanics reproduced here:

- each worker holds a **cached copy** of the parameters stamped with the
  global min-clock it reflects; its *own* updates are applied to the
  cache immediately (local visibility), everyone else's are invisible
  until the next refresh;
- a read at iteration ``i`` requires the cache to reflect min-clock
  ≥ ``i − s``; otherwise the worker refreshes from the servers, and the
  server **blocks the read** until the slowest worker's clock satisfies
  the bound (the SSP read rule enforced server-side);
- on every min-clock advance the server broadcasts invalidation notices
  to all N workers — the staleness-information maintenance whose cost
  grows with the worker count (the paper's scalability complaint);
- updates are applied **raw-additively** (``w += u``), Bösen's actual
  rule — with per-worker hyperparameters tuned at small N this is what
  makes accuracy collapse as N grows (Figures 1 and 7), while FluentPS's
  Algorithm-1 ``w += u/N`` stays robust.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.driver import StepContext
from repro.core.keyspace import ElasticSlicer
from repro.core.metrics import SyncMetrics
from repro.sim.engine import Engine, Timeout
from repro.sim.network import Message
from repro.sim.runner import SimConfig, SimRunResult
from repro.sim.stragglers import LogNormalCompute
from repro.sim.trace import SpanKind, TraceRecorder
from repro.utils.records import SeriesRecord
from repro.utils.rng import derive_rng
from repro.core.layout import ShardLayout


@dataclass
class SSPTableConfig:
    """SSPtable knobs on top of a :class:`SimConfig`."""

    sim: SimConfig
    staleness: int = 3
    raw_additive: bool = True  # Bösen applies w += u; False → w += u/N

    def __post_init__(self) -> None:
        if self.staleness < 0:
            raise ValueError("staleness must be >= 0")


@dataclass
class _UpdateMsg:
    worker: int
    clock: int  # worker clock after this update (iteration index + 1)
    shard: Optional[np.ndarray]


@dataclass
class _ReadMsg:
    worker: int
    require: int  # minimum acceptable min-clock


@dataclass
class _ReadReply:
    server: int
    worker: int
    clock: int
    shard: Optional[np.ndarray]


@dataclass
class _InvalidateMsg:
    clock: int


class _TableServer:
    """One SSPtable shard: params, vector clock, blocked reads."""

    def __init__(self, shard_id: int, n_workers: int, params: Optional[np.ndarray],
                 raw_additive: bool):
        self.shard_id = shard_id
        self.n_workers = n_workers
        self.params = params
        self.raw_additive = raw_additive
        self.clocks = [0] * n_workers
        self.blocked: List[Tuple[int, int, Callable[[int], None]]] = []
        self.metrics = SyncMetrics()

    @property
    def min_clock(self) -> int:
        return min(self.clocks)

    def handle_update(self, worker: int, clock: int, shard: Optional[np.ndarray],
                      on_clock_advance: Callable[[int], None]) -> None:
        if shard is not None and self.params is not None:
            if self.raw_additive:
                self.params += shard
            else:
                self.params += shard / self.n_workers
        old_min = self.min_clock
        self.clocks[worker] = max(self.clocks[worker], clock)
        self.metrics.record_push()
        new_min = self.min_clock
        if new_min > old_min:
            self.metrics.record_frontier_advance()
            still = []
            for w, require, respond in self.blocked:
                if new_min >= require:
                    respond(new_min)
                else:
                    still.append((w, require, respond))
            self.blocked = still
            on_clock_advance(new_min)

    def handle_read(self, worker: int, require: int, respond: Callable[[int], None]) -> None:
        if self.min_clock >= require:
            self.metrics.record_pull(immediate=True, iteration=max(require, 0))
            respond(self.min_clock)
        else:
            self.metrics.record_pull(immediate=False, iteration=max(require, 0))
            self.blocked.append((worker, require, respond))


class SSPTableRunner:
    """PMLS-Caffe-style execution on the simulated cluster."""

    def __init__(self, config: SSPTableConfig):
        self.cfg = config.sim
        self.table_cfg = config
        self.engine = Engine()
        self.net = self.cfg.cluster.make_network(self.engine)
        self.trace = TraceRecorder(keep_spans=self.cfg.keep_spans)
        self.spec = self.cfg.spec
        slicer = self.cfg.slicer or ElasticSlicer()
        self.layout = ShardLayout(self.spec, slicer.slice(self.spec, self.cfg.cluster.n_servers))
        self.wire_scale = self.cfg.resolved_wire_scale()
        self.compute_model = self.cfg.compute_model or LogNormalCompute(0.2)

        n, m = self.cfg.cluster.n_workers, self.cfg.cluster.n_servers
        training = self.cfg.task is not None
        if training:
            shard_vectors = self.layout.scatter(self.cfg.task.init_params.astype(np.float64))
        self.servers = [
            _TableServer(
                j, n, shard_vectors[j] if training else None, config.raw_additive
            )
            for j in range(m)
        ]
        self._compute_rngs = [derive_rng(self.cfg.seed, "compute", w) for w in range(n)]
        self._step_rngs = [derive_rng(self.cfg.seed, "step", w) for w in range(n)]
        self._pending_reads: Dict[int, dict] = {}
        self._finish_times = [0.0] * n
        self.invalidations_sent = 0
        self.eval_by_time = SeriesRecord("eval", x_label="time_s", y_label="metric")
        self.eval_by_iteration = SeriesRecord("eval", x_label="iteration", y_label="metric")

    def _payload_bytes(self, server: int) -> int:
        return int(self.layout.shard_bytes(server) * self.wire_scale) + self.cfg.header_bytes

    # -- server process ------------------------------------------------------

    def _server_proc(self, m: int):
        ep = self.net.endpoint(self.cfg.cluster.server_id(m))
        server = self.servers[m]
        while True:
            msg: Message = yield ep.inbox.get()
            payload = msg.payload
            if isinstance(payload, _UpdateMsg):
                server.handle_update(
                    payload.worker,
                    payload.clock,
                    payload.shard,
                    on_clock_advance=lambda clk, j=m: self._broadcast_invalidation(j, clk),
                )
            elif isinstance(payload, _ReadMsg):
                server.handle_read(
                    payload.worker,
                    payload.require,
                    respond=lambda clk, j=m, w=payload.worker: self._send_read_reply(j, w, clk),
                )
            else:
                raise TypeError(f"table server {m}: unexpected payload {payload!r}")

    def _broadcast_invalidation(self, server: int, clock: int) -> None:
        """SSPtable's staleness-information maintenance: every min-clock
        advance notifies all N workers so they can invalidate cached
        entries.  N messages through one server NIC — the O(N) cost."""
        for w in range(self.cfg.cluster.n_workers):
            self.net.send(
                self.cfg.cluster.server_id(server),
                self.cfg.cluster.worker_id(w),
                self.cfg.request_bytes,
                payload=_InvalidateMsg(clock),
                tag="invalidate",
                deliver_to_inbox=False,
            )
            self.invalidations_sent += 1

    def _send_read_reply(self, server: int, worker: int, clock: int) -> None:
        shard = None
        if self.servers[server].params is not None:
            shard = self.servers[server].params.copy()
        self.net.send(
            self.cfg.cluster.server_id(server),
            self.cfg.cluster.worker_id(worker),
            self._payload_bytes(server),
            payload=_ReadReply(server, worker, clock, shard),
            tag="read-reply",
        ).subscribe(self._on_read_reply)

    def _on_read_reply(self, msg: Message) -> None:
        reply: _ReadReply = msg.payload
        pending = self._pending_reads[reply.worker]
        if pending["flat"] is not None and reply.shard is not None:
            self.layout.gather_into(pending["flat"], reply.server, reply.shard)
        pending["clock"] = min(pending["clock"], reply.clock)
        pending["remaining"] -= 1
        if pending["remaining"] == 0:
            del self._pending_reads[reply.worker]
            pending["signal"].fire(pending)

    # -- worker process --------------------------------------------------------

    def _worker_proc(self, w: int):
        cfg = self.cfg
        node = cfg.cluster.worker_id(w)
        name = f"worker{w}"
        base = cfg.resolved_base_compute(cfg.cluster.workers[w].flops)
        s = self.table_cfg.staleness
        training = cfg.task is not None
        cache = cfg.task.init_params.copy() if training else None
        cache_clock = 0
        for i in range(cfg.max_iter):
            # SSP read rule: the cache must reflect min-clock >= i - s.
            require = i - s
            if cache_clock < require:
                t_read = self.engine.now
                pending = {
                    "flat": np.empty(self.spec.total_elements) if training else None,
                    "clock": 1 << 62,
                    "remaining": cfg.cluster.n_servers,
                    "signal": self.engine.signal(f"read:{w}:{i}"),
                }
                self._pending_reads[w] = pending
                for m in range(cfg.cluster.n_servers):
                    self.net.send(
                        node, cfg.cluster.server_id(m), cfg.request_bytes,
                        payload=_ReadMsg(w, require), tag="read",
                    )
                yield pending["signal"]
                self.trace.record_span(name, SpanKind.PULL, t_read, self.engine.now, i)
                if training:
                    cache = pending["flat"]
                cache_clock = pending["clock"]
            dur = self.compute_model.sample(w, i, base, self._compute_rngs[w])
            t0 = self.engine.now
            yield Timeout(dur)
            self.trace.record_span(name, SpanKind.COMPUTE, t0, self.engine.now, i)
            if training:
                update = cfg.task.step_fn(
                    StepContext(worker=w, iteration=i, params=cache, rng=self._step_rngs[w])
                )
                # Own update immediately visible in the local cache.
                cache = cache + (
                    update if self.table_cfg.raw_additive else update / cfg.cluster.n_workers
                )
                shards = self.layout.scatter(update)
            else:
                shards = [None] * cfg.cluster.n_servers
            t_push = self.engine.now
            for m in range(cfg.cluster.n_servers):
                self.net.send(
                    node, cfg.cluster.server_id(m), self._payload_bytes(m),
                    payload=_UpdateMsg(w, i + 1, shards[m]), tag="update",
                )
            self.trace.record_span(name, SpanKind.PUSH, t_push, self.engine.now, i)
            if w == 0 and training and cfg.eval_every > 0:
                if (i + 1) % cfg.eval_every == 0 or i + 1 == cfg.max_iter:
                    value = cfg.task.eval_fn(self._global_params())
                    self.eval_by_time.append(self.engine.now, value)
                    self.eval_by_iteration.append(i + 1, value)
        self._finish_times[w] = self.engine.now

    def _global_params(self) -> np.ndarray:
        return self.layout.gather([srv.params for srv in self.servers])

    # -- run ----------------------------------------------------------------------

    def run(self) -> SimRunResult:
        for m in range(self.cfg.cluster.n_servers):
            self.engine.spawn(self._server_proc(m), name=f"table{m}")
        for w in range(self.cfg.cluster.n_workers):
            self.engine.spawn(self._worker_proc(w), name=f"worker{w}")
        self.engine.run()
        if self._pending_reads:
            raise RuntimeError(
                f"SSPtable simulation drained with {len(self._pending_reads)} "
                "blocked reads (deadlock)"
            )
        worker_names = [f"worker{w}" for w in range(self.cfg.cluster.n_workers)]
        total_compute = self.trace.compute_time(worker_names)
        total_wall = sum(self._finish_times)
        return SimRunResult(
            duration=max(self._finish_times),
            iterations=self.cfg.max_iter,
            n_workers=self.cfg.cluster.n_workers,
            metrics=SyncMetrics.merge_all(srv.metrics for srv in self.servers),
            trace=self.trace,
            total_compute_time=total_compute,
            total_comm_time=max(0.0, total_wall - total_compute),
            bytes_on_wire=self.net.total_bytes,
            messages_on_wire=self.net.total_messages,
            final_params=self._global_params() if self.cfg.task is not None else None,
            eval_by_time=self.eval_by_time,
            eval_by_iteration=self.eval_by_iteration,
            worker_finish_times=list(self._finish_times),
        )


def run_ssptable(config: SSPTableConfig) -> SimRunResult:
    """One-call convenience wrapper."""
    return SSPTableRunner(config).run()
