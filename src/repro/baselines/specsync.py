"""SpecSync baseline: speculative synchronization with computation aborts.

SpecSync (Zhang et al., ICDCS'18 — paper §V-B) runs on top of ASP/SSP:
each worker *speculates* with the parameters it has; a centralized
scheduler receives a notification after every push and, once enough fresh
updates from other workers have accumulated since a worker's last pull,
tells that worker to **abort** its in-progress gradient computation and
re-pull updated parameters before recomputing.

The paper positions PSSP against exactly this design: "PSSP model can
also determine the probability based on the quality of parameters but
avoid the computation aborts in SpecSync model.  Furthermore, the
centralized scheduler was a bottleneck because it received the
notifications from all workers after their push operations."  Both
properties are reproduced here:

- aborted compute time is *wasted* (the worker restarts the iteration
  with fresh parameters);
- every push triggers a notification message to one scheduler node whose
  NIC serializes them (the O(N) bottleneck).

Implementation notes: shard servers run ASP (answer pulls immediately);
worker compute runs in ``abort_check_slices`` slices so an abort lands at
the next slice boundary, as in a minibatch pipeline that can only stop
between micro-batches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.driver import StepContext
from repro.core.models import SyncModel, asp
from repro.sim.engine import Timeout
from repro.sim.network import Message, NicSpec
from repro.sim.runner import (
    FluentPSSimRunner,
    SimConfig,
    SimRunResult,
    _PendingPull,
    _PullMsg,
    _PushMsg,
)
from repro.sim.trace import SpanKind

SCHEDULER_NODE = "specsync-scheduler"


@dataclass
class _NotifyMsg:
    worker: int
    progress: int


@dataclass
class _AbortMsg:
    worker: int


@dataclass
class SpecSyncConfig:
    """SpecSync knobs on top of a :class:`SimConfig`."""

    sim: SimConfig
    #: abort a worker once this many fresh pushes from *other* workers
    #: accumulated since its last pull completed.
    abort_threshold: int = 4
    #: compute is interruptible at these many slice boundaries.
    abort_check_slices: int = 8

    def __post_init__(self) -> None:
        if self.abort_threshold < 1:
            raise ValueError("abort_threshold must be >= 1")
        if self.abort_check_slices < 1:
            raise ValueError("abort_check_slices must be >= 1")


class SpecSyncRunner(FluentPSSimRunner):
    """SpecSync execution on the simulated cluster."""

    def __init__(self, config: SpecSyncConfig):
        if not isinstance(config.sim.sync, SyncModel):
            raise ValueError("SpecSync uses one global model (servers run ASP)")
        self.spec_cfg = config
        super().__init__(replace(config.sim, sync=asp()))
        self.net.add_node(SCHEDULER_NODE, NicSpec(bandwidth_Bps=1.25e9, overhead_s=30e-6))
        n = self.cfg.cluster.n_workers
        self._fresh_counts = [0] * n  # other workers' pushes since last pull
        self._abort_flags = [False] * n
        self.aborts = 0
        self.wasted_compute = 0.0

    # -- scheduler: one notification per push (the bottleneck) ------------

    def _scheduler_proc(self):
        ep = self.net.endpoint(SCHEDULER_NODE)
        n = self.cfg.cluster.n_workers
        threshold = self.spec_cfg.abort_threshold
        while True:
            msg: Message = yield ep.inbox.get()
            note: _NotifyMsg = msg.payload
            for w in range(n):
                if w == note.worker:
                    continue
                self._fresh_counts[w] += 1
                if self._fresh_counts[w] >= threshold and not self._abort_flags[w]:
                    self._abort_flags[w] = True
                    self.net.send(
                        SCHEDULER_NODE,
                        self.cfg.cluster.worker_id(w),
                        self.cfg.request_bytes,
                        payload=_AbortMsg(w),
                        tag="abort",
                        deliver_to_inbox=False,
                    )

    # -- worker: sliced, abortable compute ----------------------------------

    def _worker_proc(self, w: int):
        cfg = self.cfg
        node = cfg.cluster.worker_id(w)
        name = f"worker{w}"
        base = cfg.resolved_base_compute(cfg.cluster.workers[w].flops)
        params = cfg.task.init_params.copy() if cfg.task is not None else None
        slices = self.spec_cfg.abort_check_slices
        for i in range(cfg.max_iter):
            # Compute in slices; an abort discards progress and re-pulls.
            while True:
                dur = self.compute_model.sample(w, i, base, self._compute_rngs[w])
                t0 = self.engine.now
                aborted = False
                for _slice in range(slices):
                    yield Timeout(dur / slices)
                    if self._abort_flags[w]:
                        aborted = True
                        break
                if not aborted:
                    self.trace.record_span(name, SpanKind.COMPUTE, t0, self.engine.now, i)
                    break
                # Abort: wasted work + refresh pull, then recompute.
                self.aborts += 1
                self.wasted_compute += self.engine.now - t0
                self.trace.record_span(
                    name, SpanKind.OTHER, t0, self.engine.now, i, note="aborted"
                )
                if i == 0:
                    # Nothing pushed yet: no legal pull; just restart.
                    self._fresh_counts[w] = 0
                    self._abort_flags[w] = False
                    continue
                t_refresh = self.engine.now
                refreshed = yield from self._pull(w, i - 1, node, refresh=True)
                self.trace.record_span(name, SpanKind.PULL, t_refresh, self.engine.now, i)
                if params is not None and refreshed.flat is not None:
                    params = refreshed.flat
            if cfg.task is not None:
                update = cfg.task.step_fn(
                    StepContext(worker=w, iteration=i, params=params, rng=self._step_rngs[w])
                )
                shards = self.layout.scatter(update)
            else:
                shards = [None] * cfg.cluster.n_servers
            t_sync = self.engine.now
            for m in range(cfg.cluster.n_servers):
                self.net.send(
                    node, cfg.cluster.server_id(m), self._payload_bytes(m),
                    payload=_PushMsg(w, i, shards[m]), tag="push",
                )
            # Notify the central scheduler (SpecSync's per-push message).
            self.net.send(
                node, SCHEDULER_NODE, cfg.request_bytes,
                payload=_NotifyMsg(w, i), tag="notify",
            )
            pending = yield from self._pull(w, i, node)
            self.trace.record_span(name, SpanKind.PULL, t_sync, self.engine.now, i)
            if params is not None:
                params = pending.flat
            if w == 0 and cfg.task is not None and cfg.eval_every > 0:
                if (i + 1) % cfg.eval_every == 0 or i + 1 == cfg.max_iter:
                    value = cfg.task.eval_fn(self._global_params())
                    self.eval_by_time.append(self.engine.now, value)
                    self.eval_by_iteration.append(i + 1, value)
        self._finish_times[w] = self.engine.now

    def _pull(self, w: int, progress: int, node: str, refresh: bool = False):
        """Pull all shards; resets the worker's freshness/abort state."""
        cfg = self.cfg
        pending = _PendingPull(
            self.engine,
            cfg.cluster.n_servers,
            self.spec.total_elements if cfg.task is not None else None,
        )
        key = (w, progress if not refresh else -(progress + 2))
        self._pending[key] = pending
        # ASP servers answer using the worker's *last pushed* progress;
        # refresh pulls reuse it (allowed: progress <= last push).
        req_progress = max(progress, 0) if not refresh else max(progress, 0)
        for m in range(cfg.cluster.n_servers):
            self.net.send(
                node, cfg.cluster.server_id(m), cfg.request_bytes,
                payload=_PullMsg(w, req_progress), tag="pull",
            )
        yield pending.signal
        self._fresh_counts[w] = 0
        self._abort_flags[w] = False
        return pending

    def _on_reply_delivered(self, msg: Message) -> None:
        # Replies key on (worker, progress); refresh pulls use a disjoint
        # negative key space, so route by whichever pending entry matches.
        payload = msg.payload
        reply = payload.reply
        for key in ((reply.worker, reply.progress), (reply.worker, -(reply.progress + 2))):
            if key in self._pending:
                pending = self._pending[key]
                break
        else:  # pragma: no cover - protocol violation
            raise KeyError(f"no pending pull for reply {reply.worker}/{reply.progress}")
        if pending.flat is not None and reply.params is not None:
            self.layout.gather_into(pending.flat, payload.server, reply.params)
        pending.max_missing = max(pending.max_missing, reply.missing)
        pending.remaining -= 1
        if pending.remaining == 0:
            del self._pending[key]
            pending.signal.fire(pending)

    def run(self) -> SimRunResult:
        self.engine.spawn(self._scheduler_proc(), name="specsync-scheduler")
        return super().run()


def run_specsync(config: SpecSyncConfig) -> SimRunResult:
    """One-call convenience wrapper."""
    return SpecSyncRunner(config).run()
