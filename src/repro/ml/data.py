"""Synthetic datasets standing in for CIFAR-10/100 (see DESIGN.md).

CIFAR itself is not available offline; the evaluation only needs a
classification task whose accuracy responds to gradient staleness the way
a real task does.  :func:`synthetic_cifar10` builds class-structured
32×32×3 images (smooth per-class templates + per-sample texture and
noise) with CIFAR's class counts and split sizes; :func:`gaussian_blobs`
is the fast low-dimensional workload used where the benches need hundreds
of thousands of gradient steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import derive_rng


@dataclass
class Dataset:
    """A classification dataset with a train/test split."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    def __post_init__(self) -> None:
        if len(self.x_train) != len(self.y_train):
            raise ValueError("train features/labels length mismatch")
        if len(self.x_test) != len(self.y_test):
            raise ValueError("test features/labels length mismatch")
        for y in (self.y_train, self.y_test):
            if len(y) and (y.min() < 0 or y.max() >= self.n_classes):
                raise ValueError("labels out of range")

    @property
    def n_train(self) -> int:
        return len(self.x_train)

    @property
    def n_test(self) -> int:
        return len(self.x_test)

    def shard(self, worker: int, n_workers: int) -> Tuple[np.ndarray, np.ndarray]:
        """Worker ``worker``'s data-parallel partition (strided, so every
        shard sees every class)."""
        if not 0 <= worker < n_workers:
            raise ValueError(f"worker {worker} out of range [0, {n_workers})")
        return self.x_train[worker::n_workers], self.y_train[worker::n_workers]

    def batches(
        self, rng: np.random.Generator, batch_size: int, x: np.ndarray = None,
        y: np.ndarray = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Endless stream of uniformly sampled mini-batches."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        x = self.x_train if x is None else x
        y = self.y_train if y is None else y
        n = len(x)
        while True:
            idx = rng.integers(0, n, size=min(batch_size, n))
            yield x[idx], y[idx]


def _smooth_template(rng: np.random.Generator, channels: int, size: int, grid: int = 4) -> np.ndarray:
    """A smooth random image: low-frequency noise bilinearly upsampled."""
    coarse = rng.normal(size=(channels, grid, grid))
    # Bilinear upsample grid → size via separable interpolation.
    xs = np.linspace(0, grid - 1, size)
    i0 = np.floor(xs).astype(int)
    i1 = np.minimum(i0 + 1, grid - 1)
    frac = xs - i0
    rows = coarse[:, i0, :] * (1 - frac)[None, :, None] + coarse[:, i1, :] * frac[None, :, None]
    out = (
        rows[:, :, i0] * (1 - frac)[None, None, :]
        + rows[:, :, i1] * frac[None, None, :]
    )
    return out


def _image_classes(
    name: str,
    n_classes: int,
    n_train: int,
    n_test: int,
    seed: int,
    size: int = 32,
    channels: int = 3,
    noise: float = 0.6,
    texture: float = 0.35,
) -> Dataset:
    rng = derive_rng(seed, "dataset", name)
    templates = np.stack([_smooth_template(rng, channels, size) for _ in range(n_classes)])

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, n_classes, size=n)
        base = templates[y]
        # Per-sample brightness/contrast jitter + smooth texture + pixel noise.
        scale = 1.0 + 0.2 * rng.normal(size=(n, 1, 1, 1))
        tex = np.stack([_smooth_template(rng, channels, size, grid=8) for _ in range(n)])
        x = scale * base + texture * tex + noise * rng.normal(size=base.shape)
        return x.astype(np.float64), y

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset(name, x_train, y_train, x_test, y_test, n_classes)


def synthetic_cifar10(
    n_train: int = 2000, n_test: int = 500, seed: int = 0, size: int = 32
) -> Dataset:
    """CIFAR-10 stand-in: 10 classes of structured color images."""
    return _image_classes("cifar10", 10, n_train, n_test, seed, size=size)


def synthetic_cifar100(
    n_train: int = 4000, n_test: int = 1000, seed: int = 0, size: int = 32
) -> Dataset:
    """CIFAR-100 stand-in: 100 fine classes — a markedly harder task, as
    in the paper (AlexNet reaches ~44% there vs ~76% on CIFAR-10)."""
    return _image_classes(
        "cifar100", 100, n_train, n_test, seed, size=size, noise=0.8, texture=0.4
    )


def gaussian_blobs(
    n_classes: int = 10,
    dim: int = 64,
    n_train: int = 4000,
    n_test: int = 1000,
    separation: float = 2.2,
    seed: int = 0,
) -> Dataset:
    """Fast low-dimensional classification task (for high-iteration runs).

    Class means are drawn on a sphere of radius ``separation``; samples
    get unit-variance isotropic noise, so Bayes accuracy is high but SGD
    must actually converge to reach it — stale gradients visibly hurt.
    """
    rng = derive_rng(seed, "dataset", "blobs", n_classes, dim)
    means = rng.normal(size=(n_classes, dim))
    means *= separation / np.linalg.norm(means, axis=1, keepdims=True)

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, n_classes, size=n)
        x = means[y] + rng.normal(size=(n, dim))
        return x, y

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset(f"blobs{n_classes}d{dim}", x_train, y_train, x_test, y_test, n_classes)


def two_spirals(n_train: int = 2000, n_test: int = 500, noise: float = 0.15, seed: int = 0) -> Dataset:
    """Classic non-linearly-separable 2-class task (examples/tests)."""
    rng = derive_rng(seed, "dataset", "spirals")

    def sample(n: int) -> Tuple[np.ndarray, np.ndarray]:
        y = rng.integers(0, 2, size=n)
        t = rng.uniform(0.25, 3.0, size=n) * np.pi
        sign = 2 * y - 1
        x = np.stack([sign * t * np.cos(t), sign * t * np.sin(t)], axis=1)
        return x / np.pi + noise * rng.normal(size=(n, 2)), y

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return Dataset("two_spirals", x_train, y_train, x_test, y_test, 2)
