"""Model builders: MLP proxies, mini-AlexNet, CIFAR ResNets, wire specs.

Two uses, mirroring DESIGN.md's substitution table:

- *trainable* networks (``mlp``, ``proxy_classifier``, ``mini_alexnet``,
  small ``resnet_cifar``) do real gradient math in convergence runs;
- *shape-accurate* :class:`~repro.core.keyspace.ModelSpec`\\ s for the
  paper's exact architectures (``alexnet_cifar_spec``,
  ``resnet_cifar_spec(56)``) size the communication in timing-only
  simulations, together with canonical FLOP counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.keyspace import ModelSpec, TensorSpec
from repro.ml.conv import Conv2D, GlobalAvgPool2D, MaxPool2D
from repro.ml.data import Dataset
from repro.ml.layers import Dense, Dropout, Flatten, ReLU
from repro.ml.network import ResidualBlock, Sequential
from repro.utils.rng import derive_rng


def mlp(
    in_dim: int,
    hidden: Sequence[int],
    n_classes: int,
    rng: np.random.Generator,
    dropout: float = 0.0,
) -> Sequential:
    """Multi-layer perceptron with ReLU activations."""
    layers: List = []
    prev = in_dim
    for h in hidden:
        layers.append(Dense(prev, h, rng))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(Dropout(dropout, rng))
        prev = h
    layers.append(Dense(prev, n_classes, rng))
    return Sequential(layers)


def proxy_classifier(
    dataset: Dataset, hidden: Sequence[int] = (32,), seed: int = 0
) -> Sequential:
    """A fast MLP sized for a dataset (flattens image inputs)."""
    rng = derive_rng(seed, "init", dataset.name)
    x = dataset.x_train
    if x.ndim > 2:
        in_dim = int(np.prod(x.shape[1:]))
        net = mlp(in_dim, hidden, dataset.n_classes, rng)
        return Sequential([Flatten()] + list(net._layers))
    return mlp(x.shape[1], hidden, dataset.n_classes, rng)


def mini_alexnet(
    n_classes: int = 10,
    rng: Optional[np.random.Generator] = None,
    channels: int = 3,
    size: int = 32,
) -> Sequential:
    """A trainable, shrunken AlexNet-for-CIFAR (conv-pool ×2 + 2 FC)."""
    rng = rng if rng is not None else derive_rng(0, "init", "mini_alexnet")
    feat = size // 4  # two 2x pools
    return Sequential(
        [
            Conv2D(channels, 16, 3, rng, pad=1),
            ReLU(),
            MaxPool2D(2),
            Conv2D(16, 32, 3, rng, pad=1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(32 * feat * feat, 64, rng),
            ReLU(),
            Dense(64, n_classes, rng),
        ]
    )


def resnet_cifar(
    depth: int,
    n_classes: int = 10,
    rng: Optional[np.random.Generator] = None,
    width: int = 16,
    use_bn: bool = True,
    channels: int = 3,
) -> Sequential:
    """CIFAR ResNet of He et al.: depth = 6n+2 (20, 32, 44, **56**, ...).

    Three stages of n basic blocks at widths (w, 2w, 4w) with stride-2
    transitions, global average pooling, and a linear classifier.
    ``resnet_cifar(56)`` reproduces the paper's 0.86M-parameter model;
    ``resnet_cifar(8)`` is the fast trainable proxy.
    """
    if (depth - 2) % 6 != 0 or depth < 8:
        raise ValueError(f"CIFAR ResNet depth must be 6n+2 with n>=1, got {depth}")
    n = (depth - 2) // 6
    rng = rng if rng is not None else derive_rng(0, "init", f"resnet{depth}")
    layers: List = [Conv2D(channels, width, 3, rng, pad=1), ReLU()]
    in_ch = width
    for stage, out_ch in enumerate((width, 2 * width, 4 * width)):
        for block in range(n):
            stride = 2 if (stage > 0 and block == 0) else 1
            layers.append(ResidualBlock(in_ch, out_ch, rng, stride=stride, use_bn=use_bn))
            in_ch = out_ch
    layers.append(GlobalAvgPool2D())
    layers.append(Dense(in_ch, n_classes, rng))
    return Sequential(layers)


# ---------------------------------------------------------------------------
# Shape-accurate wire specs + canonical FLOP counts for timing simulations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Workload:
    """What a timing-only simulation needs to know about a DNN."""

    name: str
    spec: ModelSpec
    flops_per_sample: float  # forward-pass FLOPs for one input
    train_flops_factor: float = 3.0  # fwd+bwd ≈ 3× forward

    @property
    def train_flops_per_sample(self) -> float:
        return self.flops_per_sample * self.train_flops_factor

    @property
    def wire_bytes(self) -> int:
        return self.spec.total_bytes


def alexnet_cifar_spec(n_classes: int = 10) -> ModelSpec:
    """The CIFAR AlexNet variant used throughout the paper's CPU-cluster
    experiments (Caffe's cifar_full lineage): two 5×5 conv layers and
    three FC layers — the FC1 tensor holds ~89% of the parameters, which
    is exactly what makes PS-Lite's default slicing imbalanced."""
    return ModelSpec.from_tensors(
        "alexnet-cifar",
        [
            TensorSpec("conv1.W", (64, 3, 5, 5)),
            TensorSpec("conv1.b", (64,)),
            TensorSpec("conv2.W", (64, 64, 5, 5)),
            TensorSpec("conv2.b", (64,)),
            TensorSpec("fc1.W", (4096, 384)),
            TensorSpec("fc1.b", (384,)),
            TensorSpec("fc2.W", (384, 192)),
            TensorSpec("fc2.b", (192,)),
            TensorSpec("fc3.W", (192, n_classes)),
            TensorSpec("fc3.b", (n_classes,)),
        ],
    )


def resnet_cifar_spec(depth: int = 56, n_classes: int = 10) -> ModelSpec:
    """Exact tensor shapes of the CIFAR ResNet at the requested depth."""
    net = resnet_cifar(depth, n_classes=n_classes, rng=derive_rng(0, "spec", depth))
    return net.model_spec(f"resnet{depth}-cifar")


def alexnet_cifar_workload(n_classes: int = 10) -> Workload:
    """AlexNet-CIFAR: ≈66 MFLOPs forward per 32×32 image."""
    return Workload("alexnet-cifar", alexnet_cifar_spec(n_classes), flops_per_sample=66e6)


def resnet56_cifar_workload(n_classes: int = 10) -> Workload:
    """ResNet-56: the canonical ≈125 MFLOPs forward per CIFAR image."""
    return Workload("resnet56-cifar", resnet_cifar_spec(56, n_classes), flops_per_sample=125e6)
