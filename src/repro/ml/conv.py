"""Convolution and pooling layers (NCHW, im2col-based).

im2col turns convolution into one big GEMM — the canonical way to get
BLAS-rate convolutions out of pure NumPy (HPC guide: replace loops with
matrix products).  Backward reuses the same column matrix.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.ml.initializers import he_normal, zeros
from repro.ml.layers import Layer


def _out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ValueError(
            f"kernel {kernel}/stride {stride}/pad {pad} too large for input size {size}"
        )
    return out


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
    """(B, C, H, W) → (B·OH·OW, C·kh·kw) patch matrix."""
    b, c, h, w = x.shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Strided sliding-window view, then one copy into GEMM layout.
    sb, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, oh, ow, kh, kw),
        strides=(sb, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    return view.transpose(0, 2, 3, 1, 4, 5).reshape(b * oh * ow, c * kh * kw)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to (B, C, H, W)."""
    b, c, h, w = x_shape
    oh = _out_size(h, kh, stride, pad)
    ow = _out_size(w, kw, stride, pad)
    cols = cols.reshape(b, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    # Match the input dtype: a bare np.zeros would silently upcast
    # float32 models to float64, doubling the scatter buffer.
    out = np.zeros((b, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols[
                :, :, :, :, i, j
            ]
    if pad:
        return out[:, :, pad : pad + h, pad : pad + w]
    return out


class Conv2D(Layer):
    """2-D convolution with square kernel, stride, and zero padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: Optional[int] = None,
        name: str = "",
    ):
        super().__init__(name or f"conv{in_channels}x{out_channels}k{kernel}")
        if min(in_channels, out_channels, kernel) < 1 or stride < 1:
            raise ValueError("conv dimensions must be >= 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad if pad is not None else kernel // 2  # 'same' by default
        fan_in = in_channels * kernel * kernel
        self.add_param("W", he_normal((out_channels, in_channels, kernel, kernel), fan_in, rng))
        self.add_param("b", zeros((out_channels,)))
        self._cache: Optional[Tuple] = None

    def forward(self, x, train=True):
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"{self.name}: expected (B, {self.in_channels}, H, W), got {x.shape}"
            )
        b, _c, h, w = x.shape
        oh = _out_size(h, self.kernel, self.stride, self.pad)
        ow = _out_size(w, self.kernel, self.stride, self.pad)
        cols = im2col(x, self.kernel, self.kernel, self.stride, self.pad)
        w_mat = self.params["W"].reshape(self.out_channels, -1)  # (OC, C·k·k)
        out = cols @ w_mat.T + self.params["b"]
        self._cache = (x.shape, cols)
        return out.reshape(b, oh, ow, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, dy):
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x_shape, cols = self._cache
        b, _oc, oh, ow = dy.shape
        dy_mat = dy.transpose(0, 2, 3, 1).reshape(b * oh * ow, self.out_channels)
        self.grads["W"][...] = (dy_mat.T @ cols).reshape(self.params["W"].shape)
        self.grads["b"][...] = dy_mat.sum(axis=0)
        dcols = dy_mat @ self.params["W"].reshape(self.out_channels, -1)
        return col2im(dcols, x_shape, self.kernel, self.kernel, self.stride, self.pad)

    def flops_per_sample(self, h: int, w: int) -> int:
        """Multiply-add count for one input image (for compute sizing)."""
        oh = _out_size(h, self.kernel, self.stride, self.pad)
        ow = _out_size(w, self.kernel, self.stride, self.pad)
        return 2 * oh * ow * self.out_channels * self.in_channels * self.kernel**2


class MaxPool2D(Layer):
    """Max pooling with square window."""

    def __init__(self, size: int = 2, stride: Optional[int] = None, name: str = ""):
        super().__init__(name or f"maxpool{size}")
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.stride = stride or size
        self._cache: Optional[Tuple] = None

    def forward(self, x, train=True):
        b, c, h, w = x.shape
        oh = _out_size(h, self.size, self.stride, 0)
        ow = _out_size(w, self.size, self.stride, 0)
        cols = im2col(x, self.size, self.size, self.stride, 0)
        cols = cols.reshape(b * oh * ow, c, self.size * self.size)
        argmax = cols.argmax(axis=2)
        out = np.take_along_axis(cols, argmax[:, :, None], axis=2)[:, :, 0]
        self._cache = (x.shape, argmax, oh, ow)
        return out.reshape(b, oh, ow, c).transpose(0, 3, 1, 2)

    def backward(self, dy):
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x_shape, argmax, oh, ow = self._cache
        b, c, _h, _w = x_shape
        dy_flat = dy.transpose(0, 2, 3, 1).reshape(b * oh * ow, c)
        dcols = np.zeros((b * oh * ow, c, self.size * self.size))
        np.put_along_axis(dcols, argmax[:, :, None], dy_flat[:, :, None], axis=2)
        return col2im(
            dcols.reshape(b * oh * ow, c * self.size * self.size),
            x_shape,
            self.size,
            self.size,
            self.stride,
            0,
        )


class GlobalAvgPool2D(Layer):
    """Average over spatial dims: (B, C, H, W) → (B, C)."""

    def __init__(self, name: str = ""):
        super().__init__(name or "gap")
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x, train=True):
        if x.ndim != 4:
            raise ValueError(f"{self.name}: expected 4D input, got {x.shape}")
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, dy):
        if self._shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        b, c, h, w = self._shape
        return np.broadcast_to(dy[:, :, None, None], self._shape) / (h * w)
