"""Worker-side optimizers producing the update pushed to the servers.

Contract (matching Algorithm 1 line 15, ``w ← w + u/N``): an optimizer
turns the worker's flat gradient into the flat update ``u`` it pushes;
the servers average contributions over workers, so for plain SGD
``u = −lr·g`` makes one global iteration apply the mean −lr·gradient.

Includes Layer-wise Adaptive Rate Scaling (LARS, paper ref [39]) — the
paper uses LARS to support its large-batch training — which needs the
per-tensor slice ranges of the flat vector.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

LrSchedule = Union[float, Callable[[int], float]]


def resolve_lr(lr: LrSchedule, iteration: int) -> float:
    value = lr(iteration) if callable(lr) else float(lr)
    if value < 0:
        raise ValueError(f"learning rate must be >= 0, got {value} at t={iteration}")
    return value


def step_decay(base_lr: float, boundaries: Sequence[int], factor: float = 0.1) -> Callable[[int], float]:
    """Piecewise-constant decay: multiply by ``factor`` at each boundary."""
    bounds = sorted(boundaries)

    def schedule(t: int) -> float:
        lr = base_lr
        for b in bounds:
            if t >= b:
                lr *= factor
        return lr

    return schedule


def warmup(base: Callable[[int], float], warmup_iters: int) -> Callable[[int], float]:
    """Linear warm-up wrapper (standard for large-batch training)."""
    if warmup_iters < 0:
        raise ValueError("warmup_iters must be >= 0")

    def schedule(t: int) -> float:
        lr = base(t) if callable(base) else float(base)
        if warmup_iters and t < warmup_iters:
            return lr * (t + 1) / warmup_iters
        return lr

    return schedule


class Optimizer(abc.ABC):
    """Stateful per-worker update rule over the flat parameter vector."""

    @abc.abstractmethod
    def update(self, grad: np.ndarray, params: np.ndarray, iteration: int) -> np.ndarray:
        """Return the update to push (server applies ``w += u/N``)."""


class SGD(Optimizer):
    """SGD with momentum and weight decay."""

    def __init__(
        self,
        lr: LrSchedule = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Optional[np.ndarray] = None

    def update(self, grad, params, iteration):
        g = grad
        if self.weight_decay:
            g = g + self.weight_decay * params
        if self.momentum:
            if self._velocity is None:
                self._velocity = np.zeros_like(g)
            self._velocity = self.momentum * self._velocity + g
            g = g + self.momentum * self._velocity if self.nesterov else self._velocity
        return -resolve_lr(self.lr, iteration) * g


class Adam(Optimizer):
    """Adam (Kingma & Ba — the paper's ref [21]).

    The paper's introduction lists parameter-specific learning rates as
    one mitigation for delayed gradients; the staleness ablation compares
    Adam workers against plain SGD under ASP/PSSP.
    """

    def __init__(
        self,
        lr: LrSchedule = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be >= 0")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._t = 0

    def update(self, grad, params, iteration):
        g = grad
        if self.weight_decay:
            g = g + self.weight_decay * params
        if self._m is None:
            self._m = np.zeros_like(g)
            self._v = np.zeros_like(g)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * g
        self._v = self.beta2 * self._v + (1 - self.beta2) * g * g
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        return -resolve_lr(self.lr, iteration) * m_hat / (np.sqrt(v_hat) + self.eps)


class LARS(Optimizer):
    """Layer-wise Adaptive Rate Scaling (You et al., 2017).

    Per tensor: local_lr = η·‖w‖ / (‖g‖ + wd·‖w‖ + ε); the momentum update
    uses local_lr·(g + wd·w).  ``tensor_slices`` are the per-tensor flat
    ranges from :meth:`repro.ml.network.Network.tensor_slices`.
    """

    def __init__(
        self,
        tensor_slices: Sequence[Tuple[int, int]],
        lr: LrSchedule = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        eta: float = 0.001,
        eps: float = 1e-9,
    ):
        if not tensor_slices:
            raise ValueError("LARS needs the per-tensor slice ranges")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.slices = list(tensor_slices)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.eta = eta
        self.eps = eps
        self._velocity: Optional[np.ndarray] = None

    def update(self, grad, params, iteration):
        if self._velocity is None:
            self._velocity = np.zeros_like(grad)
        lr = resolve_lr(self.lr, iteration)
        out = np.empty_like(grad)
        for start, stop in self.slices:
            w = params[start:stop]
            g = grad[start:stop]
            w_norm = float(np.linalg.norm(w))
            g_norm = float(np.linalg.norm(g))
            if w_norm > 0 and g_norm > 0:
                local_lr = self.eta * w_norm / (g_norm + self.weight_decay * w_norm + self.eps)
            else:
                local_lr = 1.0
            scaled = local_lr * (g + self.weight_decay * w)
            self._velocity[start:stop] = self.momentum * self._velocity[start:stop] + scaled
            out[start:stop] = -lr * self._velocity[start:stop]
        return out
