"""Glue between the ML substrate and the parameter-server runners.

A :class:`TrainingTask` packages a network architecture, a dataset, and an
optimizer into the pieces a runner needs: a :class:`ModelSpec` for
sharding, initial flat parameters, a per-worker ``StepFn`` (Algorithm 1's
``step(w)``), and an evaluation function.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.driver import StepContext
from repro.core.keyspace import ModelSpec
from repro.ml.data import Dataset
from repro.ml.loss import accuracy, softmax_cross_entropy
from repro.ml.network import Network
from repro.ml.optim import Optimizer, SGD
from repro.utils.rng import derive_rng


def evaluate(
    net: Network,
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int = 512,
    train_mode: bool = False,
) -> float:
    """Classification accuracy over a full set, batched to bound memory.

    ``train_mode=True`` makes BatchNorm use batch statistics — needed when
    evaluating a BN network whose running stats were never trained
    centrally (each worker tracked its own)."""
    if len(x) == 0:
        raise ValueError("cannot evaluate on an empty set")
    correct = 0.0
    for start in range(0, len(x), batch_size):
        xb = x[start : start + batch_size]
        yb = y[start : start + batch_size]
        logits = net.forward(xb, train=train_mode)
        correct += accuracy(logits, yb) * len(xb)
    return correct / len(x)


class TrainingTask:
    """One data-parallel training job over N workers."""

    def __init__(
        self,
        build_net: Callable[[], Network],
        dataset: Dataset,
        n_workers: int,
        batch_size: int = 32,
        optimizer_factory: Optional[Callable[[Network], Optimizer]] = None,
        seed: int = 0,
        eval_subsample: Optional[int] = None,
        eval_train_mode: bool = False,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.build_net = build_net
        self.dataset = dataset
        self.n_workers = n_workers
        self.batch_size = batch_size
        self.optimizer_factory = optimizer_factory or (lambda net: SGD(lr=0.1))
        self.seed = seed
        self.eval_train_mode = eval_train_mode

        self._ref_net = build_net()
        self.spec: ModelSpec = self._ref_net.model_spec(dataset.name)
        self.init_params: np.ndarray = self._ref_net.get_flat()

        self._worker_nets: Dict[int, Network] = {}
        self._worker_opts: Dict[int, Optimizer] = {}
        self._worker_batches: Dict[int, object] = {}
        self.loss_history: List[float] = []

        rng = derive_rng(seed, "eval")
        n_eval = dataset.n_test if eval_subsample is None else min(eval_subsample, dataset.n_test)
        idx = rng.permutation(dataset.n_test)[:n_eval]
        self._x_eval = dataset.x_test[idx]
        self._y_eval = dataset.y_test[idx]

    # -- per-worker lazy state --------------------------------------------

    def _worker_net(self, worker: int) -> Network:
        if worker not in self._worker_nets:
            self._worker_nets[worker] = self.build_net()
        return self._worker_nets[worker]

    def _worker_opt(self, worker: int) -> Optimizer:
        if worker not in self._worker_opts:
            self._worker_opts[worker] = self.optimizer_factory(self._worker_net(worker))
        return self._worker_opts[worker]

    def _worker_batch_iter(self, worker: int):
        if worker not in self._worker_batches:
            x, y = self.dataset.shard(worker, self.n_workers)
            rng = derive_rng(self.seed, "batches", worker)
            self._worker_batches[worker] = self.dataset.batches(rng, self.batch_size, x, y)
        return self._worker_batches[worker]

    # -- runner-facing pieces -----------------------------------------------

    def step_fn(self, ctx: StepContext) -> np.ndarray:
        """Algorithm 1 worker step: forward/backward on the worker's shard
        with its current (possibly stale) parameters; returns the update
        to push (server applies ``w += u/N``)."""
        net = self._worker_net(ctx.worker)
        net.set_flat(ctx.params)
        xb, yb = next(self._worker_batch_iter(ctx.worker))
        logits = net.forward(xb, train=True)
        loss, dlogits = softmax_cross_entropy(logits, yb)
        self.loss_history.append(loss)
        net.backward(dlogits)
        grad = net.get_flat_grads()
        return self._worker_opt(ctx.worker).update(grad, ctx.params, ctx.iteration)

    def eval_fn(self, params: np.ndarray) -> float:
        """Test accuracy of the given flat parameters."""
        net = self._ref_net
        net.set_flat(params)
        return evaluate(net, self._x_eval, self._y_eval, train_mode=self.eval_train_mode)

    def mean_recent_loss(self, window: int = 50) -> float:
        if not self.loss_history:
            raise ValueError("no steps taken yet")
        recent = self.loss_history[-window:]
        return float(np.mean(recent))
