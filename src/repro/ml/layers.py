"""Core layers: Dense, ReLU, Flatten, Dropout, BatchNorm.

Every layer implements ``forward(x, train)`` and ``backward(dy) -> dx``,
caching whatever the backward pass needs.  Parameters and their gradients
live in ordered dicts keyed by a short name; :class:`repro.ml.network.Network`
flattens them into the single parameter vector the parameter server shards.

All math is vectorized NumPy over batched inputs (leading batch axis),
per the HPC guide: no Python loops over samples.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.ml.initializers import he_normal, zeros


class Layer(abc.ABC):
    """Base layer: parameters, gradients, forward/backward."""

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__.lower()
        self.params: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.grads: "OrderedDict[str, np.ndarray]" = OrderedDict()

    @abc.abstractmethod
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray: ...

    @abc.abstractmethod
    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Given dL/d(output), fill ``self.grads`` and return dL/d(input)."""

    def add_param(self, key: str, value: np.ndarray) -> None:
        self.params[key] = value
        self.grads[key] = np.zeros_like(value)

    @property
    def n_params(self) -> int:
        return sum(p.size for p in self.params.values())

    def zero_grads(self) -> None:
        for g in self.grads.values():
            g[...] = 0.0


class Dense(Layer):
    """Fully-connected layer: y = x @ W + b."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 name: str = ""):
        super().__init__(name or f"dense{in_features}x{out_features}")
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be >= 1")
        self.in_features = in_features
        self.out_features = out_features
        self.add_param("W", he_normal((in_features, out_features), in_features, rng))
        self.add_param("b", zeros((out_features,)))
        self._x: Optional[np.ndarray] = None

    def forward(self, x, train=True):
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected (batch, {self.in_features}), got {x.shape}"
            )
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def backward(self, dy):
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        self.grads["W"][...] = self._x.T @ dy
        self.grads["b"][...] = dy.sum(axis=0)
        return dy @ self.params["W"].T


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self, name: str = ""):
        super().__init__(name or "relu")
        self._mask: Optional[np.ndarray] = None

    def forward(self, x, train=True):
        self._mask = x > 0
        return x * self._mask

    def backward(self, dy):
        if self._mask is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return dy * self._mask


class Flatten(Layer):
    """Collapse all non-batch axes."""

    def __init__(self, name: str = ""):
        super().__init__(name or "flatten")
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x, train=True):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy):
        if self._shape is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        return dy.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at eval time."""

    def __init__(self, rate: float, rng: np.random.Generator, name: str = ""):
        super().__init__(name or f"dropout{rate}")
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x, train=True):
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy):
        if self._mask is None:
            return dy
        return dy * self._mask


class BatchNorm(Layer):
    """Batch normalization over the batch (and spatial) axes.

    Accepts (batch, features) or NCHW (batch, channels, H, W); normalizes
    per feature/channel with learned scale γ and shift β, tracking running
    statistics for eval mode.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5,
                 name: str = ""):
        super().__init__(name or f"bn{num_features}")
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.add_param("gamma", np.ones((num_features,)))
        self.add_param("beta", np.zeros((num_features,)))
        self.running_mean = np.zeros((num_features,))
        self.running_var = np.ones((num_features,))
        self._cache: Optional[Tuple] = None

    def _axes_and_shape(self, x: np.ndarray):
        if x.ndim == 2:
            return (0,), (1, self.num_features)
        if x.ndim == 4:
            return (0, 2, 3), (1, self.num_features, 1, 1)
        raise ValueError(f"{self.name}: expected 2D or 4D input, got {x.shape}")

    def forward(self, x, train=True):
        axes, shape = self._axes_and_shape(x)
        gamma = self.params["gamma"].reshape(shape)
        beta = self.params["beta"].reshape(shape)
        if train:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean.ravel()
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var.ravel()
            )
        else:
            mean = self.running_mean.reshape(shape)
            var = self.running_var.reshape(shape)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if train:
            self._cache = (x_hat, inv_std, axes, shape)
        return gamma * x_hat + beta

    def backward(self, dy):
        if self._cache is None:
            raise RuntimeError(f"{self.name}: backward before forward (train mode)")
        x_hat, inv_std, axes, shape = self._cache
        gamma = self.params["gamma"].reshape(shape)
        m = dy.size / self.num_features  # elements per feature
        self.grads["gamma"][...] = (dy * x_hat).sum(axis=axes)
        self.grads["beta"][...] = dy.sum(axis=axes)
        dxhat = dy * gamma
        # Standard batchnorm backward (all reductions over the norm axes).
        return (
            inv_std
            / m
            * (
                m * dxhat
                - dxhat.sum(axis=axes, keepdims=True)
                - x_hat * (dxhat * x_hat).sum(axis=axes, keepdims=True)
            )
        )
