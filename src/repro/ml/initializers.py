"""Weight initializers (deterministic under a named RNG stream)."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def he_normal(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He initialization — the standard for ReLU networks (ResNet paper)."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_uniform(
    shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
