"""Network containers: Sequential, residual blocks, flat-parameter view.

A :class:`Network` exposes its parameters as one flat fp64 vector (and its
gradients likewise) in a deterministic order, which is the contract the
parameter-server layer shards.  ``set_flat`` writes *in place* into the
layer arrays, so layer objects keep their identity across updates.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.keyspace import ModelSpec, TensorSpec
from repro.ml.layers import BatchNorm, Layer, ReLU
from repro.ml.conv import Conv2D


class Network(abc.ABC):
    """A differentiable model over batched inputs."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray: ...

    @abc.abstractmethod
    def backward(self, dy: np.ndarray) -> np.ndarray: ...

    @property
    @abc.abstractmethod
    def layers(self) -> Sequence[Layer]:
        """All layers in order (composites flattened out)."""

    # -- flat parameter plumbing -----------------------------------------

    def param_items(self) -> List[Tuple[str, np.ndarray]]:
        """(unique name, array) for every parameter, in flattening order."""
        items: List[Tuple[str, np.ndarray]] = []
        for i, layer in enumerate(self.layers):
            for key, arr in layer.params.items():
                items.append((f"L{i}.{layer.name}.{key}", arr))
        return items

    def grad_items(self) -> List[Tuple[str, np.ndarray]]:
        items: List[Tuple[str, np.ndarray]] = []
        for i, layer in enumerate(self.layers):
            for key, arr in layer.grads.items():
                items.append((f"L{i}.{layer.name}.{key}", arr))
        return items

    @property
    def n_params(self) -> int:
        return sum(arr.size for _n, arr in self.param_items())

    def model_spec(self, name: str) -> ModelSpec:
        """A :class:`ModelSpec` describing this network's tensors — the
        input to the slicing/layout machinery."""
        return ModelSpec.from_tensors(
            name, [TensorSpec(n, arr.shape) for n, arr in self.param_items()]
        )

    def get_flat(self) -> np.ndarray:
        return np.concatenate([arr.ravel() for _n, arr in self.param_items()])

    def set_flat(self, flat: np.ndarray) -> None:
        if flat.shape != (self.n_params,):
            raise ValueError(f"expected flat vector of {self.n_params}, got {flat.shape}")
        cursor = 0
        for _n, arr in self.param_items():
            arr[...] = flat[cursor : cursor + arr.size].reshape(arr.shape)
            cursor += arr.size

    def get_flat_grads(self) -> np.ndarray:
        return np.concatenate([arr.ravel() for _n, arr in self.grad_items()])

    # -- convenience -------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, train=False)

    def tensor_slices(self) -> List[Tuple[int, int]]:
        """Per-tensor (start, stop) ranges in the flat vector — used by
        layer-wise optimizers like LARS."""
        out = []
        cursor = 0
        for _n, arr in self.param_items():
            out.append((cursor, cursor + arr.size))
            cursor += arr.size
        return out


class Sequential(Network):
    """Layers applied in order."""

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self._layers = list(layers)

    @property
    def layers(self) -> Sequence[Layer]:
        flat: List[Layer] = []
        for layer in self._layers:
            if isinstance(layer, ResidualBlock):
                flat.extend(layer.sublayers)
            else:
                flat.append(layer)
        return flat

    def forward(self, x, train=True):
        for layer in self._layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, dy):
        for layer in reversed(self._layers):
            dy = layer.backward(dy)
        return dy


class ResidualBlock(Layer):
    """Pre-activation-free basic block: conv-bn-relu-conv-bn + shortcut,
    then ReLU — the CIFAR ResNet block of He et al. (paper ref [1])."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        rng: np.random.Generator,
        stride: int = 1,
        use_bn: bool = True,
        name: str = "",
    ):
        super().__init__(name or f"res{in_channels}x{out_channels}s{stride}")
        self.conv1 = Conv2D(in_channels, out_channels, 3, rng, stride=stride, pad=1)
        self.conv2 = Conv2D(out_channels, out_channels, 3, rng, stride=1, pad=1)
        self.bn1 = BatchNorm(out_channels) if use_bn else None
        self.bn2 = BatchNorm(out_channels) if use_bn else None
        self.relu1 = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.proj: Optional[Conv2D] = Conv2D(
                in_channels, out_channels, 1, rng, stride=stride, pad=0
            )
            self.bn_proj = BatchNorm(out_channels) if use_bn else None
        else:
            self.proj = None
            self.bn_proj = None
        self._out_mask: Optional[np.ndarray] = None

    @property
    def sublayers(self) -> List[Layer]:
        subs: List[Layer] = [self.conv1]
        if self.bn1 is not None:
            subs.append(self.bn1)
        subs.append(self.conv2)
        if self.bn2 is not None:
            subs.append(self.bn2)
        if self.proj is not None:
            subs.append(self.proj)
            if self.bn_proj is not None:
                subs.append(self.bn_proj)
        return subs

    def forward(self, x, train=True):
        h = self.conv1.forward(x, train)
        if self.bn1 is not None:
            h = self.bn1.forward(h, train)
        h = self.relu1.forward(h, train)
        h = self.conv2.forward(h, train)
        if self.bn2 is not None:
            h = self.bn2.forward(h, train)
        if self.proj is not None:
            sc = self.proj.forward(x, train)
            if self.bn_proj is not None:
                sc = self.bn_proj.forward(sc, train)
        else:
            sc = x
        out = h + sc
        self._out_mask = out > 0
        return out * self._out_mask

    def backward(self, dy):
        if self._out_mask is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        dy = dy * self._out_mask
        dbranch = dy
        if self.bn2 is not None:
            dbranch = self.bn2.backward(dbranch)
        dbranch = self.conv2.backward(dbranch)
        dbranch = self.relu1.backward(dbranch)
        if self.bn1 is not None:
            dbranch = self.bn1.backward(dbranch)
        dx = self.conv1.backward(dbranch)
        if self.proj is not None:
            dsc = dy
            if self.bn_proj is not None:
                dsc = self.bn_proj.backward(dsc)
            dx = dx + self.proj.backward(dsc)
        else:
            dx = dx + dy
        return dx
