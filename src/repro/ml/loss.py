"""Loss and classification metrics."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. logits.

    ``labels`` are integer class ids; the returned gradient is already
    divided by the batch size (so downstream gradients are batch means).
    """
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match batch {n}")
    probs = softmax(logits)
    eps = 1e-12
    loss = -np.log(probs[np.arange(n), labels] + eps).mean()
    dlogits = probs
    dlogits[np.arange(n), labels] -= 1.0
    return float(loss), dlogits / n


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    return float((logits.argmax(axis=1) == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k classification accuracy."""
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, logits.shape[1])
    topk = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())
