"""Pure-NumPy DNN substrate.

Substitutes for the paper's Caffe/NVCaffe workers: layers with exact
analytic gradients (validated against numerical differentiation in the
test suite), SGD/momentum/LARS optimizers, softmax cross-entropy, and
procedural CIFAR-like datasets.  Networks expose their parameters as one
flat vector so they plug directly into
:class:`repro.core.api.ParameterServerSystem`.
"""

from repro.ml.data import Dataset, gaussian_blobs, synthetic_cifar10, synthetic_cifar100
from repro.ml.layers import (
    BatchNorm,
    Dense,
    Dropout,
    Flatten,
    Layer,
    ReLU,
)
from repro.ml.conv import Conv2D, GlobalAvgPool2D, MaxPool2D
from repro.ml.loss import accuracy, softmax_cross_entropy
from repro.ml.network import Network, ResidualBlock, Sequential
from repro.ml.models_zoo import (
    alexnet_cifar_spec,
    mini_alexnet,
    mlp,
    proxy_classifier,
    resnet_cifar,
    resnet_cifar_spec,
)
from repro.ml.optim import LARS, SGD, Adam, Optimizer
from repro.ml.training import TrainingTask, evaluate

__all__ = [
    "Dataset",
    "gaussian_blobs",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "BatchNorm",
    "Dense",
    "Dropout",
    "Flatten",
    "Layer",
    "ReLU",
    "Conv2D",
    "GlobalAvgPool2D",
    "MaxPool2D",
    "accuracy",
    "softmax_cross_entropy",
    "Network",
    "ResidualBlock",
    "Sequential",
    "alexnet_cifar_spec",
    "mini_alexnet",
    "mlp",
    "proxy_classifier",
    "resnet_cifar",
    "resnet_cifar_spec",
    "Adam",
    "LARS",
    "SGD",
    "Optimizer",
    "TrainingTask",
    "evaluate",
]
