"""Real-concurrency execution of the FluentPS core.

The discrete-event runners prove protocol behaviour; this package proves
the same :class:`~repro.core.server.ShardServer` code is safe and live
under true thread concurrency (one Python thread per worker, shared
servers behind a lock, condition-variable pull waits).
"""

from repro.parallel.threaded import ThreadedResult, ThreadedRunner

__all__ = ["ThreadedResult", "ThreadedRunner"]
