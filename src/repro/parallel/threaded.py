"""Thread-parallel FluentPS: N worker threads against shared shard servers.

Each worker thread runs Algorithm 1's loop: compute a real NumPy update,
``s_push`` it, then block on ``s_pull`` until every shard server answers.
Server state is guarded by one lock (handler calls are short — NumPy adds
release the GIL for the heavy part anyway); a worker whose pull became a
DPR waits on a per-pull :class:`threading.Event` that the releasing push
sets from whichever thread triggered the frontier advance.

This runner demonstrates liveness and linearizability of the server under
real interleavings — the co-simulation demonstrates timing.  When an
:class:`~repro.obs.Observability` sink is active it also measures those
interleavings in wall-clock time: per-worker iteration latency, lock
acquisition wait, and time blocked in the pull.

An optional :class:`~repro.analysis.races.RaceTracker` observes the
run's synchronization operations (lock, per-pull Event, fork/join) and
its shared-parameter accesses, flagging any pair left unordered by
happens-before — the real-thread analogue of the simulated schedule
exploration in :mod:`repro.analysis.explore`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

if TYPE_CHECKING:  # instrumentation is duck-typed; no runtime import
    from repro.analysis.races import RaceTracker

from repro.core.api import ParameterServerSystem, PullResult
from repro.core.driver import StepContext
from repro.core.metrics import SyncMetrics
from repro.obs import Observability, current_observability, exponential_buckets
from repro.utils.rng import derive_rng

#: Wall-clock histogram buckets: 10us .. ~40s.
_WALL_BUCKETS = exponential_buckets(1e-5, 4.0, 12)


@dataclass
class ThreadedResult:
    """Outcome of one thread-parallel training run."""

    wall_time: float
    iterations: int
    n_workers: int
    metrics: SyncMetrics
    final_params: np.ndarray
    worker_errors: List[BaseException] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.worker_errors


class ThreadedRunner:
    """Run N worker threads to completion against a shared PS system."""

    def __init__(
        self,
        system: ParameterServerSystem,
        step_fn: Callable[[StepContext], np.ndarray],
        max_iter: int,
        seed: int = 0,
        timeout_s: float = 120.0,
        join_grace_s: float = 5.0,
        obs: Optional[Observability] = None,
        race_tracker: Optional["RaceTracker"] = None,
    ):
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        if join_grace_s < 0:
            raise ValueError(f"join_grace_s must be >= 0, got {join_grace_s}")
        self.system = system
        self.step_fn = step_fn
        self.max_iter = max_iter
        self.seed = seed
        self.timeout_s = timeout_s
        self.join_grace_s = join_grace_s
        self.obs = obs or current_observability()
        #: Optional happens-before race tracker (repro.analysis.races);
        #: None keeps the worker loop instrumentation-free.
        self.race_tracker = race_tracker
        #: worker -> end_thread() token, filled as workers exit (joined by
        #: run() so child work happens-before the final parameter read).
        self._end_tokens: Dict[int, dict] = {}
        self._lock = threading.Lock()
        self._t0 = 0.0
        #: Last *completed* iteration per worker (-1 = none yet).
        self._progress: List[int] = [-1] * system.n_workers
        system.set_clock(self._wall)
        reg = self.obs.registry
        self._h_iter = reg.histogram(
            "threaded_iter_seconds",
            "Wall-clock seconds per completed worker iteration",
            buckets=_WALL_BUCKETS,
        )
        self._h_lock = reg.histogram(
            "threaded_lock_wait_seconds",
            "Wall-clock seconds waiting to acquire the server lock",
            buckets=_WALL_BUCKETS,
        )
        self._h_pull = reg.histogram(
            "threaded_pull_block_seconds",
            "Wall-clock seconds blocked waiting for the pull to complete",
            buckets=_WALL_BUCKETS,
        )
        # Mergeable counterparts of the wall-clock histograms: sketches
        # from concurrent runs (or pool processes) combine exactly for
        # cross-run p50/p95/p99.
        self._q_iter = reg.sketch(
            "threaded_iter_quantiles",
            "wall seconds per completed iteration (mergeable sketch)",
        )
        self._q_pull = reg.sketch(
            "threaded_pull_block_quantiles",
            "wall seconds blocked in the pull (mergeable sketch)",
        )

    def _wall(self) -> float:
        return time.monotonic() - self._t0

    def _worker_loop(
        self,
        worker: int,
        errors: List[BaseException],
        race_token: Optional[dict] = None,
    ) -> None:
        h_iter = self._h_iter.labels(worker=worker)
        h_lock = self._h_lock.labels(worker=worker)
        h_pull = self._h_pull.labels(worker=worker)
        q_iter = self._q_iter.labels(worker=worker)
        q_pull = self._q_pull.labels(worker=worker)
        tracker = self.race_tracker
        shard_locs = [
            f"shard{m}.params" for m in range(getattr(self.system, "n_servers", 0))
        ]
        if tracker is not None:
            tracker.begin_thread(race_token, name=f"worker{worker}")
        try:
            # Initial snapshot under the lock: another worker may already
            # be pushing, and the servers apply updates to the very arrays
            # current_params() reads.
            with self._lock:
                if tracker is not None:
                    tracker.lock_acquired(id(self._lock))
                    for loc in shard_locs:
                        tracker.access(loc, write=False, where=f"worker{worker}.init")
                params = self.system.current_params()
                if tracker is not None:
                    tracker.lock_released(id(self._lock))
            rng = derive_rng(self.seed, "step", worker)
            for i in range(self.max_iter):
                t_iter = time.monotonic()
                update = self.step_fn(
                    StepContext(worker=worker, iteration=i, params=params, rng=rng)
                )
                done = threading.Event()
                box: Dict[str, PullResult] = {}

                def on_complete(result: PullResult) -> None:
                    # May run on the releasing pusher's thread (DPR flush):
                    # the Event carries the happens-before edge back to us.
                    box["result"] = result
                    if tracker is not None:
                        tracker.event_set(id(done))
                    done.set()

                t_lock = time.monotonic()
                with self._lock:
                    h_lock.observe(time.monotonic() - t_lock)
                    if tracker is not None:
                        tracker.lock_acquired(id(self._lock))
                        for loc in shard_locs:
                            tracker.access(
                                loc, write=True, where=f"worker{worker}.push@{i}"
                            )
                    self.system.s_push(worker, i, update)
                    self.system.s_pull(worker, i, on_complete)
                    if tracker is not None:
                        for loc in shard_locs:
                            tracker.access(
                                loc, write=False, where=f"worker{worker}.pull@{i}"
                            )
                        tracker.lock_released(id(self._lock))
                # The pull may have completed synchronously (condition held)
                # or will be completed by another worker's push later.
                t_pull = time.monotonic()
                if not done.wait(self.timeout_s):
                    raise TimeoutError(
                        f"worker {worker} pull for iteration {i} timed out after "
                        f"{self.timeout_s}s (possible deadlock)"
                    )
                if tracker is not None:
                    tracker.event_waited(id(done))
                pull_block = time.monotonic() - t_pull
                h_pull.observe(pull_block)
                q_pull.observe(pull_block)
                params = box["result"].params
                self._progress[worker] = i
                iter_wall = time.monotonic() - t_iter
                h_iter.observe(iter_wall)
                q_iter.observe(iter_wall)
        except BaseException as exc:  # propagate to the caller thread
            errors.append(exc)
        finally:
            if tracker is not None:
                self._end_tokens[worker] = tracker.end_thread()

    def run(self) -> ThreadedResult:
        """Start all worker threads, join them, and aggregate results.

        Joining uses one shared wall-clock deadline (``timeout_s`` plus
        ``join_grace_s``) across all threads rather than a fresh timeout
        per join — a hung run fails after the deadline, not after
        N x timeout.
        """
        errors: List[BaseException] = []
        self._t0 = time.monotonic()
        capture = None
        if self.obs.enabled:
            self.obs.registry.set_clock(self._wall)
            # Threaded runs have no sim trace; the capture still collects
            # the servers' protocol instants for the repro.analysis
            # sanitizer (wall-clock timestamps, handler-order event log).
            n_servers = getattr(self.system, "n_servers", 0)
            capture = self.obs.begin_run(
                f"threaded-run{len(self.obs.runs)}-n{self.system.n_workers}"
                f"x{n_servers}"
            )
            self.obs.instants.record(
                "run_config", 0.0, actor="runner",
                runner="threaded", n_workers=self.system.n_workers,
                n_servers=n_servers,
            )
        tracker = self.race_tracker
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(w, errors, tracker.fork() if tracker is not None else None),
                name=f"fluentps-worker-{w}",
                daemon=True,
            )
            for w in range(self.system.n_workers)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + self.timeout_s + self.join_grace_s
        for t in threads:
            t.join(max(0.0, deadline - time.monotonic()))
        if tracker is not None:
            for w, t in enumerate(threads):
                if not t.is_alive():
                    tracker.join_thread(self._end_tokens.get(w))
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            progress = {
                f"worker{w}": self._progress[w] for w in range(self.system.n_workers)
            }
            errors.append(
                TimeoutError(
                    f"threads never finished: {alive}; "
                    f"last completed iteration per worker: {progress}"
                )
            )
        wall = time.monotonic() - self._t0
        if tracker is not None:
            # The final parameter read below happens-after every joined
            # worker; an unjoined (hung) worker would legitimately race.
            for m in range(getattr(self.system, "n_servers", 0)):
                tracker.access(f"shard{m}.params", write=False, where="run.final")
        if capture is not None and not errors:
            capture.complete = True
        return ThreadedResult(
            wall_time=wall,
            iterations=self.max_iter,
            n_workers=self.system.n_workers,
            metrics=self.system.merged_metrics(),
            final_params=self.system.current_params(),
            worker_errors=errors,
        )
