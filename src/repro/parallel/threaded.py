"""Thread-parallel FluentPS: N worker threads against shared shard servers.

Each worker thread runs Algorithm 1's loop: compute a real NumPy update,
``s_push`` it, then block on ``s_pull`` until every shard server answers.
Server state is guarded by one lock (handler calls are short — NumPy adds
release the GIL for the heavy part anyway); a worker whose pull became a
DPR waits on a per-pull :class:`threading.Event` that the releasing push
sets from whichever thread triggered the frontier advance.

This runner demonstrates liveness and linearizability of the server under
real interleavings — the co-simulation demonstrates timing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.core.api import ParameterServerSystem, PullResult
from repro.core.driver import StepContext
from repro.core.metrics import SyncMetrics
from repro.utils.rng import derive_rng


@dataclass
class ThreadedResult:
    """Outcome of one thread-parallel training run."""

    wall_time: float
    iterations: int
    n_workers: int
    metrics: SyncMetrics
    final_params: np.ndarray
    worker_errors: List[BaseException] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.worker_errors


class ThreadedRunner:
    """Run N worker threads to completion against a shared PS system."""

    def __init__(
        self,
        system: ParameterServerSystem,
        step_fn: Callable[[StepContext], np.ndarray],
        max_iter: int,
        seed: int = 0,
        timeout_s: float = 120.0,
    ):
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.system = system
        self.step_fn = step_fn
        self.max_iter = max_iter
        self.seed = seed
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._t0 = 0.0
        system.set_clock(lambda: time.monotonic() - self._t0)

    def _worker_loop(self, worker: int, errors: List[BaseException]) -> None:
        try:
            params = self.system.current_params()
            rng = derive_rng(self.seed, "step", worker)
            for i in range(self.max_iter):
                update = self.step_fn(
                    StepContext(worker=worker, iteration=i, params=params, rng=rng)
                )
                done = threading.Event()
                box: Dict[str, PullResult] = {}

                def on_complete(result: PullResult) -> None:
                    box["result"] = result
                    done.set()

                with self._lock:
                    self.system.s_push(worker, i, update)
                    self.system.s_pull(worker, i, on_complete)
                # The pull may have completed synchronously (condition held)
                # or will be completed by another worker's push later.
                if not done.wait(self.timeout_s):
                    raise TimeoutError(
                        f"worker {worker} pull for iteration {i} timed out after "
                        f"{self.timeout_s}s (possible deadlock)"
                    )
                params = box["result"].params
        except BaseException as exc:  # propagate to the caller thread
            errors.append(exc)

    def run(self) -> ThreadedResult:
        """Start all worker threads, join them, and aggregate results."""
        errors: List[BaseException] = []
        self._t0 = time.monotonic()
        threads = [
            threading.Thread(
                target=self._worker_loop, args=(w, errors), name=f"fluentps-worker-{w}"
            )
            for w in range(self.system.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(self.timeout_s + 5.0)
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            errors.append(TimeoutError(f"threads never finished: {alive}"))
        wall = time.monotonic() - self._t0
        return ThreadedResult(
            wall_time=wall,
            iterations=self.max_iter,
            n_workers=self.system.n_workers,
            metrics=self.system.merged_metrics(),
            final_params=self.system.current_params(),
            worker_errors=errors,
        )
