"""DPOR-style schedule exploration for the co-simulated FluentPS protocol.

The sanitizer certifies the paper's invariants (S001-S016, CS01-CS04) on
exactly one seeded schedule per run.  This module turns that into bounded
*stateless model checking*: it drives the engine's commutation points —
the same-timestamp tie-break hook (:meth:`repro.sim.engine.Engine.set_choice_hook`)
plus optional bounded delivery perturbation
(:attr:`repro.sim.network.Network.delay_hook`) — and systematically
enumerates inequivalent schedules, replaying every one through the full
sanitizer and byte-comparing final parameters across equivalent
schedules.

Independence relation (dynamic partial-order reduction)
-------------------------------------------------------
Two tied events *conflict* (their order can matter) only when they race
for the same per-node FIFO:

- ``tx`` events (TX-lane completion, fast path) to the **same
  destination** conflict: whichever runs first claims the destination's
  RX cursor first, which decides delivery order — and server handling
  order, coin-flip consumption, and update application order downstream.
- ``rx``/``deliver`` events at the same destination conflict for the
  same reason (in practice positive per-lane holds keep them from tying).
- Everything else — events on different nodes, wire events for different
  destinations, local compute/overhead resumes — commutes: swapping them
  yields the same per-destination delivery order, i.e. the same
  Mazurkiewicz trace.

The explorer branches only on conflicting alternatives inside each tie
group; commuting alternatives are counted as *pruned*.  Every explored
schedule is fingerprinted by its per-destination delivery order (the
dependency signature); schedules with equal signatures are equivalent by
construction and must produce byte-identical final parameters — any
mismatch is reported as **X001** (engine nondeterminism).  A schedule
that crashes the runner (e.g. a synchronization deadlock) is reported as
**X002**.

Counterexamples are delta-minimized (greedy ddmin-lite: re-run with each
non-default choice restored to the default, keep the reduction while the
same violation class reproduces) and serialized as a replayable
choice-trace: ``python -m repro.analysis --replay trace.json`` re-runs
the exact schedule and must reproduce the violation deterministically.

Seeded mutations (``ExploreConfig.mutation``) intentionally break an
invariant — ``weak-staleness`` answers pulls one iteration beyond the
advertised SSP bound — so the pipeline's find → minimize → replay path
stays honest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.sanitizer import SanitizerReport, Violation, sanitize_observability
from repro.core.conditions import SSPPull, SyncView
from repro.core.models import SyncModel, pssp, ssp
from repro.core.server import ExecutionMode
from repro.obs import MetricsRegistry, Observability, observed
from repro.sim.network import Message
from repro.sim.stragglers import DeterministicCompute, HeterogeneousCompute

#: Exploration presets: sync model x execution mode cells small enough to
#: tie constantly (symmetric workers) yet exercise distinct protocol paths.
PRESETS: Dict[str, Tuple[str, Callable[[], SyncModel], ExecutionMode]] = {
    "ssp": ("ssp(1) under the soft barrier", lambda: ssp(1), ExecutionMode.SOFT_BARRIER),
    "pssp": ("pssp(1, c=0.5), lazy execution", lambda: pssp(1, 0.5), ExecutionMode.LAZY),
    # ssp(0) makes every pull that beats its peer's push a DPR, so lazy
    # buffering/flush and the 0-missing guarantee are on the hot path.
    "lazy": ("ssp(0), lazy execution (DPR-heavy)", lambda: ssp(0), ExecutionMode.LAZY),
}


class _LeakySSPPull(SSPPull):
    """Seeded bug: advertises bound ``s`` but answers one iteration staler.

    ``staleness()`` still reports ``s`` (what the server_config event
    advertises to the sanitizer), while the condition admits pulls up to
    ``s + 1`` missing iterations — exactly the off-by-one a refactor of
    the DPR threshold could introduce.  S004 must catch it.
    """

    def __call__(self, view: SyncView) -> bool:
        return view.progress < view.v_train + self.s + 1


def _weaken_staleness(model: SyncModel) -> SyncModel:
    s = int(model.staleness)
    return SyncModel(
        f"{model.name}+weak-staleness",
        lambda: _LeakySSPPull(s),
        model.make_push,
        staleness=s,
        params=dict(model.params),
    )


#: Named invariant mutations for self-testing the explorer pipeline.
MUTATIONS: Dict[str, Callable[[SyncModel], SyncModel]] = {
    "weak-staleness": _weaken_staleness,
}


@dataclass
class ExploreConfig:
    """One bounded exploration: the run shape plus the search budget.

    The run-shape fields (everything except the budgets) fully determine
    a schedule given a choice prefix — they are what a
    :class:`ChoiceTrace` serializes for replay.
    """

    preset: str = "ssp"
    n_workers: int = 2
    n_servers: int = 2
    max_iter: int = 4
    seed: int = 0
    #: 0 → identical deterministic workers (maximum ties); > 0 → persistent
    #: per-worker slowdown spread (grows real progress gaps, the regime
    #: where staleness bugs manifest).
    spread: float = 0.0
    #: Optional seeded invariant mutation (see :data:`MUTATIONS`).
    mutation: Optional[str] = None
    #: Bounded delivery perturbation: extra RX-hold seconds per message id.
    delays: Dict[int, float] = field(default_factory=dict)
    #: Search budget: maximum schedules (runs) to execute.
    max_schedules: int = 200
    #: Depth cap: decision points recorded per run (beyond it: FIFO).
    max_decisions: int = 400
    #: Stop once this many inequivalent schedules were seen (None = never).
    target_inequivalent: Optional[int] = None

    def __post_init__(self) -> None:
        if self.preset not in PRESETS:
            raise ValueError(f"unknown preset {self.preset!r}; have {sorted(PRESETS)}")
        if self.mutation is not None and self.mutation not in MUTATIONS:
            raise ValueError(f"unknown mutation {self.mutation!r}; have {sorted(MUTATIONS)}")

    def run_params(self) -> Dict[str, Any]:
        """The JSON-safe run-shape subset that a choice trace pins down."""
        return {
            "preset": self.preset,
            "n_workers": self.n_workers,
            "n_servers": self.n_servers,
            "max_iter": self.max_iter,
            "seed": self.seed,
            "spread": self.spread,
            "mutation": self.mutation,
            "delays": {str(k): v for k, v in self.delays.items()},
        }

    @classmethod
    def from_run_params(cls, doc: Dict[str, Any]) -> "ExploreConfig":
        return cls(
            preset=doc["preset"],
            n_workers=int(doc["n_workers"]),
            n_servers=int(doc["n_servers"]),
            max_iter=int(doc["max_iter"]),
            seed=int(doc["seed"]),
            spread=float(doc.get("spread", 0.0)),
            mutation=doc.get("mutation"),
            delays={int(k): float(v) for k, v in doc.get("delays", {}).items()},
        )


# -- event labels and the independence relation ---------------------------


def _label(entry: Tuple) -> Tuple:
    """Stable identity of one heap entry for decisions and replay checks.

    Wire events carry the message coordinates; everything else is local
    (``(local, fn, seq)`` — unique, hence independent of everything).
    """
    fn, arg = entry[2], entry[3]
    if type(arg) is tuple and arg and arg[0].__class__ is Message:
        msg = arg[0]
        kind = "tx" if getattr(fn, "__name__", "") == "_fast_tx_done" else "rx"
        return (kind, msg.tag, msg.src, msg.dst, msg.msg_id)
    if arg.__class__ is Message:
        return ("deliver", arg.tag, arg.src, arg.dst, arg.msg_id)
    return ("local", getattr(fn, "__qualname__", "?"), entry[1])


def _conflict_key(label: Tuple, tx_conflicts: bool = False) -> Optional[Tuple]:
    """Events conflict iff their keys are equal (None = conflicts with
    nothing): wire events racing for the same destination FIFO.

    On the zero-hold exploration cluster a ``tx`` event's RX-cursor claim
    is a no-op (``rx_end == arrival`` regardless of claim order), so tx
    ties commute — unless a delay perturbation is active, which advances
    the cursor and makes claim order observable again
    (``tx_conflicts=True``).
    """
    kind = label[0]
    if kind == "rx" or (kind == "tx" and tx_conflicts):
        return (kind, label[3])  # (kind, dst)
    # ``local`` events and post-delivery resumes commute: inbox
    # consumption order equals append order however they interleave, and
    # the worker's reply bookkeeping (disjoint-shard gather, max, a
    # countdown) is commutative.
    return None


def _fifo_ok(labels: Sequence[Tuple], j: int) -> bool:
    """Running candidate ``j`` first must not reorder one (src, dst)
    pair's messages (the per-pair FIFO the protocol relies on).  Positive
    lane holds make same-pair ties impossible in practice; this is the
    defensive guard that keeps the explorer inside the wire contract."""
    lj = labels[j]
    if lj[0] == "local":
        return True
    for k, lk in enumerate(labels):
        if (
            k != j
            and lk[0] == lj[0]
            and lk[2] == lj[2]
            and lk[3] == lj[3]
            and lk[4] < lj[4]
        ):
            return False
    return True


@dataclass
class _Decision:
    """One consulted tie group: candidate labels (seq order) + the pick."""

    labels: List[Tuple]
    chosen: int


class _ChoiceController:
    """The engine choice hook: scripted prefix, FIFO default beyond it.

    Records every consulted tie group so the explorer can branch on
    conflicting alternatives, and (during replay) cross-checks the chosen
    candidate's label against the trace to detect drift.
    """

    def __init__(
        self,
        prefix: Sequence[int],
        max_decisions: int,
        expected_labels: Optional[Sequence[Sequence[Any]]] = None,
    ):
        self.prefix = list(prefix)
        self.max_decisions = max_decisions
        self.expected = expected_labels
        self.decisions: List[_Decision] = []
        self.mismatches: List[str] = []
        self.truncated = False

    def __call__(self, when: float, group: List[Tuple]) -> int:
        idx = len(self.decisions)
        if idx >= self.max_decisions:
            self.truncated = True
            return 0
        labels = [_label(e) for e in group]
        choice = self.prefix[idx] if idx < len(self.prefix) else 0
        if not 0 <= choice < len(group):
            self.mismatches.append(
                f"decision {idx}: trace chose {choice} of a {len(group)}-way tie"
            )
            choice = 0
        if self.expected is not None and idx < len(self.expected):
            want = list(self.expected[idx])
            got = list(labels[choice])
            if got != want:
                self.mismatches.append(
                    f"decision {idx}: replay chose {got}, trace recorded {want}"
                )
        self.decisions.append(_Decision(labels, choice))
        return choice


# -- running one schedule --------------------------------------------------


@dataclass
class _Outcome:
    """Everything one scheduled run produced."""

    decisions: List[_Decision]
    report: SanitizerReport
    signature: str
    params_digest: str
    error: Optional[str] = None
    truncated: bool = False
    mismatches: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.error is not None or not self.report.ok

    def violation_codes(self) -> List[str]:
        codes = [v.code for v in self.report.violations]
        if self.error is not None:
            codes.append("X002")
        return codes


def _race_cluster(n_workers: int, n_servers: int):
    """A cluster whose only delay is propagation: zero NIC holds keep
    logically-concurrent messages tied at the same instant, so ordering
    nondeterminism shows up as engine tie groups instead of being frozen
    into a timing skew the checker can't commute."""
    from repro.sim.cluster import ClusterSpec, NodeSpec
    from repro.sim.network import NicSpec

    nic = NicSpec(bandwidth_Bps=float("inf"), overhead_s=0.0)
    return ClusterSpec(
        name=f"explore-{n_workers}w{n_servers}s",
        workers=[
            NodeSpec(name=f"worker{i}", flops=1e12, nic=nic) for i in range(n_workers)
        ],
        servers=[
            NodeSpec(name=f"server{i}", flops=1e12, nic=nic) for i in range(n_servers)
        ],
        latency_s=100e-6,
    )


def _sim_config(cfg: ExploreConfig):
    from repro.bench.workloads import blobs_task
    from repro.sim.runner import SimConfig

    _desc, make_model, execution = PRESETS[cfg.preset]
    model = make_model()
    if cfg.mutation is not None:
        model = MUTATIONS[cfg.mutation](model)
    # Tiny real-gradient task: final parameters are a byte-comparable
    # function of the update application order each schedule induces.
    task = blobs_task(
        cfg.n_workers, n_classes=4, dim=8, hidden=(8,),
        n_train=64, n_test=32, batch_size=8, seed=cfg.seed + 17,
    )
    compute = (
        DeterministicCompute()
        if cfg.spread <= 0
        else HeterogeneousCompute(cfg.n_workers, spread=cfg.spread, jitter_sigma=0.0)
    )
    return SimConfig(
        cluster=_race_cluster(cfg.n_workers, cfg.n_servers),
        max_iter=cfg.max_iter,
        sync=model,
        execution=execution,
        compute_model=compute,
        base_compute_time=0.005,
        task=task,
        seed=cfg.seed,
        # Zero per-request costs: server handling stays inside the tie
        # group its deliveries arrived in (ordering freedom, no skew).
        server_op_overhead_s=0.0,
        dpr_overhead_s=0.0,
        # The independence relation in ``_conflict_key`` is stated over
        # the inbox-loop event structure (an ``rx`` event only appends;
        # handling runs in a later resume event).  The direct dispatcher
        # folds handling into the ``rx`` event itself, which changes
        # what a tie flip reorders — so exploration always drives the
        # proc oracle.  Direct-vs-proc equivalence on natural schedules
        # is covered by the dispatch differential tests instead.
        server_dispatch="proc",
        # Keep periodic scrapes far out of the protocol's tie groups.
        snapshot_interval_s=10.0,
    )


def _run_schedule(
    cfg: ExploreConfig,
    prefix: Sequence[int],
    expected_labels: Optional[Sequence[Sequence[Any]]] = None,
) -> _Outcome:
    """Execute one fully-determined schedule and sanitize it."""
    from repro.sim.runner import FluentPSSimRunner

    controller = _ChoiceController(prefix, cfg.max_decisions, expected_labels)
    deliveries: List[Tuple[str, str, str, int]] = []
    pair_counts: Dict[Tuple[str, str], int] = {}

    def record_delivery(msg: Message) -> None:
        # Fingerprint by per-pair sequence number, not msg_id: pair FIFO
        # makes the k-th delivered message of a pair the k-th sent, so
        # the label is stable across schedules that renumber sends.
        pair = (msg.src, msg.dst)
        n = pair_counts.get(pair, 0)
        pair_counts[pair] = n + 1
        deliveries.append((msg.dst, msg.src, msg.tag, n))

    obs = Observability(MetricsRegistry("explore"))
    error: Optional[str] = None
    params_digest = ""
    with observed(obs):
        runner = FluentPSSimRunner(_sim_config(cfg))
        runner.engine.set_choice_hook(controller)
        runner.net.on_delivery(record_delivery)
        if cfg.delays:
            delays = cfg.delays
            runner.net.delay_hook = lambda msg: delays.get(msg.msg_id, 0.0)
        try:
            result = runner.run()
        except Exception as exc:  # deadlock / engine fault: a finding
            error = f"{type(exc).__name__}: {exc}"
        else:
            if result.final_params is not None:
                params_digest = hashlib.sha256(
                    result.final_params.tobytes()
                ).hexdigest()
    report = sanitize_observability(obs)
    # Per-destination delivery order is the dependency signature: equal
    # signatures <=> equivalent schedules under the independence relation.
    per_dst: Dict[str, List[Tuple[str, str, int]]] = {}
    for dst, src, tag, n in deliveries:
        per_dst.setdefault(dst, []).append((src, tag, n))
    signature = hashlib.sha256(
        json.dumps(sorted(per_dst.items()), separators=(",", ":")).encode()
    ).hexdigest()
    return _Outcome(
        decisions=controller.decisions,
        report=report,
        signature=signature,
        params_digest=params_digest,
        error=error,
        truncated=controller.truncated,
        mismatches=controller.mismatches,
    )


# -- choice traces (serialized counterexamples) ----------------------------


@dataclass
class ChoiceTrace:
    """A replayable schedule: run shape + the choice at every tie.

    ``choices[i]`` is the index taken at decision ``i`` (trailing FIFO
    defaults are stripped); ``chosen_labels`` pins each chosen event's
    identity so replay detects drift against a changed codebase instead
    of silently checking a different schedule.
    """

    config: Dict[str, Any]
    choices: List[int]
    chosen_labels: List[List[Any]] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    found_after_runs: int = 0
    version: int = 1

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChoiceTrace":
        doc = json.loads(text)
        if doc.get("version") != 1:
            raise ValueError(f"unsupported choice-trace version {doc.get('version')!r}")
        return cls(
            config=doc["config"],
            choices=[int(c) for c in doc["choices"]],
            chosen_labels=[list(lbl) for lbl in doc.get("chosen_labels", [])],
            violations=[str(v) for v in doc.get("violations", [])],
            found_after_runs=int(doc.get("found_after_runs", 0)),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ChoiceTrace":
        return cls.from_json(Path(path).read_text())


@dataclass
class ReplayResult:
    """Outcome of replaying a choice trace."""

    report: SanitizerReport
    params_digest: str
    n_decisions: int
    mismatches: List[str]
    error: Optional[str] = None

    def violation_codes(self) -> List[str]:
        codes = [v.code for v in self.report.violations]
        if self.error is not None:
            codes.append("X002")
        return codes

    @property
    def reproduced(self) -> bool:
        """Did the replay land on the recorded schedule and fail again?"""
        return not self.mismatches and bool(self.violation_codes())


def replay_trace(trace: ChoiceTrace) -> ReplayResult:
    """Re-run the exact schedule a :class:`ChoiceTrace` pins down."""
    cfg = ExploreConfig.from_run_params(trace.config)
    outcome = _run_schedule(cfg, trace.choices, expected_labels=trace.chosen_labels)
    return ReplayResult(
        report=outcome.report,
        params_digest=outcome.params_digest,
        n_decisions=len(outcome.decisions),
        mismatches=outcome.mismatches,
        error=outcome.error,
    )


def _chosen_labels(decisions: Sequence[_Decision], n: int) -> List[List[Any]]:
    return [list(d.labels[d.chosen]) for d in decisions[:n]]


def _strip_defaults(choices: List[int]) -> List[int]:
    out = list(choices)
    while out and out[-1] == 0:
        out.pop()
    return out


def _minimize(
    cfg: ExploreConfig, choices: List[int], codes: Set[str], budget: int = 64
) -> List[int]:
    """Greedy ddmin-lite: restore non-default choices to the FIFO default
    one at a time (last first) while the same violation class reproduces."""

    def fails(trial: List[int]) -> bool:
        return bool(set(_run_schedule(cfg, trial).violation_codes()) & codes)

    best = _strip_defaults(choices)
    changed = True
    while changed and budget > 0:
        changed = False
        for i in range(len(best) - 1, -1, -1):
            if best[i] == 0 or budget <= 0:
                continue
            trial = _strip_defaults(best[:i] + [0] + best[i + 1 :])
            budget -= 1
            if fails(trial):
                best = trial
                changed = True
    return _strip_defaults(best)


# -- the explorer ----------------------------------------------------------


@dataclass
class ExploreReport:
    """Outcome of one bounded exploration."""

    preset: str
    runs: int = 0
    inequivalent: int = 0
    decision_points: int = 0
    max_tie_width: int = 0
    branched: int = 0
    pruned: int = 0
    truncated_runs: int = 0
    frontier_exhausted: bool = False
    violations: List[Violation] = field(default_factory=list)
    counterexample: Optional[ChoiceTrace] = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.counterexample is None

    @property
    def pruning_ratio(self) -> float:
        """Fraction of tie alternatives DPOR discarded as commuting."""
        considered = self.pruned + self.branched
        return self.pruned / considered if considered else 0.0

    def describe(self) -> str:
        head = (
            f"explore[{self.preset}]: {self.runs} runs, "
            f"{self.inequivalent} inequivalent schedule(s), "
            f"{self.decision_points} decision point(s), "
            f"DPOR pruning {self.pruning_ratio:.1%} "
            f"({self.pruned}/{self.pruned + self.branched} alternatives)"
        )
        if self.truncated_runs:
            head += f", {self.truncated_runs} depth-capped run(s)"
        if self.ok:
            return head + ": clean"
        lines = [head + f": {len(self.violations)} violation(s)"]
        lines += ["  " + v.describe() for v in self.violations[:10]]
        if self.counterexample is not None:
            lines.append(
                "  minimized counterexample: "
                f"choices={self.counterexample.choices} "
                f"(found after {self.counterexample.found_after_runs} run(s))"
            )
        return "\n".join(lines)


def explore(cfg: ExploreConfig) -> ExploreReport:
    """Bounded DFS over inequivalent schedules of one preset.

    Every explored schedule runs under the full sanitizer.  The first
    failing schedule is delta-minimized into ``report.counterexample``
    and exploration stops; otherwise the search runs until the branch
    frontier, the ``max_schedules`` budget, or ``target_inequivalent``
    is exhausted.
    """
    report = ExploreReport(preset=cfg.preset)
    signatures: Dict[str, str] = {}
    visited: Set[Tuple[int, ...]] = set()
    stack: List[List[int]] = [[]]
    while stack and report.runs < cfg.max_schedules:
        prefix = stack.pop()
        outcome = _run_schedule(cfg, prefix)
        report.runs += 1
        report.truncated_runs += 1 if outcome.truncated else 0
        report.decision_points = max(report.decision_points, len(outcome.decisions))
        prior = signatures.get(outcome.signature)
        if prior is None:
            signatures[outcome.signature] = outcome.params_digest
        elif prior != outcome.params_digest:
            report.violations.append(
                Violation(
                    code="X001",
                    message=(
                        "equivalent schedules disagree on final parameters "
                        f"(signature {outcome.signature[:12]}, prefix {prefix})"
                    ),
                )
            )
        report.inequivalent = len(signatures)
        if outcome.failed:
            codes = set(outcome.violation_codes())
            full = _strip_defaults([d.chosen for d in outcome.decisions])
            minimized = _minimize(cfg, full, codes)
            final = _run_schedule(cfg, minimized)
            trace = ChoiceTrace(
                config=cfg.run_params(),
                choices=minimized,
                chosen_labels=_chosen_labels(final.decisions, len(minimized)),
                violations=sorted(set(final.violation_codes()) or codes),
                found_after_runs=report.runs,
            )
            report.counterexample = trace
            report.violations.extend(outcome.report.violations)
            if outcome.error is not None:
                report.violations.append(
                    Violation(code="X002", message=f"schedule crashed: {outcome.error}")
                )
            break
        # Branch: for every decision this run took beyond its scripted
        # prefix, enqueue each *conflicting* alternative (DPOR); the
        # commuting ones are pruned.
        tx_conflicts = bool(cfg.delays)
        for i in range(len(prefix), len(outcome.decisions)):
            d = outcome.decisions[i]
            chosen_key = _conflict_key(d.labels[d.chosen], tx_conflicts)
            base = [dd.chosen for dd in outcome.decisions[:i]]
            for j in range(len(d.labels)):
                if j == d.chosen:
                    continue
                key = _conflict_key(d.labels[j], tx_conflicts)
                if (
                    key is None
                    or chosen_key is None
                    or key != chosen_key
                    or not _fifo_ok(d.labels, j)
                ):
                    report.pruned += 1
                    continue
                new_prefix = tuple(base + [j])
                if new_prefix in visited:
                    continue
                visited.add(new_prefix)
                report.branched += 1
                stack.append(list(new_prefix))
        report.max_tie_width = max(
            [report.max_tie_width] + [len(d.labels) for d in outcome.decisions]
        )
        if (
            cfg.target_inequivalent is not None
            and report.inequivalent >= cfg.target_inequivalent
        ):
            break
    report.frontier_exhausted = not stack
    return report
