"""Normalized protocol events: the sanitizer's input format.

Every :class:`~repro.core.server.ShardServer` emits a structured event
stream through the observability instant log (``server_config``, ``push``,
``pull_request``, ``pull_answer``, ``dpr_buffered``, ``dpr_rebuffered``,
``frontier_advance``, ``server_restore``, ``pssp_pass``/``pssp_pause``).
This module turns the three places those events can live — a live
:class:`~repro.obs.export.InstantLog`, a :class:`~repro.obs.RunCapture`,
or a dumped Chrome/Perfetto trace file — into one list of
:class:`ProtocolEvent` records in emission order, which is the
happens-before order per shard (handlers run serialized per server in
every runner).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

#: Instant names that participate in the protocol replay.
PROTOCOL_EVENT_NAMES = frozenset(
    {
        "server_config",
        "run_config",
        "push",
        "pull_request",
        "pull_answer",
        "dpr_buffered",
        "dpr_rebuffered",
        "dpr_released",
        "frontier_advance",
        "server_restore",
        "pssp_pass",
        "pssp_pause",
    }
)

_US = 1e6  # trace-format microseconds -> seconds


@dataclass(frozen=True)
class ProtocolEvent:
    """One normalized protocol event.

    ``index`` is the event's position in the stream; within one shard
    (one server ``uid``) stream order equals the order the server handled
    the operations, which is what the happens-before checks replay.
    """

    index: int
    name: str
    t: float
    actor: str = ""
    args: Dict[str, object] = field(default_factory=dict)

    def arg(self, key: str, default=None):
        """Raw argument lookup."""
        return self.args.get(key, default)

    def iarg(self, key: str) -> Optional[int]:
        """Integer argument, or None when absent."""
        v = self.args.get(key)
        return None if v is None else int(v)

    def farg(self, key: str) -> Optional[float]:
        """Float argument; None encodes an unbounded (ASP) threshold."""
        v = self.args.get(key)
        if v is None:
            return None
        v = float(v)
        return None if math.isinf(v) else v

    @property
    def uid(self) -> Optional[int]:
        """Server incarnation id (falls back to shard id for foreign
        streams that lack uids)."""
        v = self.iarg("uid")
        return v if v is not None else self.iarg("shard")

    def describe(self) -> str:
        bits = [f"#{self.index}", self.name, f"t={self.t:.6g}"]
        for key in ("shard", "worker", "progress", "v_train", "missing", "s"):
            if key in self.args:
                bits.append(f"{key}={self.args[key]}")
        return " ".join(bits)


def iter_events_from_instants(instants: Iterable) -> Iterator[ProtocolEvent]:
    """Stream-normalize a live instant log (``repro.obs`` Instants).

    Lazy counterpart of :func:`events_from_instants`: one ProtocolEvent
    at a time, so a disk-spilled :class:`~repro.obs.export.InstantLog`
    (100k-scale runs) is replayed in chunks without ever materializing
    the multi-million-event stream.
    """
    index = 0
    for inst in instants:
        if inst.name not in PROTOCOL_EVENT_NAMES:
            continue
        yield ProtocolEvent(
            index=index,
            name=inst.name,
            t=float(inst.t),
            actor=inst.actor,
            args=dict(inst.args),
        )
        index += 1


def events_from_instants(instants: Iterable) -> List[ProtocolEvent]:
    """Normalize a live instant log (``repro.obs`` Instants)."""
    return list(iter_events_from_instants(instants))


def events_from_run(capture) -> List[ProtocolEvent]:
    """Normalize one :class:`~repro.obs.RunCapture`'s instants."""
    return events_from_instants(capture.instants)


def events_from_trace_doc(doc: Dict[str, object]) -> List[ProtocolEvent]:
    """Normalize a loaded Chrome/Perfetto trace document.

    Instant events (``"ph": "i"``) were dumped in emission order by
    :func:`repro.obs.export.dump_trace`; list order is preserved, so the
    replay order matches the live stream.
    """
    out: List[ProtocolEvent] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "i" or ev.get("name") not in PROTOCOL_EVENT_NAMES:
            continue
        out.append(
            ProtocolEvent(
                index=len(out),
                name=str(ev["name"]),
                t=float(ev.get("ts", 0.0)) / _US,
                actor="",
                args=dict(ev.get("args", {})),
            )
        )
    return out


def events_from_trace_file(path: Union[str, Path]) -> List[ProtocolEvent]:
    """Load + normalize a dumped trace file (``--trace-out`` artifact)."""
    return events_from_trace_doc(json.loads(Path(path).read_text()))
