"""Protocol sanitizer: replay event streams through invariant checkers.

The paper's correctness claims are invariants, and every one of them is
mechanically checkable from the protocol event stream a
:class:`~repro.core.server.ShardServer` emits:

- Algorithm 1's ``V_train`` frontier is monotone and advances only when
  the push condition held (``count[V_train] >= quorum``);
- pushes are sequential per worker (the sPush ordering contract);
- every answered pull obeys its synchronization model's staleness bound
  (``missing < s + 1``), except PSSP answers granted by an over-threshold
  coin pass — and every claimed coin pass is backed by a recorded
  ``pssp_pass`` event (the exemption cannot be forged);
- lazy execution answers delayed pulls with **0 missing iterations**
  (Figure 3b), the soft barrier with at most ``s`` missing (Figure 3a);
- a pull is buffered as a DPR only when the requester was actually over
  the threshold (no spurious blocks);
- every buffered DPR is eventually answered (no starvation) and every
  pull request gets exactly one answer (no lost wakeups — the threaded
  runner's per-pull Events depend on the releasing push firing them);
- copy-on-write snapshot discipline: replies answered at the same
  ``version`` share one parameter copy (same storage tag), and a reply
  after a push never reuses a stale copy — ``version`` and storage tag
  stay in bijection between restores (S016).

The checker keeps one :class:`VectorClock` of per-worker push progress
per server incarnation and replays events in stream order, which is the
happens-before order per shard (server handlers are serialized in every
runner).  Violations carry the offending event plus a trailing window of
context events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.analysis.events import ProtocolEvent, iter_events_from_instants


@dataclass(frozen=True)
class Violation:
    """One detected protocol violation."""

    code: str
    message: str
    event: Optional[ProtocolEvent] = None
    window: Tuple[ProtocolEvent, ...] = ()
    uid: Optional[int] = None

    def describe(self) -> str:
        loc = f" at {self.event.describe()}" if self.event else ""
        return f"[{self.code}] {self.message}{loc}"


class ProtocolViolation(AssertionError):
    """Raised when a sanitized event stream violates a paper invariant.

    Carries the structured violations and, for the first one, the window
    of events leading up to it (``.window``) for debugging.
    """

    def __init__(self, violations: List[Violation]):
        self.violations = violations
        self.window = violations[0].window if violations else ()
        lines = [f"{len(violations)} protocol violation(s):"]
        lines += ["  " + v.describe() for v in violations[:10]]
        if len(violations) > 10:
            lines.append(f"  ... and {len(violations) - 10} more")
        if self.window:
            lines.append("event window before first violation:")
            lines += ["  " + e.describe() for e in self.window]
        super().__init__("\n".join(lines))


class VectorClock:
    """Per-worker monotone progress clock for one shard.

    Component ``w`` is the last iteration worker ``w`` pushed (−1 before
    any push).  A pull for progress ``p`` happens-after the requester's
    push of ``p``; the frontier ``V_train`` happens-after enough workers'
    clocks reached ``V_train − 1``.
    """

    def __init__(self) -> None:
        self._c: Dict[int, int] = {}

    def get(self, worker: int) -> int:
        return self._c.get(worker, -1)

    def set(self, worker: int, value: int) -> None:
        self._c[worker] = value

    def as_dict(self) -> Dict[int, int]:
        return dict(self._c)


#: Event window length kept for violation context.
DEFAULT_WINDOW = 12


class ShardChecker:
    """Replays one server incarnation's events and checks its invariants."""

    def __init__(self, uid: int, sink: "ProtocolSanitizer"):
        self.uid = uid
        self.sink = sink
        # Config (filled by a server_config event; checks needing it are
        # skipped until it arrives, so foreign/partial streams degrade
        # gracefully instead of false-positives).
        self.n_workers: Optional[int] = None
        self.execution: Optional[str] = None
        self.quorum: Optional[int] = None
        self.pull_kind: Optional[str] = None
        # Replay state.
        self.push_clock = VectorClock()
        self.pull_clock = VectorClock()  # last answered pull per worker
        self.v_train = 0
        self.count: Dict[int, int] = {}
        self.outstanding: Dict[Tuple[int, int], int] = {}
        self.buffered: Dict[Tuple[int, int], int] = {}
        self.pssp_passes: Dict[Tuple[int, int], int] = {}
        # COW snapshot discipline (S016): version <-> storage-tag bijection.
        self.snap_by_version: Dict[int, int] = {}
        self.version_by_snap: Dict[int, int] = {}

    # -- helpers ----------------------------------------------------------

    def _flag(self, code: str, message: str, ev: ProtocolEvent) -> None:
        self.sink.flag(code, message, ev, uid=self.uid)

    # -- event dispatch ---------------------------------------------------

    def feed(self, ev: ProtocolEvent) -> None:
        handler = getattr(self, "_on_" + ev.name, None)
        if handler is not None:
            handler(ev)

    def _on_server_config(self, ev: ProtocolEvent) -> None:
        self.n_workers = ev.iarg("n_workers")
        self.execution = ev.arg("execution")
        self.quorum = ev.iarg("quorum")
        self.pull_kind = ev.arg("pull_kind")
        # Bootstrap the replay from the server's state snapshot: a stream
        # may start mid-life (second driver run, post-restore capture),
        # and the leading config event carries the state at that point.
        v = ev.iarg("v_train")
        if v is not None:
            self.v_train = v
        progress = ev.arg("worker_progress")
        if progress is not None:
            self.push_clock = VectorClock()
            for w, p in enumerate(progress):
                self.push_clock.set(w, int(p))
        count = ev.arg("count")
        if count is not None:
            self.count = {int(k): int(n) for k, n in dict(count).items()}

    def _on_push(self, ev: ProtocolEvent) -> None:
        worker, progress = ev.iarg("worker"), ev.iarg("progress")
        expected = self.push_clock.get(worker) + 1
        if progress != expected:
            self._flag(
                "S001",
                f"out-of-order push: worker {worker} pushed iteration "
                f"{progress}, expected {expected}",
                ev,
            )
        self.push_clock.set(worker, progress)
        self.count[progress] = self.count.get(progress, 0) + 1

    def _on_frontier_advance(self, ev: ProtocolEvent) -> None:
        new = ev.iarg("v_train")
        if new != self.v_train + 1:
            self._flag(
                "S002",
                f"non-monotone frontier: V_train advanced {self.v_train} -> {new} "
                "(must increment by exactly 1)",
                ev,
            )
        if self.quorum is not None:
            support = self.count.get(self.v_train, 0)
            if support < self.quorum:
                self._flag(
                    "S003",
                    f"frontier overrun: advance past iteration {self.v_train} "
                    f"with only {support}/{self.quorum} required pushes",
                    ev,
                )
        self.v_train = new if new is not None else self.v_train + 1

    def _on_pull_request(self, ev: ProtocolEvent) -> None:
        worker, progress = ev.iarg("worker"), ev.iarg("progress")
        if progress > self.push_clock.get(worker):
            self._flag(
                "S006",
                f"pull before push: worker {worker} requested progress "
                f"{progress} but has only pushed through "
                f"{self.push_clock.get(worker)}",
                ev,
            )
        key = (worker, progress)
        self.outstanding[key] = self.outstanding.get(key, 0) + 1

    def _on_dpr_buffered(self, ev: ProtocolEvent) -> None:
        self._check_block_justified(ev)
        key = (ev.iarg("worker"), ev.iarg("progress"))
        self.buffered[key] = self.buffered.get(key, 0) + 1

    def _on_dpr_rebuffered(self, ev: ProtocolEvent) -> None:
        self._check_block_justified(ev)

    def _check_block_justified(self, ev: ProtocolEvent) -> None:
        """A DPR means the pull condition failed: for the SSP family the
        requester must actually be at or over the staleness threshold."""
        if self.pull_kind == "custom":
            return  # user predicate: may block under rules s doesn't describe
        s = ev.farg("s")
        if s is None:  # unbounded (ASP) or unknown threshold: nothing to check
            return
        worker, progress = ev.iarg("worker"), ev.iarg("progress")
        v = ev.iarg("v_train")
        if v is None:
            v = self.v_train
        if progress < v + s:
            self._flag(
                "S010",
                f"spurious block: worker {worker} buffered at progress "
                f"{progress} although progress < V_train({v}) + s({s})",
                ev,
            )

    def _on_pssp_pass(self, ev: ProtocolEvent) -> None:
        key = (ev.iarg("worker"), ev.iarg("progress"))
        self.pssp_passes[key] = self.pssp_passes.get(key, 0) + 1

    def _on_pull_answer(self, ev: ProtocolEvent) -> None:
        worker, progress = ev.iarg("worker"), ev.iarg("progress")
        key = (worker, progress)
        if ev.arg("coin"):
            # Coin accounting: an answer claiming the PSSP exemption must
            # pair with an actual over-threshold coin pass — otherwise the
            # exemption would hide arbitrary staleness-bound violations.
            if self.pssp_passes.get(key, 0) <= 0:
                self._flag(
                    "S015",
                    f"unaccounted coin answer: worker {worker} progress "
                    f"{progress} answered with coin=True but no pssp_pass "
                    "event preceded it",
                    ev,
                )
            else:
                self.pssp_passes[key] -= 1
                if self.pssp_passes[key] == 0:
                    del self.pssp_passes[key]
        if self.outstanding.get(key, 0) <= 0:
            self._flag(
                "S007",
                f"unmatched answer: worker {worker} progress {progress} "
                "answered without an outstanding request (double answer?)",
                ev,
            )
        else:
            self.outstanding[key] -= 1
            if self.outstanding[key] == 0:
                del self.outstanding[key]
        if self.buffered.get(key, 0) > 0:
            self.buffered[key] -= 1
            if self.buffered[key] == 0:
                del self.buffered[key]
        if progress > self.push_clock.get(worker):
            self._flag(
                "S006",
                f"answer before push: worker {worker} received parameters for "
                f"progress {progress} but has only pushed through "
                f"{self.push_clock.get(worker)}",
                ev,
            )
        if progress < self.pull_clock.get(worker):
            self._flag(
                "S014",
                f"pull regression: worker {worker} answered at progress "
                f"{progress} after progress {self.pull_clock.get(worker)}",
                ev,
            )
        self.pull_clock.set(worker, max(self.pull_clock.get(worker), progress))

        v_reported = ev.iarg("v_train")
        if v_reported is not None and v_reported != self.v_train:
            self._flag(
                "S008",
                f"state mismatch: answer reports V_train={v_reported} but the "
                f"replayed frontier is {self.v_train} (reordered events?)",
                ev,
            )
        missing = ev.iarg("missing")
        expected_missing = max(0, progress + 1 - self.v_train)
        if missing is not None and v_reported == self.v_train and missing != expected_missing:
            self._flag(
                "S009",
                f"missing mismatch: answer reports missing={missing}, replay "
                f"computes {expected_missing}",
                ev,
            )
        self._check_staleness_bound(ev, missing)
        self._check_snapshot_sharing(ev)

    def _check_snapshot_sharing(self, ev: ProtocolEvent) -> None:
        """S016: COW snapshot discipline.

        ``snap`` tags the parameter copy a reply carries (absent/None for
        servers with ``snapshot_params=False`` or param-less shards —
        nothing to check).  Same ``version`` must mean same copy (the whole
        point of COW: 128 same-version pulls share 1 copy), and the same
        copy must never span versions (a post-push answer reusing a stale
        snapshot would hand workers pre-push parameters labelled with the
        new version).
        """
        snap, version = ev.iarg("snap"), ev.iarg("version")
        if snap is None or version is None:
            return
        prior_snap = self.snap_by_version.get(version)
        if prior_snap is not None and prior_snap != snap:
            self._flag(
                "S016",
                f"snapshot not shared: version {version} answered from copy "
                f"{snap} after copy {prior_snap} (same-version replies must "
                "share storage)",
                ev,
            )
        else:
            self.snap_by_version[version] = snap
        prior_version = self.version_by_snap.get(snap)
        if prior_version is not None and prior_version != version:
            self._flag(
                "S016",
                f"stale snapshot reuse: copy {snap} served version "
                f"{prior_version} and then version {version} (pushes must "
                "invalidate the cached copy)",
                ev,
            )
        else:
            self.version_by_snap[snap] = version

    def _check_staleness_bound(self, ev: ProtocolEvent, missing: Optional[int]) -> None:
        if missing is None:
            return
        kind = ev.arg("kind")
        if kind == "custom":
            return  # user-defined condition: no mechanical bound
        if ev.arg("coin"):
            return  # PSSP over-threshold coin pass: exempt by design
        s = ev.farg("s")
        released = bool(ev.arg("released"))
        # The pull condition progress < V_train + s is equivalent to
        # missing < s + 1 (missing = progress + 1 - V_train, clamped at 0).
        if s is not None and missing >= s + 1:
            self._flag(
                "S004",
                f"staleness bound violated: answered pull misses {missing} "
                f"iterations, bound is s={s} "
                f"({'released DPR' if released else 'immediate answer'})",
                ev,
            )
        if released and self.execution == "lazy" and missing != 0:
            self._flag(
                "S005",
                f"lazy pull broke the 0-missing guarantee: released DPR "
                f"returned parameters missing {missing} iterations (Fig 3b)",
                ev,
            )

    def _on_server_restore(self, ev: ProtocolEvent) -> None:
        if self.outstanding:
            self._flag(
                "S013",
                f"restore while {sum(self.outstanding.values())} pulls are "
                "outstanding (restore requires quiescence)",
                ev,
            )
        self.v_train = ev.iarg("v_train") or 0
        self.count = {
            int(k): int(v) for k, v in dict(ev.arg("count") or {}).items()
        }
        self.push_clock = VectorClock()
        for w, p in enumerate(ev.arg("worker_progress") or []):
            self.push_clock.set(w, int(p))
        self.pull_clock = VectorClock()
        self.outstanding.clear()
        self.buffered.clear()
        # A restore may reinstate an already-seen version number backed by
        # a fresh copy — the bijection starts over (matching the server's
        # cache invalidation on restore).
        self.snap_by_version.clear()
        self.version_by_snap.clear()

    # -- end of stream ----------------------------------------------------

    def finish(self, ev: Optional[ProtocolEvent] = None) -> None:
        """Liveness checks — only valid once the run completed."""
        for (worker, progress), n in sorted(self.outstanding.items()):
            if self.buffered.get((worker, progress), 0) > 0:
                self._flag(
                    "S011",
                    f"starved DPR: worker {worker} progress {progress} was "
                    f"buffered and never answered ({n} outstanding)",
                    ev,
                )
            else:
                self._flag(
                    "S012",
                    f"lost wakeup: pull request worker {worker} progress "
                    f"{progress} never answered ({n} outstanding)",
                    ev,
                )


@dataclass
class SanitizerReport:
    """Outcome of sanitizing one or more event streams."""

    violations: List[Violation] = field(default_factory=list)
    n_events: int = 0
    n_shards: int = 0
    n_streams: int = 1

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violations(self) -> None:
        if self.violations:
            raise ProtocolViolation(self.violations)

    def merge(self, other: "SanitizerReport") -> "SanitizerReport":
        self.violations.extend(other.violations)
        self.n_events += other.n_events
        self.n_shards += other.n_shards
        self.n_streams += other.n_streams
        return self

    def describe(self) -> str:
        head = (
            f"sanitizer: {self.n_events} events, {self.n_shards} shard "
            f"stream(s): "
        )
        if self.ok:
            return head + "clean"
        return head + f"{len(self.violations)} violation(s)\n" + "\n".join(
            "  " + v.describe() for v in self.violations
        )


class ProtocolSanitizer:
    """Feeds a normalized event stream through per-shard checkers."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.checkers: Dict[int, ShardChecker] = {}
        self.violations: List[Violation] = []
        self._window: Deque[ProtocolEvent] = deque(maxlen=window)
        self._n_events = 0

    def flag(
        self,
        code: str,
        message: str,
        ev: Optional[ProtocolEvent],
        uid: Optional[int] = None,
    ) -> None:
        self.violations.append(
            Violation(
                code=code,
                message=message,
                event=ev,
                window=tuple(self._window),
                uid=uid,
            )
        )

    def feed(self, ev: ProtocolEvent) -> None:
        self._window.append(ev)
        self._n_events += 1
        uid = ev.uid
        if uid is None:
            return  # run_config and other stream-level events
        checker = self.checkers.get(uid)
        if checker is None:
            checker = self.checkers[uid] = ShardChecker(uid, self)
        checker.feed(ev)

    def finish(self) -> None:
        last = self._window[-1] if self._window else None
        for checker in self.checkers.values():
            checker.finish(last)

    def report(self) -> SanitizerReport:
        return SanitizerReport(
            violations=list(self.violations),
            n_events=self._n_events,
            n_shards=len(self.checkers),
        )


def sanitize_events(
    events: Iterable[ProtocolEvent],
    complete: bool = True,
    raise_on_violation: bool = False,
) -> SanitizerReport:
    """Replay ``events`` through the checker.

    ``complete=False`` skips the end-of-stream liveness checks (starved
    DPRs, lost wakeups) — use it for streams captured mid-run or from
    direct server unit-test drive, where unanswered pulls are legitimate.
    """
    san = ProtocolSanitizer()
    for ev in events:
        san.feed(ev)
    if complete:
        san.finish()
    report = san.report()
    if raise_on_violation:
        report.raise_if_violations()
    return report


def sanitize_run(capture, raise_on_violation: bool = False) -> SanitizerReport:
    """Sanitize one :class:`~repro.obs.RunCapture` (protocol events plus
    the run's trace spans and causal DAG, when captured).

    The instant stream is replayed lazily, so a disk-spilled instant log
    from a 100k-scale run is checked in chunks at O(spill-cap) memory."""
    report = sanitize_events(
        iter_events_from_instants(capture.instants),
        complete=getattr(capture, "complete", False),
    )
    if getattr(capture, "trace", None) is not None:
        from repro.analysis.spans import check_trace_spans

        report.violations.extend(check_trace_spans(capture.trace))
    causal = getattr(capture, "causal", None)
    if causal is not None and getattr(causal, "spans", None):
        from repro.analysis.spans import check_causal_spans

        report.violations.extend(check_causal_spans(causal))
    if raise_on_violation:
        report.raise_if_violations()
    return report


def sanitize_observability(obs, raise_on_violation: bool = False) -> SanitizerReport:
    """Sanitize everything an :class:`~repro.obs.Observability` captured:
    each run capture (with liveness checks when the run completed) plus
    the ambient instants recorded outside any run (safety checks only)."""
    report = SanitizerReport(n_streams=0)
    for cap in obs.runs:
        report.merge(sanitize_run(cap))
    default_log = getattr(obs, "default_instants", None)
    if default_log is not None and len(default_log):
        report.merge(
            sanitize_events(iter_events_from_instants(default_log), complete=False)
        )
    if raise_on_violation:
        report.raise_if_violations()
    return report
