"""Static + dynamic analysis: protocol sanitizer and custom lint.

Two mechanically-checkable layers over the paper's correctness claims:

- the **protocol sanitizer** (:mod:`repro.analysis.sanitizer`) replays
  recorded event streams — live :class:`~repro.obs.RunCapture` instants
  or dumped Perfetto traces — through a vector-clock/happens-before
  checker asserting ``V_train`` monotonicity, per-worker push ordering,
  every sync model's staleness bound, lazy execution's 0-missing
  guarantee, DPR liveness and lost-wakeup freedom;
- the **custom lint pass** (:mod:`repro.analysis.lint`) walks the source
  AST for repo-specific invariants: no wall clock or global RNG in
  sim/core, single-writer discipline on ``ShardServer`` state, no float
  equality on sim timestamps, public API docstrings, no set-ordered
  scheduling/serialization, no OS clock/thread calls in engine
  coroutines;
- the **schedule explorer** (:mod:`repro.analysis.explore`) does bounded
  DPOR-style stateless model checking over the engine's same-timestamp
  tie groups, sanitizing every inequivalent schedule and serializing
  failures as replayable choice traces;
- the **race detector** (:mod:`repro.analysis.races`) checks a live
  threaded run's shared-parameter accesses for happens-before ordering.

Run them with ``python -m repro.analysis``; the pytest plugin
(:mod:`repro.analysis.pytest_plugin`) sanitizes every test run.
"""

from repro.analysis.events import (
    PROTOCOL_EVENT_NAMES,
    ProtocolEvent,
    events_from_instants,
    events_from_run,
    events_from_trace_doc,
    events_from_trace_file,
    iter_events_from_instants,
)
from repro.analysis.explore import (
    MUTATIONS,
    PRESETS,
    ChoiceTrace,
    ExploreConfig,
    ExploreReport,
    ReplayResult,
    explore,
    replay_trace,
)
from repro.analysis.lint import LintIssue, lint_file, lint_paths
from repro.analysis.races import RaceTracker
from repro.analysis.sanitizer import (
    ProtocolSanitizer,
    ProtocolViolation,
    SanitizerReport,
    Violation,
    sanitize_events,
    sanitize_observability,
    sanitize_run,
)
from repro.analysis.spans import check_causal_spans, check_trace_spans

__all__ = [
    "MUTATIONS",
    "PRESETS",
    "PROTOCOL_EVENT_NAMES",
    "ChoiceTrace",
    "ExploreConfig",
    "ExploreReport",
    "LintIssue",
    "ProtocolEvent",
    "ProtocolSanitizer",
    "ProtocolViolation",
    "RaceTracker",
    "ReplayResult",
    "SanitizerReport",
    "Violation",
    "check_causal_spans",
    "check_trace_spans",
    "events_from_instants",
    "events_from_run",
    "events_from_trace_doc",
    "events_from_trace_file",
    "explore",
    "iter_events_from_instants",
    "lint_file",
    "lint_paths",
    "replay_trace",
    "sanitize_events",
    "sanitize_observability",
    "sanitize_run",
]
