"""Static + dynamic analysis: protocol sanitizer and custom lint.

Two mechanically-checkable layers over the paper's correctness claims:

- the **protocol sanitizer** (:mod:`repro.analysis.sanitizer`) replays
  recorded event streams — live :class:`~repro.obs.RunCapture` instants
  or dumped Perfetto traces — through a vector-clock/happens-before
  checker asserting ``V_train`` monotonicity, per-worker push ordering,
  every sync model's staleness bound, lazy execution's 0-missing
  guarantee, DPR liveness and lost-wakeup freedom;
- the **custom lint pass** (:mod:`repro.analysis.lint`) walks the source
  AST for repo-specific invariants: no wall clock or global RNG in
  sim/core, single-writer discipline on ``ShardServer`` state, no float
  equality on sim timestamps, public API docstrings.

Run both with ``python -m repro.analysis``; the pytest plugin
(:mod:`repro.analysis.pytest_plugin`) sanitizes every test run.
"""

from repro.analysis.events import (
    PROTOCOL_EVENT_NAMES,
    ProtocolEvent,
    events_from_instants,
    events_from_run,
    events_from_trace_doc,
    events_from_trace_file,
)
from repro.analysis.lint import LintIssue, lint_file, lint_paths
from repro.analysis.sanitizer import (
    ProtocolSanitizer,
    ProtocolViolation,
    SanitizerReport,
    Violation,
    sanitize_events,
    sanitize_observability,
    sanitize_run,
)
from repro.analysis.spans import check_causal_spans, check_trace_spans

__all__ = [
    "PROTOCOL_EVENT_NAMES",
    "LintIssue",
    "ProtocolEvent",
    "ProtocolSanitizer",
    "ProtocolViolation",
    "SanitizerReport",
    "Violation",
    "check_causal_spans",
    "check_trace_spans",
    "events_from_instants",
    "events_from_run",
    "events_from_trace_doc",
    "events_from_trace_file",
    "lint_file",
    "lint_paths",
    "sanitize_events",
    "sanitize_observability",
    "sanitize_run",
]
