"""Span-stream checks for simulated traces.

Complements the protocol replay with timeline-level invariants on the
:class:`~repro.sim.trace.TraceRecorder` span list:

- SP01: no negative-duration span (the recorder clips float jitter and
  rejects real inversions at record time; this re-checks stored data,
  catching streams built by hand or loaded from files);
- SP02: one actor never runs two COMPUTE spans concurrently — a worker
  computes one iteration at a time (Algorithm 1's loop is sequential);
- SP03: per actor, COMPUTE span iteration numbers never regress.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.sanitizer import Violation
from repro.sim.trace import SpanKind, TraceRecorder

#: Tolerance for SP02 overlap: spans may share an endpoint exactly.
_OVERLAP_EPS = 1e-12


def check_trace_spans(trace: TraceRecorder) -> List[Violation]:
    """Run the SP-series checks over one recorded trace."""
    violations: List[Violation] = []
    if not trace.keep_spans:
        return violations
    last_compute_end: Dict[str, float] = {}
    last_iteration: Dict[str, int] = {}
    # Stable sort: simultaneous spans keep recording order.
    for span in sorted(trace.spans, key=lambda s: s.t0):
        if span.t1 < span.t0:
            violations.append(
                Violation(
                    code="SP01",
                    message=(
                        f"negative-duration span: {span.actor} {span.kind.value} "
                        f"[{span.t0}, {span.t1}]"
                    ),
                )
            )
        if span.kind is not SpanKind.COMPUTE:
            continue
        prev_end = last_compute_end.get(span.actor)
        if prev_end is not None and span.t0 < prev_end - _OVERLAP_EPS:
            violations.append(
                Violation(
                    code="SP02",
                    message=(
                        f"overlapping COMPUTE spans for {span.actor}: span "
                        f"starting at {span.t0} overlaps one ending at {prev_end}"
                    ),
                )
            )
        last_compute_end[span.actor] = max(prev_end or span.t1, span.t1)
        if span.iteration >= 0:
            prev_iter = last_iteration.get(span.actor, -1)
            if span.iteration < prev_iter:
                violations.append(
                    Violation(
                        code="SP03",
                        message=(
                            f"iteration regression for {span.actor}: COMPUTE "
                            f"iteration {span.iteration} after {prev_iter}"
                        ),
                    )
                )
            last_iteration[span.actor] = max(prev_iter, span.iteration)
    return violations
