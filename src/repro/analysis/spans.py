"""Span-stream checks for simulated traces.

Complements the protocol replay with timeline-level invariants on the
:class:`~repro.sim.trace.TraceRecorder` span list:

- SP01: no negative-duration span (the recorder clips float jitter and
  rejects real inversions at record time; this re-checks stored data,
  catching streams built by hand or loaded from files);
- SP02: one actor never runs two COMPUTE spans concurrently — a worker
  computes one iteration at a time (Algorithm 1's loop is sequential);
- SP03: per actor, COMPUTE span iteration numbers never regress.

It also validates the causal DAG recorded alongside the timeline (see
:mod:`repro.obs.causal`):

- CS01: every parent reference points at an earlier, existing span
  (the trace is append-only, so causes always have smaller ids);
- CS02: no span ends before it starts;
- CS03: a span never *ends* before its cause completed — effects may
  begin while the cause is in flight (a sync wait starts at the pull
  request, long before the gating reply lands) but cannot finish first;
- CS04: every span uses a known category (the blame attributor maps
  categories to blame groups by name).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.sanitizer import Violation
from repro.obs.causal import CATEGORIES
from repro.sim.trace import SpanKind, TraceRecorder

#: Tolerance for SP02 overlap: spans may share an endpoint exactly.
_OVERLAP_EPS = 1e-12

#: Tolerance for CS03 cause-completion ordering.
CAUSAL_EPS = 1e-9


def check_trace_spans(trace: TraceRecorder) -> List[Violation]:
    """Run the SP-series checks over one recorded trace."""
    violations: List[Violation] = []
    if not trace.keep_spans:
        return violations
    last_compute_end: Dict[str, float] = {}
    last_iteration: Dict[str, int] = {}
    # Stable sort: simultaneous spans keep recording order.
    for span in sorted(trace.spans, key=lambda s: s.t0):
        if span.t1 < span.t0:
            violations.append(
                Violation(
                    code="SP01",
                    message=(
                        f"negative-duration span: {span.actor} {span.kind.value} "
                        f"[{span.t0}, {span.t1}]"
                    ),
                )
            )
        if span.kind is not SpanKind.COMPUTE:
            continue
        prev_end = last_compute_end.get(span.actor)
        if prev_end is not None and span.t0 < prev_end - _OVERLAP_EPS:
            violations.append(
                Violation(
                    code="SP02",
                    message=(
                        f"overlapping COMPUTE spans for {span.actor}: span "
                        f"starting at {span.t0} overlaps one ending at {prev_end}"
                    ),
                )
            )
        last_compute_end[span.actor] = max(prev_end or span.t1, span.t1)
        if span.iteration >= 0:
            prev_iter = last_iteration.get(span.actor, -1)
            if span.iteration < prev_iter:
                violations.append(
                    Violation(
                        code="SP03",
                        message=(
                            f"iteration regression for {span.actor}: COMPUTE "
                            f"iteration {span.iteration} after {prev_iter}"
                        ),
                    )
                )
            last_iteration[span.actor] = max(prev_iter, span.iteration)
    return violations


def check_causal_spans(causal) -> List[Violation]:
    """Run the CS-series checks over one causal trace (or span list)."""
    spans = getattr(causal, "spans", causal)
    violations: List[Violation] = []
    by_id = {s.id: s for s in spans}
    known = set(CATEGORIES)
    for span in spans:
        if span.parent >= 0:
            parent = by_id.get(span.parent)
            if parent is None or span.parent >= span.id:
                violations.append(
                    Violation(
                        code="CS01",
                        message=(
                            f"span {span.id} ({span.actor} {span.category}) "
                            f"references parent {span.parent}, which is "
                            + ("not earlier" if span.parent >= span.id else "missing")
                        ),
                    )
                )
                parent = None
            if parent is not None and span.t1 < parent.t1 - CAUSAL_EPS:
                violations.append(
                    Violation(
                        code="CS03",
                        message=(
                            f"span {span.id} ({span.actor} {span.category}) ends "
                            f"at {span.t1} before its cause {parent.id} "
                            f"({parent.actor} {parent.category}) completed at "
                            f"{parent.t1}"
                        ),
                    )
                )
        if span.t1 < span.t0:
            violations.append(
                Violation(
                    code="CS02",
                    message=(
                        f"causal span {span.id} ({span.actor} {span.category}) "
                        f"has negative duration [{span.t0}, {span.t1}]"
                    ),
                )
            )
        if span.category not in known:
            violations.append(
                Violation(
                    code="CS04",
                    message=(
                        f"causal span {span.id} ({span.actor}) has unknown "
                        f"category {span.category!r}; expected one of "
                        f"{sorted(known)}"
                    ),
                )
            )
    return violations
