"""Custom AST lint: repo-specific invariants no generic linter checks.

Rules
-----
- **ANA001** — no wall-clock reads (``time.time``/``monotonic``/
  ``perf_counter`` and ``_ns`` variants, ``datetime.now`` family) inside
  ``repro.sim`` or ``repro.core``: the simulation must be driven by
  virtual time only, and core server logic must take its clock through
  ``set_clock`` so both runners can inject theirs.
- **ANA002** — no global RNG in ``repro.sim``/``repro.core``: no
  ``random`` module, no ``numpy.random.<fn>`` module-level generators
  (``default_rng``/``Generator``/``SeedSequence`` are fine).  All
  stochastic behaviour must flow from seeded per-stream generators or
  reproducibility is gone.
- **ANA003** — ``ShardServer`` protocol state (``v_train``, ``count``,
  ``worker_progress``, …) is mutated only inside its ``handle_*``
  entry points (or helpers those transitively call), and never written
  from outside the class.  This is the single-writer discipline the
  sanitizer's replay relies on.
- **ANA004** — no float ``==``/``!=`` against sim timestamps (names
  like ``t0``/``now``/``*_time``): virtual-time comparisons must be
  ordering-based or epsilon-tolerant.
- **ANA005** — every public module and public class under the linted
  tree carries a docstring.
- **ANA006** — no iteration over a *set* feeding a scheduling or
  serialization sink in ``repro.sim``/``repro.core``: set order is
  hash-randomized across processes, so a ``for x in {…}: engine.schedule(…)``
  (or a set-driven comprehension passed to ``json.dumps``/``heappush``/…)
  makes event order irreproducible.  Wrap the set in ``sorted(...)``.
- **ANA007** — no direct ``time.*``/``threading.*`` calls inside
  engine-scheduled coroutines (generator functions) in sim/core: a
  coroutine that sleeps or synchronizes on the OS instead of yielding
  virtual-time holds stalls the single-threaded engine and desyncs the
  two runners.

Run via ``python -m repro.analysis --lint src``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

#: Wall-clock call targets banned in sim/core (dotted-name form).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random members that are seeded-generator constructors (allowed).
NUMPY_RANDOM_ALLOWED = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})

#: ShardServer attributes forming the replicated protocol state.
SERVER_PROTECTED_STATE = frozenset(
    {
        "v_train",
        "version",
        "count",
        "worker_progress",
        "last_pull_progress",
        "last_significance",
        "callbacks",
    }
)

#: Server methods that are legitimate protocol-state entry points.
SERVER_ENTRY_POINTS = frozenset({"__init__"})

#: Subset of the protected names unique enough to flag in *other*
#: modules (``count``/``version``/``callbacks`` are too generic for a
#: name-based cross-module check and would false-positive on unrelated
#: classes; inside ShardServer itself the full set applies).
SERVER_UNIQUE_STATE = frozenset(
    {"v_train", "worker_progress", "last_pull_progress", "last_significance"}
)

#: Mutating container methods (list/dict) for the ANA003 check.
MUTATOR_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "update",
     "setdefault", "popitem", "sort", "reverse"}
)

#: Variable names treated as sim timestamps for ANA004.
TIMESTAMP_NAMES = frozenset(
    {"t", "t0", "t1", "now", "deadline", "clock", "waited"}
)
TIMESTAMP_SUFFIX = "_time"

#: Call names whose argument/loop-body order is observable — scheduling
#: an event, emitting a message, or serializing state (ANA006).
ORDER_SINKS = frozenset(
    {
        "schedule", "call_in", "call_at", "call_every", "post", "spawn",
        "send", "fire", "put", "heappush", "dump", "dumps",
    }
)

#: Module prefixes banned inside engine coroutines (ANA007).
COROUTINE_BANNED_PREFIXES = ("time.", "threading.")


@dataclass(frozen=True)
class LintIssue:
    """One lint finding."""

    code: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """Reconstruct ``a.b.c`` from an Attribute/Name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/object they were imported as."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _resolve(dotted: str, aliases: Dict[str, str]) -> str:
    """Expand a dotted name's head through the module's import aliases."""
    head, _, rest = dotted.partition(".")
    base = aliases.get(head, head)
    return f"{base}.{rest}" if rest else base


def _is_timestamp_name(node: ast.AST) -> bool:
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return False
    return name in TIMESTAMP_NAMES or name.endswith(TIMESTAMP_SUFFIX)


def _is_sim_or_core(rel: Path) -> bool:
    parts = rel.parts
    return "sim" in parts or "core" in parts


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that evaluate to a set/frozenset (unordered)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    """Last segment of a call target (``engine.schedule`` -> ``schedule``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _comprehension_over_set(node: ast.AST) -> bool:
    if _is_set_expr(node):
        return True
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        return any(_is_set_expr(gen.iter) for gen in node.generators)
    return False


def _contains_yield(fn: ast.AST) -> bool:
    """True when ``fn``'s own body yields (nested defs don't count)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


class _FileLinter(ast.NodeVisitor):
    """Runs the per-file rules (ANA001/2/4/5) over one parsed module."""

    def __init__(self, rel: Path, tree: ast.Module, issues: List[LintIssue]):
        self.rel = rel
        self.issues = issues
        self.aliases = _import_aliases(tree)
        self.in_sim_or_core = _is_sim_or_core(rel)
        self._tree = tree
        #: One bool per enclosing def: is it a generator (engine coroutine)?
        self._gen_stack: List[bool] = []

    def flag(self, code: str, node: ast.AST, message: str) -> None:
        self.issues.append(
            LintIssue(code, str(self.rel), getattr(node, "lineno", 0), message)
        )

    def run(self) -> None:
        self._check_docstrings(self._tree)
        self.visit(self._tree)

    # -- ANA005 -----------------------------------------------------------

    def _check_docstrings(self, tree: ast.Module) -> None:
        if not self.rel.name.startswith("_") and ast.get_docstring(tree) is None:
            self.flag("ANA005", tree, f"public module {self.rel} lacks a docstring")
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                if ast.get_docstring(node) is None:
                    self.flag(
                        "ANA005", node, f"public class {node.name} lacks a docstring"
                    )

    # -- ANA001 + ANA002 (call sites) ------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None and self.in_sim_or_core:
            resolved = _resolve(dotted, self.aliases)
            if resolved in WALL_CLOCK_CALLS:
                self.flag(
                    "ANA001",
                    node,
                    f"wall-clock call {resolved}() in sim/core — use the "
                    "injected virtual clock",
                )
            self._check_global_rng(node, resolved)
            if self._gen_stack and self._gen_stack[-1] and resolved.startswith(
                COROUTINE_BANNED_PREFIXES
            ):
                self.flag(
                    "ANA007",
                    node,
                    f"{resolved}() inside an engine coroutine — yield a "
                    "virtual-time hold instead of touching the OS clock or "
                    "threads",
                )
        if self.in_sim_or_core and _call_name(node) in ORDER_SINKS:
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if _comprehension_over_set(arg):
                    self.flag(
                        "ANA006",
                        node,
                        f"set-ordered argument feeds {_call_name(node)}() — "
                        "set iteration order is not reproducible; wrap in "
                        "sorted(...)",
                    )
                    break
        self.generic_visit(node)

    # -- ANA006 (set-driven scheduling loops) + ANA007 (coroutine scope) --

    def visit_For(self, node: ast.For) -> None:
        if self.in_sim_or_core and _is_set_expr(node.iter):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call) and _call_name(sub) in ORDER_SINKS:
                    self.flag(
                        "ANA006",
                        node,
                        f"loop over a set reaches {_call_name(sub)}() — set "
                        "iteration order is not reproducible; wrap in "
                        "sorted(...)",
                    )
                    break
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._gen_stack.append(_contains_yield(node))
        self.generic_visit(node)
        self._gen_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._gen_stack.append(_contains_yield(node))
        self.generic_visit(node)
        self._gen_stack.pop()

    def _check_global_rng(self, node: ast.Call, resolved: str) -> None:
        if resolved.startswith("random."):
            self.flag(
                "ANA002",
                node,
                f"global RNG call {resolved}() in sim/core — use a seeded "
                "numpy Generator",
            )
        elif resolved.startswith(("numpy.random.", "np.random.")):
            member = resolved.rsplit(".", 1)[-1]
            if member not in NUMPY_RANDOM_ALLOWED:
                self.flag(
                    "ANA002",
                    node,
                    f"global numpy RNG {resolved}() in sim/core — only the "
                    "seeded Generator API is allowed",
                )

    def visit_Import(self, node: ast.Import) -> None:
        if self.in_sim_or_core:
            for a in node.names:
                if a.name == "random" or a.name.startswith("random."):
                    self.flag(
                        "ANA002",
                        node,
                        "stdlib `random` imported in sim/core — use a seeded "
                        "numpy Generator",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.in_sim_or_core and node.module == "random" and node.level == 0:
            self.flag(
                "ANA002",
                node,
                "stdlib `random` imported in sim/core — use a seeded numpy "
                "Generator",
            )
        self.generic_visit(node)

    # -- ANA004 -----------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.in_sim_or_core:
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_timestamp_name(left) or _is_timestamp_name(right)
                ):
                    # `x == None`-style identity checks are fine.
                    if any(
                        isinstance(side, ast.Constant) and side.value is None
                        for side in (left, right)
                    ):
                        continue
                    self.flag(
                        "ANA004",
                        node,
                        "float ==/!= on a sim timestamp — compare with an "
                        "ordering or an epsilon",
                    )
        self.generic_visit(node)


# -- ANA003: single-writer discipline for ShardServer state ---------------


def _self_call_targets(fn: ast.AST) -> Set[str]:
    """Names of ``self.<m>()`` methods called anywhere inside ``fn``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            out.add(node.func.attr)
    return out


def _protected_attr(node: ast.AST) -> Optional[ast.Attribute]:
    """The ``<base>.<protected>`` Attribute at the root of a write target."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in SERVER_PROTECTED_STATE:
        return node
    return None


def _writes_protected(fn: ast.AST) -> List[ast.AST]:
    """Statements inside ``fn`` that mutate ``self.<protected>`` state."""
    hits: List[ast.AST] = []
    for node in ast.walk(fn):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                targets = [node.func.value]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for t in targets:
            attr = _protected_attr(t)
            if (
                attr is not None
                and isinstance(attr.value, ast.Name)
                and attr.value.id == "self"
            ):
                hits.append(node)
                break
    return hits


def _lint_server_class(rel: Path, cls: ast.ClassDef, issues: List[LintIssue]) -> None:
    methods = {
        n.name: n
        for n in cls.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    # Transitive closure of self-calls from the entry points.
    allowed: Set[str] = set()
    frontier = [
        m for m in methods if m in SERVER_ENTRY_POINTS or m.startswith("handle_")
    ]
    while frontier:
        name = frontier.pop()
        if name in allowed:
            continue
        allowed.add(name)
        fn = methods.get(name)
        if fn is not None:
            frontier.extend(t for t in _self_call_targets(fn) if t in methods)
    for name, fn in methods.items():
        if name in allowed:
            continue
        for hit in _writes_protected(fn):
            issues.append(
                LintIssue(
                    "ANA003",
                    str(rel),
                    getattr(hit, "lineno", fn.lineno),
                    f"ShardServer.{name} mutates protocol state but is not "
                    "reachable from a handle_* entry point",
                )
            )


def _lint_external_server_writes(
    rel: Path, tree: ast.Module, issues: List[LintIssue]
) -> None:
    """Flag ``<obj>.<protected> = ...`` writes outside the server module."""
    for node in ast.walk(tree):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for t in targets:
            attr = _protected_attr(t)
            if (
                attr is None
                or attr.attr not in SERVER_UNIQUE_STATE
                or not isinstance(attr.value, (ast.Name, ast.Attribute))
            ):
                continue
            base = _dotted(attr.value)
            if base is None or base == "self" or base.startswith("self."):
                continue
            issues.append(
                LintIssue(
                    "ANA003",
                    str(rel),
                    getattr(node, "lineno", 0),
                    f"external write to server protocol state `{base}.{attr.attr}` "
                    "— go through a handle_* method",
                )
            )


# -- driver ---------------------------------------------------------------


def lint_file(path: Path, root: Path) -> List[LintIssue]:
    """Lint one python file; ``root`` anchors the reported relative path."""
    try:
        rel = path.relative_to(root)
    except ValueError:
        rel = path
    issues: List[LintIssue] = []
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        issues.append(LintIssue("ANA000", str(rel), exc.lineno or 0, f"syntax error: {exc.msg}"))
        return issues
    _FileLinter(rel, tree, issues).run()
    if path.name == "server.py" and "core" in rel.parts:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "ShardServer":
                _lint_server_class(rel, node, issues)
    else:
        _lint_external_server_writes(rel, tree, issues)
    return issues


def lint_paths(paths: Sequence[Union[str, Path]]) -> List[LintIssue]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    issues: List[LintIssue] = []
    for p in paths:
        p = Path(p)
        root = p if p.is_dir() else p.parent
        files: Iterable[Path] = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            issues.extend(lint_file(f, root))
    return issues
