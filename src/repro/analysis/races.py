"""Dynamic happens-before race detection for the threaded runner.

The real-thread analogue of the schedule explorer: where
:mod:`repro.analysis.explore` enumerates simulated interleavings, this
module checks the one interleaving a live
:class:`~repro.parallel.threaded.ThreadedRunner` run actually took for
unordered conflicting accesses to shared parameter state.

One :class:`RaceTracker` keeps a vector clock per participating thread
and derives happens-before edges from the synchronization operations the
runner reports:

- lock release -> subsequent acquire of the same lock;
- ``threading.Event.set`` -> a wait that observed it;
- thread fork -> child start, and child exit -> join.

Every ``access(location, write=...)`` is checked against the last read
and write of that location by each other thread (a FastTrack-style
epoch per ``(location, thread)`` pair).  Two accesses to the same
location, at least one a write, with neither ordered before the other,
are reported as:

- **R001** — write/write race;
- **R002** — read/write race;

in the same :class:`~repro.analysis.sanitizer.SanitizerReport` format as
the protocol sanitizer, so CLI and CI handling is shared.

The tracker is deliberately runner-agnostic: it only sees the token
stream of sync operations and accesses, so tests can drive it directly
with plain ``threading`` primitives.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.sanitizer import SanitizerReport, Violation

VectorClockMap = Dict[int, int]


def _join_into(target: VectorClockMap, other: VectorClockMap) -> None:
    for tid, clock in other.items():
        if clock > target.get(tid, 0):
            target[tid] = clock


class RaceTracker:
    """Vector-clock happens-before checker fed by instrumentation calls.

    Thread identity is implicit: every call is attributed to the calling
    thread (registered on first sight).  All methods are thread-safe; the
    tracker's own lock also makes the reported race set deterministic for
    a given interleaving of calls.
    """

    def __init__(self, max_reports: int = 64):
        self._mu = threading.Lock()
        self._tids: Dict[int, int] = {}  # threading ident -> logical tid
        self._names: List[str] = []
        self._clocks: List[VectorClockMap] = []
        self._lock_vc: Dict[int, VectorClockMap] = {}
        self._event_vc: Dict[int, VectorClockMap] = {}
        #: location -> {"r"|"w" -> {tid -> (epoch, where)}}
        self._last: Dict[str, Dict[str, Dict[int, Tuple[int, str]]]] = {}
        self._seen_pairs: Set[Tuple[str, str, int, int, str]] = set()
        self._max_reports = max_reports
        self.n_ops = 0
        self.races: List[Violation] = []

    # -- thread identity (caller must hold self._mu) ----------------------

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            tid = self._new_tid(ident)
        return tid

    def _new_tid(self, ident: int) -> int:
        tid = len(self._clocks)
        self._tids[ident] = tid
        self._names.append(threading.current_thread().name)
        self._clocks.append({tid: 1})
        return tid

    # -- sync edges -------------------------------------------------------

    def fork(self) -> VectorClockMap:
        """Parent-side thread creation: returns the token to hand to the
        child's :meth:`begin_thread` (establishes parent -> child order)."""
        with self._mu:
            tid = self._tid()
            vc = self._clocks[tid]
            snapshot = dict(vc)
            vc[tid] = vc.get(tid, 0) + 1
            self.n_ops += 1
            return snapshot

    def begin_thread(self, token: Optional[VectorClockMap], name: str = "") -> None:
        """Child-side thread start; ``token`` comes from :meth:`fork`.

        Always allocates a fresh logical tid: the OS recycles thread
        idents, so a later thread reusing a finished thread's ident must
        not inherit its clock (that would silently order their accesses).
        """
        with self._mu:
            tid = self._new_tid(threading.get_ident())
            if name:
                self._names[tid] = name
            if token:
                _join_into(self._clocks[tid], token)
            self.n_ops += 1

    def end_thread(self) -> VectorClockMap:
        """Child-side exit: returns the token the joiner passes to
        :meth:`join_thread` (establishes child -> joiner order).  Drops
        the ident mapping so a recycled OS ident starts fresh."""
        with self._mu:
            tid = self._tid()
            vc = self._clocks[tid]
            vc[tid] = vc.get(tid, 0) + 1
            self._tids.pop(threading.get_ident(), None)
            self.n_ops += 1
            return dict(vc)

    def join_thread(self, token: Optional[VectorClockMap]) -> None:
        """Joiner-side: absorb a finished thread's :meth:`end_thread` token."""
        with self._mu:
            tid = self._tid()
            if token:
                _join_into(self._clocks[tid], token)
            self.n_ops += 1

    def lock_acquired(self, lock_id: int) -> None:
        """After acquiring ``lock_id``: happens-after its last release."""
        with self._mu:
            tid = self._tid()
            held = self._lock_vc.get(lock_id)
            if held:
                _join_into(self._clocks[tid], held)
            self.n_ops += 1

    def lock_released(self, lock_id: int) -> None:
        """Before releasing ``lock_id``: publish this thread's clock."""
        with self._mu:
            tid = self._tid()
            vc = self._clocks[tid]
            vc[tid] = vc.get(tid, 0) + 1
            self._lock_vc[lock_id] = dict(vc)
            self.n_ops += 1

    def event_set(self, event_id: int) -> None:
        """Before ``Event.set``: publish into the event's clock (joined,
        so multiple setters all order before a later waiter)."""
        with self._mu:
            tid = self._tid()
            vc = self._clocks[tid]
            vc[tid] = vc.get(tid, 0) + 1
            _join_into(self._event_vc.setdefault(event_id, {}), vc)
            self.n_ops += 1

    def event_waited(self, event_id: int) -> None:
        """After a successful ``Event.wait``: happens-after every set."""
        with self._mu:
            tid = self._tid()
            published = self._event_vc.get(event_id)
            if published:
                _join_into(self._clocks[tid], published)
            self.n_ops += 1

    # -- accesses ---------------------------------------------------------

    def access(self, location: str, write: bool, where: str = "") -> None:
        """Record one read/write of ``location`` and flag races against
        every other thread's last unordered conflicting access."""
        with self._mu:
            tid = self._tid()
            vc = self._clocks[tid]
            slot = self._last.setdefault(location, {"r": {}, "w": {}})
            # A write races with prior reads and writes; a read only with
            # prior writes.
            against = ("w", "r") if write else ("w",)
            for kind in against:
                for other, (epoch, other_where) in slot[kind].items():
                    if other != tid and epoch > vc.get(other, 0):
                        self._flag(
                            location, write, tid, where, kind, other, other_where
                        )
            mine = slot["w" if write else "r"]
            mine[tid] = (vc.get(tid, 0), where)
            self.n_ops += 1

    def _flag(
        self,
        location: str,
        write: bool,
        tid: int,
        where: str,
        other_kind: str,
        other: int,
        other_where: str,
    ) -> None:
        code = "R001" if write and other_kind == "w" else "R002"
        pair = (code, location, min(tid, other), max(tid, other), other_kind)
        if pair in self._seen_pairs or len(self.races) >= self._max_reports:
            return
        self._seen_pairs.add(pair)
        kind = "write" if write else "read"
        prior = "write" if other_kind == "w" else "read"
        self.races.append(
            Violation(
                code=code,
                message=(
                    f"data race on {location}: {kind} by {self._names[tid]}"
                    f"{f' at {where}' if where else ''} is unordered with "
                    f"{prior} by {self._names[other]}"
                    f"{f' at {other_where}' if other_where else ''}"
                ),
            )
        )

    # -- reporting --------------------------------------------------------

    def report(self) -> SanitizerReport:
        """The detected races in the shared sanitizer report format."""
        with self._mu:
            return SanitizerReport(
                violations=list(self.races), n_events=self.n_ops, n_streams=1
            )
