"""Pytest plugin: sanitize the protocol events every test produces.

An autouse fixture installs a fresh ambient :class:`~repro.obs.Observability`
for each test, so every server touched through the default ambient path
emits protocol events; at teardown the sanitizer replays everything the
test captured and fails the test on any violation.  Liveness checks
(DPR starvation, lost wakeups) apply only to run captures a runner marked
``complete`` — direct server unit tests legitimately leave pulls buffered.

Opt a test out with ``@pytest.mark.no_sanitize`` (needed by tests that
assert the ambient-observability machinery itself, or that intentionally
drive servers into invalid states).
"""

from __future__ import annotations

import pytest

from repro.analysis.events import events_from_instants
from repro.analysis.sanitizer import SanitizerReport, sanitize_events, sanitize_run
from repro.obs import MetricsRegistry, Observability, set_current_observability


def pytest_configure(config):
    """Register the opt-out marker."""
    config.addinivalue_line(
        "markers",
        "no_sanitize: skip the protocol sanitizer for this test",
    )


@pytest.fixture(autouse=True)
def protocol_sanitizer(request):
    """Capture ambient protocol events during the test and sanitize them."""
    if request.node.get_closest_marker("no_sanitize") is not None:
        yield None
        return
    obs = Observability(MetricsRegistry("sanitizer"))
    previous = set_current_observability(obs)
    try:
        yield obs
    finally:
        set_current_observability(previous)
    report = SanitizerReport(n_streams=0)
    for cap in obs.runs:
        report.merge(sanitize_run(cap))
    if len(obs.default_instants):
        # Events from direct server construction/use outside any run:
        # safety checks only (unanswered pulls are fine here).
        report.merge(
            sanitize_events(events_from_instants(obs.default_instants), complete=False)
        )
    if not report.ok:
        pytest.fail(
            "protocol sanitizer found violations in this test's event "
            "stream:\n" + report.describe(),
            pytrace=False,
        )
