"""CLI for the analysis layer: ``python -m repro.analysis``.

Modes (default = ``--lint src --smoke``):

- ``--lint PATH...`` — run the custom AST lint over the given trees;
- ``--smoke`` — run small simulated + threaded training jobs across the
  sync-model matrix with observability on, and sanitize every captured
  event stream;
- ``--check-trace FILE...`` — sanitize dumped Perfetto trace files
  (``python -m repro.bench --trace-out`` artifacts).

Exits non-zero when any lint issue or protocol violation is found.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.analysis.lint import lint_paths
from repro.analysis.sanitizer import (
    SanitizerReport,
    sanitize_events,
    sanitize_observability,
)


def run_lint(paths: List[str]) -> int:
    issues = lint_paths(paths)
    for issue in issues:
        print(issue.describe())
    print(f"lint: {len(issues)} issue(s) in {', '.join(paths)}")
    return 1 if issues else 0


def run_check_trace(paths: List[str]) -> int:
    from repro.analysis.events import events_from_trace_file

    failed = 0
    for path in paths:
        # A dumped trace holds answered protocol traffic for finished
        # runs; liveness checks stay on (the run completed to be dumped).
        report = sanitize_events(events_from_trace_file(path), complete=True)
        print(f"{path}: {report.describe()}")
        failed += 0 if report.ok else 1
    return 1 if failed else 0


def _smoke_matrix():
    """(label, sync-model factory, execution) cells for the smoke run."""
    from repro.core.models import bsp, dsps, dynamic_pssp, pssp, ssp
    from repro.core.server import ExecutionMode

    return [
        ("bsp-lazy", bsp, ExecutionMode.LAZY),
        ("ssp2-lazy", lambda: ssp(2), ExecutionMode.LAZY),
        ("ssp2-soft", lambda: ssp(2), ExecutionMode.SOFT_BARRIER),
        ("pssp-const", lambda: pssp(2, 0.5), ExecutionMode.LAZY),
        ("pssp-dyn", lambda: dynamic_pssp(2), ExecutionMode.LAZY),
        ("dsps-lazy", dsps, ExecutionMode.LAZY),
    ]


def run_smoke(iters: int = 12, n_workers: int = 3, n_servers: int = 2) -> int:
    """Exercise every sync model on both runners, sanitizing each run."""
    from repro.bench.workloads import blobs_task
    from repro.core.api import ParameterServerSystem
    from repro.core.server import ExecutionMode
    from repro.obs import MetricsRegistry, Observability, observed
    from repro.parallel import ThreadedRunner
    from repro.sim.cluster import cpu_cluster
    from repro.sim.runner import SimConfig, run_fluentps

    failures = 0
    total = SanitizerReport(n_streams=0)
    for label, make_model, execution in _smoke_matrix():
        obs = Observability(MetricsRegistry("smoke"))
        with observed(obs):
            task = blobs_task(n_workers, n_train=400, n_test=100, seed=7)
            run_fluentps(
                SimConfig(
                    cluster=cpu_cluster(n_workers, n_servers),
                    max_iter=iters,
                    sync=make_model(),
                    execution=execution,
                    task=task,
                    seed=3,
                    base_compute_time=0.4,
                )
            )
        report = sanitize_observability(obs)
        print(f"smoke sim {label}: {report.describe()}")
        failures += 0 if report.ok else 1
        total.merge(report)

    obs = Observability(MetricsRegistry("smoke"))
    with observed(obs):
        from repro.core.models import ssp

        task = blobs_task(n_workers, n_train=400, n_test=100, seed=7)
        system = ParameterServerSystem(
            task.spec, task.init_params, n_workers, n_servers, ssp(2),
            ExecutionMode.LAZY, seed=0,
        )
        result = ThreadedRunner(system, task.step_fn, max_iter=iters, seed=1).run()
        if not result.ok:
            print(f"smoke threaded ssp2: run failed: {result.worker_errors}")
            failures += 1
    report = sanitize_observability(obs)
    print(f"smoke threaded ssp2: {report.describe()}")
    failures += 0 if report.ok else 1
    total.merge(report)

    print(
        f"smoke: {total.n_events} events over {total.n_streams} stream(s), "
        f"{len(total.violations)} violation(s)"
    )
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--lint", nargs="*", metavar="PATH",
        help="run the custom AST lint (default path: src)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run sanitized smoke training across the sync-model matrix",
    )
    parser.add_argument(
        "--check-trace", nargs="+", metavar="FILE",
        help="sanitize dumped Perfetto trace file(s)",
    )
    parser.add_argument("--smoke-iters", type=int, default=12)
    args = parser.parse_args(argv)

    selected = args.lint is not None or args.smoke or args.check_trace
    rc = 0
    if args.lint is not None or not selected:
        rc |= run_lint(args.lint or ["src"])
    if args.check_trace:
        rc |= run_check_trace(args.check_trace)
    if args.smoke or not selected:
        rc |= run_smoke(iters=args.smoke_iters)
    return rc


if __name__ == "__main__":
    sys.exit(main())
