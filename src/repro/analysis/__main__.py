"""CLI for the analysis layer: ``python -m repro.analysis``.

Modes (default = ``--lint src --smoke``):

- ``--lint PATH...`` — run the custom AST lint over the given trees;
- ``--smoke`` — run small simulated + threaded training jobs across the
  sync-model matrix with observability on, and sanitize every captured
  event stream;
- ``--check-trace FILE...`` — sanitize dumped Perfetto trace files
  (``python -m repro.bench --trace-out`` artifacts);
- ``--explore [PRESET...]`` — bounded DPOR schedule exploration (all
  presets when none given); a failing schedule is delta-minimized and,
  with ``--trace-out``, saved as a replayable choice trace;
- ``--replay FILE...`` — re-run saved choice traces and check they
  reproduce their recorded violations deterministically;
- ``--race`` — run the threaded runner under the happens-before race
  detector.

Failure classes map to distinct exit codes (the id of the first violated
rule is the first output line):

=====  =========================================================
code   meaning
=====  =========================================================
0      clean
1      operational error (unreadable input, bad usage)
3      lint issue (ANA...)
4      protocol invariant violation in a smoke run (S.../CS...)
5      dumped trace failed sanitization
6      schedule exploration found a violation, or a replay drifted
7      data race detected in the threaded runner (R...)
=====  =========================================================
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.analysis.lint import lint_paths
from repro.analysis.sanitizer import (
    SanitizerReport,
    sanitize_events,
    sanitize_observability,
)

EXIT_OK = 0
EXIT_ERROR = 1
EXIT_LINT = 3
EXIT_INVARIANT = 4
EXIT_TRACE = 5
EXIT_EXPLORE = 6
EXIT_RACE = 7

#: (exit code, id of the first violated rule, buffered output lines).
SectionResult = Tuple[int, Optional[str], List[str]]


def run_lint(paths: List[str]) -> SectionResult:
    issues = lint_paths(paths)
    lines = [issue.describe() for issue in issues]
    lines.append(f"lint: {len(issues)} issue(s) in {', '.join(paths)}")
    if issues:
        return EXIT_LINT, issues[0].code, lines
    return EXIT_OK, None, lines


def run_check_trace(paths: List[str]) -> SectionResult:
    from repro.analysis.events import events_from_trace_file

    lines: List[str] = []
    rc, first = EXIT_OK, None
    for path in paths:
        try:
            # A dumped trace holds answered protocol traffic for finished
            # runs; liveness checks stay on (the run completed to be dumped).
            report = sanitize_events(events_from_trace_file(path), complete=True)
        except Exception as exc:
            lines.append(f"{path}: unreadable trace: {type(exc).__name__}: {exc}")
            rc, first = EXIT_TRACE, first or "X002"
            continue
        lines.append(f"{path}: {report.describe()}")
        if not report.ok:
            rc, first = EXIT_TRACE, first or report.violations[0].code
    return rc, first, lines


def _smoke_matrix():
    """(label, sync-model factory, execution) cells for the smoke run."""
    from repro.core.models import bsp, dsps, dynamic_pssp, pssp, ssp
    from repro.core.server import ExecutionMode

    return [
        ("bsp-lazy", bsp, ExecutionMode.LAZY),
        ("ssp2-lazy", lambda: ssp(2), ExecutionMode.LAZY),
        ("ssp2-soft", lambda: ssp(2), ExecutionMode.SOFT_BARRIER),
        ("pssp-const", lambda: pssp(2, 0.5), ExecutionMode.LAZY),
        ("pssp-dyn", lambda: dynamic_pssp(2), ExecutionMode.LAZY),
        ("dsps-lazy", dsps, ExecutionMode.LAZY),
    ]


def run_smoke(iters: int = 12, n_workers: int = 3, n_servers: int = 2) -> SectionResult:
    """Exercise every sync model on both runners, sanitizing each run."""
    from repro.bench.workloads import blobs_task
    from repro.core.api import ParameterServerSystem
    from repro.core.server import ExecutionMode
    from repro.obs import MetricsRegistry, Observability, observed
    from repro.parallel import ThreadedRunner
    from repro.sim.cluster import cpu_cluster
    from repro.sim.runner import SimConfig, run_fluentps

    lines: List[str] = []
    rc, first = EXIT_OK, None
    total = SanitizerReport(n_streams=0)
    for label, make_model, execution in _smoke_matrix():
        obs = Observability(MetricsRegistry("smoke"))
        with observed(obs):
            task = blobs_task(n_workers, n_train=400, n_test=100, seed=7)
            run_fluentps(
                SimConfig(
                    cluster=cpu_cluster(n_workers, n_servers),
                    max_iter=iters,
                    sync=make_model(),
                    execution=execution,
                    task=task,
                    seed=3,
                    base_compute_time=0.4,
                )
            )
        report = sanitize_observability(obs)
        lines.append(f"smoke sim {label}: {report.describe()}")
        if not report.ok:
            rc, first = EXIT_INVARIANT, first or report.violations[0].code
        total.merge(report)

    obs = Observability(MetricsRegistry("smoke"))
    with observed(obs):
        from repro.core.models import ssp

        task = blobs_task(n_workers, n_train=400, n_test=100, seed=7)
        system = ParameterServerSystem(
            task.spec, task.init_params, n_workers, n_servers, ssp(2),
            ExecutionMode.LAZY, seed=0,
        )
        result = ThreadedRunner(system, task.step_fn, max_iter=iters, seed=1).run()
        if not result.ok:
            lines.append(f"smoke threaded ssp2: run failed: {result.worker_errors}")
            rc, first = EXIT_INVARIANT, first or "X002"
    report = sanitize_observability(obs)
    lines.append(f"smoke threaded ssp2: {report.describe()}")
    if not report.ok:
        rc, first = EXIT_INVARIANT, first or report.violations[0].code
    total.merge(report)

    lines.append(
        f"smoke: {total.n_events} events over {total.n_streams} stream(s), "
        f"{len(total.violations)} violation(s)"
    )
    return rc, first, lines


def run_explore(
    presets: List[str],
    budget: int,
    iters: int,
    target: Optional[int],
    mutation: Optional[str],
    spread: float,
    trace_out: Optional[str],
) -> SectionResult:
    from repro.analysis.explore import PRESETS, ExploreConfig, explore

    lines: List[str] = []
    rc, first = EXIT_OK, None
    for preset in presets or sorted(PRESETS):
        report = explore(
            ExploreConfig(
                preset=preset,
                max_iter=iters,
                max_schedules=budget,
                target_inequivalent=target,
                mutation=mutation,
                spread=spread,
            )
        )
        lines.append(report.describe())
        if not report.ok:
            codes = [v.code for v in report.violations]
            if report.counterexample is not None:
                codes = report.counterexample.violations + codes
                if trace_out:
                    report.counterexample.save(trace_out)
                    lines.append(f"  counterexample trace written to {trace_out}")
            rc, first = EXIT_EXPLORE, first or (codes[0] if codes else "X002")
    return rc, first, lines


def run_replay(paths: List[str]) -> SectionResult:
    from repro.analysis.explore import ChoiceTrace, replay_trace

    lines: List[str] = []
    rc, first = EXIT_OK, None
    for path in paths:
        try:
            trace = ChoiceTrace.load(path)
        except Exception as exc:
            lines.append(f"{path}: unreadable choice trace: {type(exc).__name__}: {exc}")
            rc, first = EXIT_TRACE, first or "X002"
            continue
        result = replay_trace(trace)
        got = sorted(set(result.violation_codes()))
        want = sorted(set(trace.violations))
        for m in result.mismatches:
            lines.append(f"{path}: drift: {m}")
        if result.mismatches or got != want:
            lines.append(
                f"{path}: replay did NOT reproduce the trace: recorded {want}, "
                f"replay produced {got}"
            )
            drift_code = (got or want or ["X002"])[0]
            rc, first = EXIT_EXPLORE, first or drift_code
        else:
            lines.append(
                f"{path}: reproduced {want or ['clean run']} over "
                f"{result.n_decisions} decision(s)"
            )
    return rc, first, lines


def run_race(iters: int = 30, n_workers: int = 3, n_servers: int = 2) -> SectionResult:
    from repro.analysis.races import RaceTracker
    from repro.bench.workloads import blobs_task
    from repro.core.api import ParameterServerSystem
    from repro.core.models import ssp
    from repro.core.server import ExecutionMode
    from repro.parallel import ThreadedRunner

    lines: List[str] = []
    task = blobs_task(n_workers, n_train=200, n_test=60, seed=11)
    system = ParameterServerSystem(
        task.spec, task.init_params, n_workers, n_servers, ssp(1),
        ExecutionMode.LAZY, seed=0,
    )
    tracker = RaceTracker()
    result = ThreadedRunner(
        system, task.step_fn, max_iter=iters, seed=1, race_tracker=tracker
    ).run()
    report = tracker.report()
    lines.append(
        f"race: {report.n_events} sync/access op(s), "
        f"{len(report.violations)} race(s)"
    )
    lines += ["  " + v.describe() for v in report.violations[:10]]
    if not result.ok:
        lines.append(f"race: threaded run failed: {result.worker_errors}")
        return EXIT_RACE, "X002", lines
    if not report.ok:
        return EXIT_RACE, report.violations[0].code, lines
    return EXIT_OK, None, lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--lint", nargs="*", metavar="PATH",
        help="run the custom AST lint (default path: src)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run sanitized smoke training across the sync-model matrix",
    )
    parser.add_argument(
        "--check-trace", nargs="+", metavar="FILE",
        help="sanitize dumped Perfetto trace file(s)",
    )
    parser.add_argument("--smoke-iters", type=int, default=12)
    parser.add_argument(
        "--explore", nargs="*", metavar="PRESET",
        help="bounded DPOR schedule exploration (default: every preset)",
    )
    parser.add_argument(
        "--explore-budget", type=int, default=150,
        help="maximum schedules to run per preset (default 150)",
    )
    parser.add_argument(
        "--explore-iters", type=int, default=4,
        help="training iterations per explored schedule (default 4)",
    )
    parser.add_argument(
        "--explore-target", type=int, default=None,
        help="stop a preset once this many inequivalent schedules were seen",
    )
    parser.add_argument(
        "--mutation", choices=["weak-staleness"], default=None,
        help="seed a known invariant bug (explorer self-test)",
    )
    parser.add_argument(
        "--spread", type=float, default=0.0,
        help="per-worker slowdown spread for exploration (default 0: symmetric)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the minimized counterexample choice trace here",
    )
    parser.add_argument(
        "--replay", nargs="+", metavar="FILE",
        help="replay saved choice trace(s), checking they reproduce",
    )
    parser.add_argument(
        "--race", action="store_true",
        help="run the threaded runner under the happens-before race detector",
    )
    parser.add_argument("--race-iters", type=int, default=30)
    args = parser.parse_args(argv)

    selected = (
        args.lint is not None or args.smoke or args.check_trace
        or args.explore is not None or args.replay or args.race
    )
    sections: List[SectionResult] = []
    if args.lint is not None or not selected:
        sections.append(run_lint(args.lint or ["src"]))
    if args.check_trace:
        sections.append(run_check_trace(args.check_trace))
    if args.explore is not None:
        sections.append(
            run_explore(
                args.explore, args.explore_budget, args.explore_iters,
                args.explore_target, args.mutation, args.spread, args.trace_out,
            )
        )
    if args.replay:
        sections.append(run_replay(args.replay))
    if args.race:
        sections.append(run_race(iters=args.race_iters))
    if args.smoke or not selected:
        sections.append(run_smoke(iters=args.smoke_iters))

    # Output is buffered per section so a failure's rule id can lead the
    # combined output (CI log scrapers key off the first line).
    rc, first = EXIT_OK, None
    for sec_rc, sec_first, _lines in sections:
        if sec_rc != EXIT_OK and rc == EXIT_OK:
            rc, first = sec_rc, sec_first
    if first is not None:
        print(first)
    for _rc, _first, lines in sections:
        for line in lines:
            print(line)
    return rc


if __name__ == "__main__":
    sys.exit(main())
