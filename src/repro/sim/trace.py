"""Timeline tracing: spans, counters and the Fig 3/5-style summaries.

Each actor (worker/server) records spans — compute, push wait, pull wait,
blocked-in-barrier — from which the benches derive exactly the quantities
the paper reports: computation vs. communication time (Fig 6), DPR counts
(Fig 9, Table IV), and the timeline diagrams (Fig 3, Fig 5).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class SpanKind(enum.Enum):
    """What a span's time was spent on (Fig-6 categories)."""

    COMPUTE = "compute"
    PUSH = "push"  # time from issuing a push until server ack received
    PULL = "pull"  # time from issuing a pull until parameters received
    BLOCKED = "blocked"  # extra wait inside a barrier/DPR buffer
    SERVER_APPLY = "server_apply"
    OTHER = "other"


#: Span kinds counted as "communication" in Fig-6-style breakdowns.
COMM_KINDS = (SpanKind.PUSH, SpanKind.PULL, SpanKind.BLOCKED)


@dataclass(frozen=True)
class Span:
    """One ``[t0, t1]`` interval of ``kind`` work on an actor's track."""

    actor: str
    kind: SpanKind
    t0: float
    t1: float
    iteration: int = -1
    note: str = ""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class TraceRecorder:
    """Accumulates spans and named counters for one simulated run."""

    #: Tolerated clock jitter: a span whose end precedes its start by at
    #: most ``NEGATIVE_EPS * max(1, |t0|)`` seconds is clipped to zero
    #: duration (float rounding in clock sources); anything larger is a
    #: recording bug and raises, so Fig-6-style breakdowns can never
    #: accumulate negative time.
    NEGATIVE_EPS = 1e-9

    def __init__(self, keep_spans: bool = True):
        self.keep_spans = keep_spans
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = defaultdict(float)
        self._totals: Dict[Tuple[str, SpanKind], float] = defaultdict(float)
        self._span_counts: Dict[Tuple[str, SpanKind], int] = defaultdict(int)
        self.end_time: float = 0.0

    def record_span(
        self,
        actor: str,
        kind: SpanKind,
        t0: float,
        t1: float,
        iteration: int = -1,
        note: str = "",
    ) -> None:
        """Record one ``[t0, t1]`` span of ``kind`` for ``actor``."""
        if t1 < t0:
            if t0 - t1 > self.NEGATIVE_EPS * max(1.0, abs(t0)):
                raise ValueError(f"span ends before it starts: [{t0}, {t1}]")
            t1 = t0  # clock jitter: clip to an empty span
        if self.keep_spans:
            self.spans.append(Span(actor, kind, t0, t1, iteration, note))
        self._totals[(actor, kind)] += t1 - t0
        self._span_counts[(actor, kind)] += 1
        self.end_time = max(self.end_time, t1)

    def incr(self, counter: str, by: float = 1.0) -> None:
        """Increment a named counter."""
        self.counters[counter] += by

    # -- aggregation ----------------------------------------------------

    def actors(self) -> List[str]:
        """All actor names seen so far, sorted."""
        return sorted({a for (a, _k) in self._totals})

    def total(self, actor: str, kind: SpanKind) -> float:
        """Total seconds of ``kind`` recorded for ``actor``."""
        return self._totals.get((actor, kind), 0.0)

    def count(self, actor: str, kind: SpanKind) -> int:
        """Number of ``kind`` spans recorded for ``actor``."""
        return self._span_counts.get((actor, kind), 0)

    def total_by_kind(self, kind: SpanKind, actors: Optional[Iterable[str]] = None) -> float:
        """Total seconds of ``kind`` across ``actors`` (all if None)."""
        if actors is None:
            return sum(v for (_a, k), v in self._totals.items() if k is kind)
        wanted = set(actors)
        return sum(v for (a, k), v in self._totals.items() if k is kind and a in wanted)

    def compute_time(self, actors: Optional[Iterable[str]] = None) -> float:
        """Aggregate compute seconds across (worker) actors."""
        return self.total_by_kind(SpanKind.COMPUTE, actors)

    def comm_time(self, actors: Optional[Iterable[str]] = None) -> float:
        """Aggregate communication+wait seconds across (worker) actors."""
        return sum(self.total_by_kind(k, actors) for k in COMM_KINDS)

    def breakdown(self, actor: str) -> Dict[str, float]:
        """Seconds per span kind for one actor."""
        return {k.value: self.total(actor, k) for k in SpanKind}

    def mean_breakdown(self, actors: Iterable[str]) -> Dict[str, float]:
        """Per-kind seconds averaged over ``actors``."""
        actors = list(actors)
        if not actors:
            raise ValueError("need at least one actor")
        out: Dict[str, float] = {k.value: 0.0 for k in SpanKind}
        for a in actors:
            for k in SpanKind:
                out[k.value] += self.total(a, k)
        return {k: v / len(actors) for k, v in out.items()}

    # -- rendering (examples / figure 3&5 demos) -------------------------

    def render_timeline(
        self,
        actors: Optional[List[str]] = None,
        width: int = 80,
        t_max: Optional[float] = None,
    ) -> str:
        """ASCII Gantt: one row per actor; '#'=compute, '>'=push, '<'=pull,
        '.'=blocked.  Resolution is t_max/width per character."""
        if not self.keep_spans:
            raise ValueError("timeline rendering needs keep_spans=True")
        if width < 10:
            raise ValueError(f"timeline width must be >= 10 columns, got {width}")
        if actors is None:
            actors = self.actors()
        t_max = t_max if t_max is not None else (self.end_time or 1.0)
        glyph = {
            SpanKind.COMPUTE: "#",
            SpanKind.PUSH: ">",
            SpanKind.PULL: "<",
            SpanKind.BLOCKED: ".",
            SpanKind.SERVER_APPLY: "*",
            SpanKind.OTHER: "~",
        }
        rows = []
        label_w = max((len(a) for a in actors), default=4) + 1
        for actor in actors:
            cells = [" "] * width
            for s in self.spans:
                if s.actor != actor or s.t0 >= t_max:
                    continue
                c0 = int(s.t0 / t_max * width)
                c1 = max(c0 + 1, int(min(s.t1, t_max) / t_max * width))
                for c in range(c0, min(c1, width)):
                    cells[c] = glyph[s.kind]
            rows.append(actor.ljust(label_w) + "|" + "".join(cells) + "|")
        # Axis: t=0 under the first cell, t_max right-aligned to the row end.
        header = " " * (label_w + 1) + "0" + f"{t_max:.3g}s".rjust(width - 1)
        legend = "legend: #=compute  >=push  <=pull  .=blocked/barrier  *=apply"
        return "\n".join([header] + rows + [legend])
