"""Co-simulation runner: FluentPS protocol × network model × real gradients.

This binds the three substrates together (DESIGN.md's centerpiece):

- worker processes compute for a sampled duration (straggler model), then
  sPush their update shards and sPull the next parameters over the
  simulated network;
- each :class:`~repro.core.server.ShardServer` applies real NumPy updates
  and runs its own pull/push conditions — **overlap synchronization**
  falls out of the architecture: a shard answers its pulls the moment its
  own condition allows, independent of the other M−1 shards (Figure 4b);
- when a :class:`~repro.ml.training.TrainingTask` is attached, gradient
  math is real and accuracy-vs-time curves come out; without one the run
  is timing-only against a :class:`~repro.ml.models_zoo.Workload` spec.

``wire_scale`` lets a small trainable proxy model carry the *paper
model's* wire footprint: message sizes are multiplied so the network sees
ResNet-56-sized transfers while the gradients stay cheap to compute.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.conditions import DSPSPull, PSSPPull, SSPPull
from repro.core.driver import StepContext
from repro.core.filters import NoFilter, PushFilter
from repro.core.keyspace import ElasticSlicer, ModelSpec, Slicer
from repro.core.layout import ShardLayout
from repro.core.metrics import SyncMetrics
from repro.core.models import SyncModel
from repro.core.server import (
    ExecutionMode,
    PullReply,
    ShardServer,
    flush_applies_across,
)
from repro.ml.models_zoo import Workload
from repro.ml.training import TrainingTask
from repro.obs import Observability, current_observability
from repro.obs.snapshot import ServerSnapshotter
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Engine, SimulationError, Timeout
from repro.sim.network import Message, Network
from repro.sim.stragglers import ComputeModel, LogNormalCompute
from repro.sim.trace import SpanKind, TraceRecorder
from repro.utils.records import SeriesRecord
from repro.utils.rng import derive_rng


@dataclass
class SimConfig:
    """Everything one co-simulated training run needs."""

    cluster: ClusterSpec
    max_iter: int
    sync: Union[SyncModel, Sequence[SyncModel]]
    execution: ExecutionMode = ExecutionMode.LAZY
    slicer: Optional[Slicer] = None
    compute_model: Optional[ComputeModel] = None
    base_compute_time: Optional[float] = None  # None → derive from workload
    batch_per_worker: int = 128
    task: Optional[TrainingTask] = None
    workload: Optional[Workload] = None
    wire_scale: Optional[float] = None  # None → auto from workload/task sizes
    seed: int = 0
    eval_every: int = 0
    keep_spans: bool = False
    #: Span-list capture override.  ``None`` → legacy behavior: spans are
    #: kept when ``keep_spans`` asks for them or observability is enabled
    #: (trace export needs the list).  ``False`` → never keep the span
    #: list even under observability: span *totals* (comm/compute time)
    #: still accumulate exactly, but per-span objects are dropped — at
    #: 100k workers the list alone costs hundreds of MB, and a
    #: sanitize-focused run only needs the protocol instant stream.
    #: ``True`` → always keep (same as ``keep_spans=True``).
    span_capture: Optional[bool] = None
    header_bytes: int = 256
    request_bytes: int = 128
    #: Server processing time per handled request (queue pop, dispatch).
    server_op_overhead_s: float = 20e-6
    #: Protocol cost per DPR event: server-side buffering/re-check work
    #: plus the blocked worker's share of the retry round-trip.  Frequent
    #: soft barriers pay this once per re-buffer — the per-event cost
    #: behind lazy execution's 1.2x speedup (Fig 8) and part of PSSP's
    #: time advantage over SSP under the soft barrier (Fig 9/10).
    dpr_overhead_s: float = 500e-6
    #: Optional per-worker push filter (PS-Lite programming filters /
    #: Gaia significance filter): called as ``push_filter_factory()`` once
    #: per worker; shrinks push wire bytes by the filtered fraction.
    push_filter_factory: Optional[Callable[[], "PushFilter"]] = None
    #: Observability sink; None → the ambient :func:`current_observability`.
    obs: Optional[Observability] = None
    #: Snapshot scrape period in sim seconds; None → half a base compute.
    snapshot_interval_s: Optional[float] = None
    #: Engine calendar queue: None → auto (migrate past the pending-count
    #: threshold), False → binary heap only (the differential-testing
    #: slow path), True → same as auto (the calendar still only engages
    #: past the threshold).  See docs/PERFORMANCE.md, "Mesoscale
    #: fast-forward and the calendar queue".
    engine_calendar: Optional[bool] = None
    #: Pending-event count that triggers calendar migration; None → the
    #: engine default.
    engine_calendar_threshold: Optional[int] = None
    #: Protocol-quiet event elision: None/True → the engine batch-serves
    #: same-timestamp runs of worker compute-phase completions (clock
    #: advanced once per region, no per-event queue bookkeeping), False →
    #: event-by-event service, kept as the differential oracle exactly
    #: like ``engine_calendar=False`` and ``server_dispatch="proc"``.
    #: Served callback order — and thus the S001–S016 protocol event
    #: stream and final params — is bit-identical either way.  See
    #: docs/PERFORMANCE.md, "Protocol-quiet elision and parallel shard
    #: drains".
    engine_elide: Optional[bool] = None
    #: Closed-form round fast-forward: ``None``/``True`` → when every
    #: shard's sync condition is provably quiet for a whole protocol
    #: round (SSP/PSSP with s > 0 and an all-pushed quorum, timing-only
    #: run, analytic drain lanes, no causal trace / delay hook / choice
    #: hook), the runner advances the entire round analytically — one
    #: vectorized pass over a cohort state table instead of O(workers)
    #: resume/deliver events per iteration.  The first round whose
    #: straggler draw breaks inter-round isolation de-vectorizes back to
    #: the event path with no drift.  ``False`` keeps event-by-event
    #: protocol rounds as the differential oracle, exactly like
    #: ``engine_calendar=False`` / ``engine_elide=False``.  Delivery
    #: traces, protocol instant streams, final params, and worker finish
    #: times are bit-identical either way.  See docs/PERFORMANCE.md,
    #: "Closed-form round fast-forward and the cohort state table".
    round_collapse: Optional[bool] = None
    #: Server request dispatch.  ``"direct"`` (default) handles each
    #: delivered request inside the delivery event via the endpoint sink:
    #: no inbox round-trip, no per-request resume event — a busy server
    #: parks arrivals and drains them FIFO when its busy window closes.
    #: ``"proc"`` runs the classic one-generator-per-server inbox loop
    #: and is the dispatch differential oracle.  Handle times and
    #: per-server FIFO order are bit-identical between the two; only the
    #: event structure differs.
    server_dispatch: str = "direct"
    #: Busy-server drain mode under direct dispatch.  ``"lane"``
    #: (default): each shard runs an analytic drain lane — a parked
    #: request's handle time is the cascade ``max(deliver_time, lane busy
    #: end)`` computed at arrival, served immediately on the per-shard
    #: virtual clock, so no per-message drain events exist and (on the
    #: analytic wire) request deliveries fuse into their TX-completion
    #: events.  ``"event"`` keeps the sequential busy-window drain (one
    #: engine event per parked request) as the differential oracle.
    #: Handle times, protocol event streams, and final params are
    #: bit-identical across modes; see docs/PERFORMANCE.md.
    server_drain: str = "lane"
    #: Per-worker observability series cap.  Below this worker count the
    #: runner keeps one ``pull_latency_seconds`` sketch series per worker
    #: (labels ``worker=<w>``); above it, all workers share a single
    #: aggregate series (``worker="all"``) so the metrics registry stays
    #: bounded at mesoscale — at 100k workers per-worker label sets would
    #: dominate run memory.  Sketches merge exactly, so the aggregate is
    #: byte-identical to merging the per-worker series after the fact.
    worker_series_threshold: int = 4096

    def __post_init__(self) -> None:
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if self.server_dispatch not in ("direct", "proc"):
            raise ValueError(
                f"server_dispatch must be 'direct' or 'proc', "
                f"got {self.server_dispatch!r}"
            )
        if self.server_drain not in ("lane", "event"):
            raise ValueError(
                f"server_drain must be 'lane' or 'event', "
                f"got {self.server_drain!r}"
            )
        if self.worker_series_threshold < 1:
            raise ValueError(
                f"worker_series_threshold must be >= 1, "
                f"got {self.worker_series_threshold}"
            )
        if self.task is None and self.workload is None:
            raise ValueError("need a TrainingTask and/or a Workload")
        if self.task is not None and self.task.n_workers != self.cluster.n_workers:
            raise ValueError(
                f"task built for {self.task.n_workers} workers, cluster has "
                f"{self.cluster.n_workers}"
            )

    @property
    def spec(self) -> ModelSpec:
        return self.task.spec if self.task is not None else self.workload.spec

    def resolved_wire_scale(self) -> float:
        if self.wire_scale is not None:
            if self.wire_scale <= 0:
                raise ValueError("wire_scale must be positive")
            return self.wire_scale
        if self.task is not None and self.workload is not None:
            return self.workload.wire_bytes / self.spec.total_bytes
        return 1.0

    def resolved_base_compute(self, node_flops: float) -> float:
        if self.base_compute_time is not None:
            if self.base_compute_time <= 0:
                raise ValueError("base_compute_time must be positive")
            return self.base_compute_time
        if self.workload is not None:
            return self.workload.train_flops_per_sample * self.batch_per_worker / node_flops
        # No workload: a nominal per-iteration second keeps ratios readable.
        return 1.0


@dataclass
class SimRunResult:
    """Outcome of one co-simulated run."""

    duration: float
    iterations: int
    n_workers: int
    metrics: SyncMetrics
    trace: TraceRecorder
    total_compute_time: float
    total_comm_time: float
    bytes_on_wire: int
    messages_on_wire: int
    final_params: Optional[np.ndarray] = None
    eval_by_time: SeriesRecord = field(default_factory=lambda: SeriesRecord("eval"))
    eval_by_iteration: SeriesRecord = field(default_factory=lambda: SeriesRecord("eval"))
    worker_finish_times: List[float] = field(default_factory=list)

    @property
    def mean_compute_time(self) -> float:
        return self.total_compute_time / self.n_workers

    @property
    def mean_comm_time(self) -> float:
        return self.total_comm_time / self.n_workers

    def dprs_per_100_iterations(self) -> float:
        return self.metrics.dprs_per_100_iterations(self.iterations)


@dataclass(slots=True)
class _PushMsg:
    worker: int
    progress: int
    shard: Optional[np.ndarray]


@dataclass(slots=True)
class _PullMsg:
    worker: int
    progress: int


@dataclass(slots=True)
class _ReplyMsg:
    server: int
    reply: PullReply


class _PendingPull:
    __slots__ = ("flat", "remaining", "signal", "max_missing", "last_cause")

    def __init__(self, engine: Engine, n_servers: int, n_elements: Optional[int]):
        self.flat = np.empty(n_elements) if n_elements is not None else None
        self.remaining = n_servers
        self.signal = engine.signal("pull-complete")
        self.max_missing = 0
        #: Causal span id of the last reply to land (-1 when tracing is
        #: off) — the cause that actually released the worker's sync wait.
        self.last_cause = -1


def _discard_reply(reply: PullReply) -> None:
    """Pull responder for analytically committed rounds: the wire reply
    is synthesized in closed form, so the server-side callback has
    nothing left to do (the real responder only sends the message)."""


def _seq_cascade(
    arrivals: np.ndarray, holds: np.ndarray, cursor: float
) -> Tuple[np.ndarray, float]:
    """Exact capacity-1 FIFO-lane cascade over a sorted arrival stream.

    Computes ``end_i = max(cursor_i, a_i) + h_i`` with
    ``cursor_{i+1} = end_i`` — the same float sequence the event path
    produces one message at a time — using one seeded
    ``np.add.accumulate`` per *saturated segment* (a maximal stretch
    where each arrival lands before the previous transfer ends).  The
    accumulate is strictly sequential, and the running cursor is seeded
    *inside* the accumulated array, so every end time is bit-identical
    to the scalar recurrence.  Returns ``(ends, final_cursor)``.

    Idle-dominated stretches (every arrival after the previous end,
    e.g. a serve lane whose per-request cost is far below the arrival
    spacing) commit as whole runs of ``a_i + h_i`` between precomputed
    saturation triggers; saturated stretches accumulate in growing
    chunks.  Both regimes are O(n) vector work overall.
    """
    n_items = arrivals.shape[0]
    out = np.empty(n_items)
    # Idle items (arrival after the previous end) close in one add:
    # end_i = a_i + h_i, the exact float the seeded accumulate would
    # produce from seed a_i.  trig[i] marks where item i+1 lands before
    # item i's *idle* end — the only places a saturated chain can start
    # inside an idle run — so a whole run can be committed per step.
    idle_end = arrivals + holds
    trig_idx = np.nonzero(arrivals[1:] <= idle_end[:-1])[0]
    i = 0
    while i < n_items:
        if arrivals[i] > cursor:
            k = int(np.searchsorted(trig_idx, i))
            j = int(trig_idx[k]) if k < trig_idx.shape[0] else n_items - 1
            out[i : j + 1] = idle_end[i : j + 1]
            cursor = float(idle_end[j])
            i = j + 1
            continue
        # Saturated start: seeded sequential accumulate in growing
        # chunks (chunking a left-fold with a carried float seed is the
        # same add sequence, so ends stay bit-exact), stopping at the
        # first arrival that lands after its predecessor's end.
        seed = cursor
        pos = i
        width = 32
        while True:
            hi = min(n_items, pos + width)
            seg = np.add.accumulate(np.concatenate(((seed,), holds[pos:hi])))[1:]
            prev = np.concatenate(((seed,), seg[:-1]))
            viol = np.nonzero(arrivals[pos:hi] > prev)[0]
            if viol.size:
                j = pos + int(viol[0])
                out[pos:j] = seg[: j - pos]
                cursor = float(seg[j - pos - 1]) if j > pos else seed
                i = j
                break
            out[pos:hi] = seg
            seed = float(seg[-1])
            if hi == n_items:
                cursor = seed
                i = n_items
                break
            pos = hi
            width *= 8
    return out, cursor


class FluentPSSimRunner:
    """Run one FluentPS training job on the simulated cluster."""

    def __init__(self, config: SimConfig):
        self.cfg = config
        self.engine = Engine(
            calendar=config.engine_calendar,
            calendar_threshold=config.engine_calendar_threshold,
            elide=config.engine_elide,
            collapse=config.round_collapse,
        )
        self.net: Network = config.cluster.make_network(self.engine)
        self.obs = config.obs or current_observability()
        # Observability implies a full span capture for trace export,
        # unless span_capture=False opts out (sanitize-focused runs).
        keep = (
            config.span_capture
            if config.span_capture is not None
            else (config.keep_spans or self.obs.enabled)
        )
        self.trace = TraceRecorder(keep_spans=keep)
        self.spec = config.spec
        slicer = config.slicer or ElasticSlicer()
        self.layout = ShardLayout(self.spec, slicer.slice(self.spec, config.cluster.n_servers))
        self.wire_scale = config.resolved_wire_scale()
        self.compute_model = config.compute_model or LogNormalCompute(0.2)

        n, m = config.cluster.n_workers, config.cluster.n_servers
        models = self._normalize_models(config.sync, m)
        training = config.task is not None
        if training:
            shard_vectors = self.layout.scatter(config.task.init_params.astype(np.float64))
        self.servers: List[ShardServer] = [
            ShardServer(
                shard_id=j,
                n_workers=n,
                model=models[j],
                execution=config.execution,
                params=shard_vectors[j] if training else None,
                # Per-shard drain-lane clock: equals ``engine.now`` inside
                # real handle events, and the cascaded virtual handle time
                # when the analytic lane serves a parked request — so
                # waited times and protocol instants are bit-identical
                # across drain modes.
                clock=lambda j=j: self._srv_now[j],
                rng=derive_rng(config.seed, "server", j),
                obs=self.obs,
            )
            for j in range(m)
        ]
        self._capture = None
        self.causal = None
        self._pull_sketches = None
        #: Worker whose push is currently being applied (drives straggler
        #: blame on DPR releases; only read when causal tracing is on).
        self._current_push_worker = -1
        if self.obs.enabled:
            self.obs.registry.set_clock(lambda: self.engine.now)
            self._capture = self.obs.begin_run(
                f"sim-run{len(self.obs.runs)}-n{n}x{m}", self.trace
            )
            self.causal = self._capture.causal
            self.net.causal = self.causal
            pull_sketch = self.obs.registry.sketch(
                "pull_latency_seconds",
                "sync-wait seconds per sPull round (mergeable sketch)",
            )
            if n > config.worker_series_threshold:
                # Mesoscale: one shared aggregate series instead of one
                # label set per worker keeps the registry bounded (the
                # sketch merge is exact, so nothing is lost but the
                # per-worker split — see SimConfig.worker_series_threshold).
                agg = pull_sketch.labels(worker="all")
                self._pull_sketches = [agg] * n
            else:
                self._pull_sketches = [
                    pull_sketch.labels(worker=w) for w in range(n)
                ]
            self.obs.instants.record(
                "run_config", 0.0, actor="runner",
                runner="sim", n_workers=n, n_servers=m,
                models=[mod.name for mod in models],
                execution=config.execution.value,
            )
        self._pending: Dict[Tuple[int, int], _PendingPull] = {}
        self._filters: List[PushFilter] = [
            config.push_filter_factory() if config.push_filter_factory else NoFilter()
            for _ in range(n)
        ]
        self._compute_rngs = [derive_rng(config.seed, "compute", w) for w in range(n)]
        self._step_rngs = [derive_rng(config.seed, "step", w) for w in range(n)]
        self.eval_by_time = SeriesRecord("eval", x_label="time_s", y_label="metric")
        self.eval_by_iteration = SeriesRecord("eval", x_label="iteration", y_label="metric")
        self._finish_times: List[float] = [0.0] * n
        # Direct-dispatch state (also read by the proc loop): per-server
        # busy-window close time, parked arrivals, and whether a drain
        # event is already on the calendar for that server.
        self._direct = config.server_dispatch == "direct"
        # Analytic drain lanes need cursor-scheduled (analytic) wire
        # timing; the process-path wire falls back to the event drain.
        self._lane = (
            self._direct and config.server_drain == "lane" and self.net.analytic
        )
        self._srv_names = [f"server{j}" for j in range(m)]
        self._srv_busy = [0.0] * m
        # Per-shard virtual clock: the handle time of the request this
        # shard is currently serving (== engine.now inside real handle
        # events).  ShardServer.clock reads it, so DPR waits and protocol
        # instants see identical times in lane and event drain modes.
        self._srv_now = [0.0] * m
        self._srv_queue: List[Deque[Message]] = [deque() for _ in range(m)]
        self._srv_drain_pending = [False] * m
        # Hot-path memos: node-id strings, per-shard wire sizes, and (when
        # causal tracing is off) one prebound pull responder per server —
        # all pure functions of the config, resolved once instead of per
        # request at incast rates.
        self._srv_node_ids = [config.cluster.server_id(j) for j in range(m)]
        self._wkr_node_ids = [config.cluster.worker_id(w) for w in range(n)]
        # Endpoint objects resolved once: Network.send accepts them in
        # place of node ids, skipping two registry lookups per message
        # (cache misses once the registry holds 100k entries).
        self._srv_eps = [self.net.endpoints[i] for i in self._srv_node_ids]
        self._wkr_eps = [self.net.endpoints[i] for i in self._wkr_node_ids]
        self._shard_bytes = [self._payload_bytes(j) for j in range(m)]
        self._responders = [
            partial(self._send_reply, j) for j in range(m)
        ]
        #: Dispatch counters (perf detail): requests handled inline in
        #: the delivery event vs. parked behind a busy server and drained.
        self.server_msgs_inline = 0
        self.server_msgs_drained = 0

    @staticmethod
    def _normalize_models(
        sync: Union[SyncModel, Sequence[SyncModel]], m: int
    ) -> List[SyncModel]:
        if isinstance(sync, SyncModel):
            return [sync] * m
        models = list(sync)
        if len(models) != m:
            raise ValueError(f"need one sync model per server, got {len(models)} for {m}")
        return models

    # -- sizing ---------------------------------------------------------------

    def _payload_bytes(self, server: int) -> int:
        return int(self.layout.shard_bytes(server) * self.wire_scale) + self.cfg.header_bytes

    # -- server side ----------------------------------------------------------

    def _server_proc(self, m: int):
        """Classic inbox loop (``server_dispatch="proc"``): one generator
        per server, resumed once per request plus once per busy window.
        The dispatch differential oracle — both paths share
        :meth:`_handle_server_msg`, so handle times and per-server FIFO
        order match the direct dispatcher bit-for-bit; only the event
        structure (inbox resume + timeout vs. inline + drain) differs."""
        ep = self.net.endpoint(self.cfg.cluster.server_id(m))
        while True:
            msg: Message = yield ep.inbox.get()
            cost = self._handle_server_msg(m, msg, self.engine.now)
            if cost > 0:
                yield Timeout(cost)

    def _dispatch_server(self, m: int, msg: Message) -> None:
        """Endpoint sink (``server_dispatch="direct"``): handle the
        request inside the delivery event while the server is free;
        otherwise the drain mode decides.  ``"lane"``: serve it *now* at
        the cascaded virtual handle time ``max(deliver_time, lane busy
        end)`` — arrival order equals handle order per shard, so the
        cascade reproduces the busy-window FIFO with zero extra events.
        ``"event"``: park it and drain FIFO when the busy window closes
        (one engine event per parked request, the differential oracle).
        Handle times are bit-identical across modes and to the proc
        loop."""
        now = msg.deliver_time
        busy = self._srv_busy[m]
        if self._lane:
            if now >= busy:
                self.server_msgs_inline += 1
                self._handle_server_msg(m, msg, now)
            else:
                self.server_msgs_drained += 1
                self._handle_server_msg(m, msg, busy)
            return
        if now >= busy and not self._srv_queue[m]:
            self.server_msgs_inline += 1
            self._handle_server_msg(m, msg, now)
        else:
            self._srv_queue[m].append(msg)
            if not self._srv_drain_pending[m]:
                self._srv_drain_pending[m] = True
                self.engine._schedule(busy, self._drain_server, m)

    def _drain_server(self, m: int) -> None:
        self._srv_drain_pending[m] = False
        self.server_msgs_drained += 1
        self._handle_server_msg(m, self._srv_queue[m].popleft(), self.engine.now)
        if self._srv_queue[m]:
            self._srv_drain_pending[m] = True
            self.engine._schedule(self._srv_busy[m], self._drain_server, m)

    def _handle_server_msg(self, m: int, msg: Message, now: float) -> float:
        server = self.servers[m]
        causal = self.causal
        actor = self._srv_names[m]
        self._srv_now[m] = now
        payload = msg.payload
        # ``tip`` tracks the request's causal frontier through the
        # server: delivery rx -> backlog wait -> apply/DPR wait.
        tip = msg.cause_id
        if causal is not None and now > msg.deliver_time:
            tip = causal.record(
                tip, actor, "server_queue", msg.deliver_time, now,
                shard=m, tag=msg.tag,
            )
        dprs_before = server.metrics.dprs
        cls = payload.__class__
        if cls is _PushMsg:
            self._current_push_worker = payload.worker
            server.handle_push(payload.worker, payload.progress, grad=payload.shard)
            self._current_push_worker = -1
        elif cls is _PullMsg:
            server.handle_pull(
                payload.worker,
                payload.progress,
                # Causal tracing threads the request's span id through the
                # responder; with tracing off the prebound per-server
                # responder avoids one closure per pull.
                respond=self._responders[m]
                if causal is None
                else lambda reply, j=m, cid=tip: self._send_reply(j, reply, cid),
            )
        else:
            raise TypeError(f"server {m}: unexpected message payload {payload!r}")
        # Charge server processing time: fixed per request plus per
        # DPR event this request caused (buffer/re-check bookkeeping).
        # The busy window serializes the server; later arrivals wait
        # for it to close before they are handled.
        cost = self.cfg.server_op_overhead_s
        cost += (server.metrics.dprs - dprs_before) * self.cfg.dpr_overhead_s
        end = now + cost
        self._srv_busy[m] = end
        if cost > 0 and self.obs.enabled:
            # Server-side apply spans are an observability feature;
            # the plain timing path skips the per-request recording.
            self.trace.record_span(actor, SpanKind.SERVER_APPLY, now, end)
            if causal is not None:
                causal.record(
                    tip, actor, "server_apply", now, end,
                    shard=m, tag=msg.tag,
                )
        return cost

    def _send_reply(self, server: int, reply: PullReply, cause: int = -1) -> None:
        causal = self.causal
        if causal is not None and reply.waited > 0:
            # The pull sat in the DPR buffer from enqueue until this very
            # instant; the release happens inside the straggler's push, so
            # ``_current_push_worker`` names who to blame for the wait.
            now = self._srv_now[server]
            cause = causal.record(
                cause, f"server{server}", "server_queue", now - reply.waited, now,
                worker=reply.worker, iteration=reply.progress, shard=server,
                tag="dpr", blocked_on=self._current_push_worker,
            )
        self.net.send(
            self._srv_eps[server],
            self._wkr_eps[reply.worker],
            self._shard_bytes[server],
            payload=_ReplyMsg(server, reply),
            tag="reply",
            cause=cause,
            # Workers consume replies via this subscription, never the
            # inbox (the waiter event also keeps the worker-resume seq
            # allocation where the golden schedules expect it; an inline
            # sink moves it and reorders same-instant ties).  Skipping
            # the inbox append keeps 10k-worker runs from pinning every
            # reply Message (and its COW snapshot) alive in an unread
            # queue.
            deliver_to_inbox=False,
            # Replies issued from a cascaded lane handle must serialize
            # at the virtual handle time, not the (earlier) engine clock.
            at=self._srv_now[server],
            # Inline delivery callback: skips the Signal allocation and
            # the subscriber resume event per reply (the gather happens
            # inside the delivery event itself).
            on_deliver=self._on_reply_delivered,
        )

    def _on_reply_delivered(self, msg: Message) -> None:
        payload: _ReplyMsg = msg.payload
        reply = payload.reply
        pending = self._pending[(reply.worker, reply.progress)]
        if pending.flat is not None and reply.params is not None:
            self.layout.gather_into(pending.flat, payload.server, reply.params)
        pending.max_missing = max(pending.max_missing, reply.missing)
        pending.last_cause = msg.cause_id
        pending.remaining -= 1
        if pending.remaining == 0:
            del self._pending[(reply.worker, reply.progress)]
            pending.signal.fire(pending)

    # -- worker side ---------------------------------------------------------------

    def _worker_proc(
        self,
        w: int,
        start_iter: int = 0,
        presampled: Optional[Dict[int, float]] = None,
    ):
        """One worker's event-path life.  ``start_iter``/``presampled``
        re-materialize a worker mid-run after a partial round collapse:
        the process resumes at iteration ``start_iter`` (spawned with
        ``start_at=`` its analytic clock) and uses the compute durations
        the collapse driver already drew from its RNG stream, so the RNG
        state and every downstream timestamp match the pure event path
        bit for bit."""
        cfg = self.cfg
        engine = self.engine
        send = self.net.send
        node = self._wkr_eps[w]
        srv_ids = self._srv_eps
        n_servers = cfg.cluster.n_servers
        push_bytes = self._shard_bytes  # exact when wire_factor == 1.0
        request_bytes = cfg.request_bytes
        header_bytes = cfg.header_bytes
        record_span = self.trace.record_span
        compute_rng = self._compute_rngs[w]
        sample = self.compute_model.sample
        name = f"worker{w}"
        base = cfg.resolved_base_compute(cfg.cluster.workers[w].flops)
        params = cfg.task.init_params.copy() if cfg.task is not None else None
        causal = self.causal
        sketch = self._pull_sketches[w] if self._pull_sketches is not None else None
        for i in range(start_iter, cfg.max_iter):
            pre = None if presampled is None else presampled.get(i)
            dur = sample(w, i, base, compute_rng) if pre is None else pre
            t0 = engine.now
            yield dur  # zero-allocation spelling of Timeout(dur)
            record_span(name, SpanKind.COMPUTE, t0, engine.now, i)
            cause = -1
            if causal is not None:
                cause = causal.record(
                    -1, name, "compute", t0, engine.now, worker=w, iteration=i
                )
            wire_factor = 1.0
            if cfg.task is not None:
                update = cfg.task.step_fn(
                    StepContext(worker=w, iteration=i, params=params, rng=self._step_rngs[w])
                )
                filtered = self._filters[w].apply(update, params, i)
                wire_factor = filtered.wire_bytes_factor
                shards = self.layout.scatter(filtered.update)
            else:
                shards = [None] * n_servers
            # sPush to every shard server (async — Algorithm 1 line 4).
            # Neither pushes nor pulls subscribe to the delivery signal,
            # so both ride the signal-free send path (notify=False).
            t_sync = engine.now
            for m in range(n_servers):
                send(
                    node,
                    srv_ids[m],
                    push_bytes[m]
                    if wire_factor == 1.0
                    else max(header_bytes, int(self._payload_bytes(m) * wire_factor)),
                    payload=_PushMsg(w, i, shards[m]),
                    tag="push",
                    cause=cause,
                    notify=False,
                )
            # sPull from every shard server, then wait (lines 5-6).  The
            # push/pull messages share the worker's FIFO TX lane, so each
            # server sees this iteration's push before its pull.
            pending = _PendingPull(
                engine,
                n_servers,
                self.spec.total_elements if cfg.task is not None else None,
            )
            self._pending[(w, i)] = pending
            for m in range(n_servers):
                send(
                    node,
                    srv_ids[m],
                    request_bytes,
                    payload=_PullMsg(w, i),
                    tag="pull",
                    cause=cause,
                    notify=False,
                )
            yield pending.signal
            record_span(name, SpanKind.PULL, t_sync, engine.now, i)
            if causal is not None:
                # Terminal span of the iteration's DAG: parented on the
                # last reply to land (the cause that released the wait).
                parent = pending.last_cause if pending.last_cause >= 0 else cause
                causal.record(
                    parent, name, "sync_wait", t_sync, engine.now,
                    worker=w, iteration=i,
                )
            if sketch is not None:
                sketch.observe(engine.now - t_sync)
            if params is not None:
                params = pending.flat
            if w == 0 and cfg.task is not None and cfg.eval_every > 0:
                if (i + 1) % cfg.eval_every == 0 or i + 1 == cfg.max_iter:
                    value = cfg.task.eval_fn(self._global_params())
                    self.eval_by_time.append(engine.now, value)
                    self.eval_by_iteration.append(i + 1, value)
        self._finish_times[w] = engine.now

    def _global_params(self) -> np.ndarray:
        # One vectorized apply pass across shards before gathering (falls
        # back to per-shard flushes for odd shapes; bit-identical).
        flush_applies_across(self.servers)
        return self.layout.gather([s.params for s in self.servers])

    # -- closed-form round fast-forward ------------------------------------------------

    def _collapse_eligible(self) -> bool:
        """True when whole protocol rounds can be committed analytically.

        The closed form models exactly one behavior: timing-only workers
        that push then pull every shard each iteration over analytic
        drain lanes, with every shard's sync condition provably quiet
        (every pull immediate, one frontier advance per round, no DPRs,
        no PSSP coin flips).  Anything outside that — real gradients,
        quorums below n, BSP's s=0 soft barrier, DSPS's self-mutating
        staleness, event-mode drains, DPOR choice/delay hooks, causal
        tracing, span capture without obs — keeps the per-event path,
        which stays bit-identical by construction.
        """
        cfg = self.cfg
        if type(self) is not FluentPSSimRunner:
            # Baseline runners (PS-Lite's scheduler-gated workers,
            # SpecSync) subclass this runner with their own protocols;
            # the cohort closed form models only the stock one.
            return False
        if not self.engine.collapse_enabled:
            return False
        if not self._lane or not self.net.analytic:
            return False
        if cfg.task is not None:
            return False
        if self.causal is not None or self.engine._choice_hook is not None:
            return False
        if self.net.delay_hook is not None:
            return False
        if self.trace.keep_spans and not self.obs.enabled:
            # The vector commit folds spans into totals; a kept span
            # *list* can only be reproduced by the obs handler replay.
            return False
        n = cfg.cluster.n_workers
        for s in self.servers:
            pc = s.pull_con
            # DSPS adapts ``s`` inside ``__call__`` — never provably quiet.
            if type(pc) is DSPSPull or not isinstance(pc, (SSPPull, PSSPPull)):
                return False
            if not pc.s > 0:  # BSP (s=0) blocks pulls until the frontier moves
                return False
            if s.push_con.quorum(n) != n:
                return False
            if s.callbacks or s.v_train != 0:
                return False
            if any(p != -1 for p in s.worker_progress):
                return False
        return True

    def _collapse_rounds(self) -> bool:
        """Advance whole protocol rounds in closed form.

        One vectorized pass per round over the cohort state table
        (per-worker clocks, NIC lane cursors, busy accumulators, resume
        ranks) reproduces the exact float recurrences the event path
        would execute: resume order, worker TX cascades, per-server RX
        claim/serve cascades, reply TX/RX cascades, and the next round's
        resume ranks.  A round commits only when the next round is
        provably isolated (its earliest send lands strictly after this
        round's last reply), so serve orders and staleness splits cannot
        shift; the first round that fails the check — a straggler draw
        overlapping the tail — commits *nothing* and de-vectorizes the
        cohort back to per-worker event processes at their analytic
        clocks with their compute durations pre-drawn, keeping RNG
        streams and all downstream timestamps aligned with the pure
        event path bit for bit.

        Returns True when every iteration committed analytically (the
        event heap stays empty and ``engine.now`` is set directly),
        False after de-vectorizing.
        """
        cfg = self.cfg
        net = self.net
        eng = self.engine
        record_span = self.trace.record_span
        observed = self.obs.enabled
        n = cfg.cluster.n_workers
        M = cfg.cluster.n_servers
        K = 2 * M
        latency = net.latency_s
        cost = cfg.server_op_overhead_s
        hooks = net._delivery_hooks
        fused = not hooks
        sample = self.compute_model.sample
        rngs = self._compute_rngs
        push_bytes = self._shard_bytes
        req_bytes = cfg.request_bytes
        base_l = [
            cfg.resolved_base_compute(node.flops) for node in cfg.cluster.workers
        ]
        names = [f"worker{w}" for w in range(n)]

        # Serialization holds are pure functions of (NIC, size): one
        # vector per distinct NIC spec covers the whole cohort.
        sizes = list(push_bytes) + [req_bytes]
        nic_memo: Dict[Tuple[float, float], np.ndarray] = {}
        wh = np.empty((n, M + 1))
        for w, ep in enumerate(self._wkr_eps):
            nic_key = (ep.nic.bandwidth_Bps, ep.nic.overhead_s)
            hv = nic_memo.get(nic_key)
            if hv is None:
                hv = nic_memo[nic_key] = np.array(
                    [ep.nic.serialize_time(s) for s in sizes]
                )
            wh[w] = hv
        wtx_holds = np.empty((n, K))
        wtx_holds[:, :M] = wh[:, :M]
        wtx_holds[:, M:] = wh[:, M:]  # pull-request hold, broadcast M wide
        wrx_holds = np.ascontiguousarray(wh[:, :M])  # replies carry shard bytes
        s_push_hold = [
            self._srv_eps[m].nic.serialize_time(push_bytes[m]) for m in range(M)
        ]
        s_pull_hold = [
            self._srv_eps[m].nic.serialize_time(req_bytes) for m in range(M)
        ]
        s_reply_hold = s_push_hold  # same NIC, same payload size

        # Cohort state table: endpoint cursors and busy accumulators,
        # loaded once and written back only for committed rounds.
        wtx_free = np.array([ep.tx_free_at for ep in self._wkr_eps])
        wrx_free = np.array([ep.rx_free_at for ep in self._wkr_eps])
        wtx_busy = np.array([ep.tx_busy_s for ep in self._wkr_eps])
        wrx_busy = np.array([ep.rx_busy_s for ep in self._wkr_eps])
        stx_free = [ep.tx_free_at for ep in self._srv_eps]
        srx_free = [ep.rx_free_at for ep in self._srv_eps]
        stx_busy = [ep.tx_busy_s for ep in self._srv_eps]
        srx_busy = [ep.rx_busy_s for ep in self._srv_eps]
        sbusy = list(self._srv_busy)
        snow = list(self._srv_now)
        rounds = 0
        inline_total = 0
        drained_total = 0
        # Event census per worker per round: 2 resume events, 2M request
        # TX completions, M reply TX completions, M reply deliveries —
        # plus 2M request deliveries when they do not fuse.
        saved_per_round = n * (2 + (4 if fused else 6) * M)
        sum_push = sum(push_bytes)

        def _flush() -> None:
            # Write the committed-round cursor/counter state back to the
            # live endpoints, network totals, and dispatch counters.
            # Must run before any de-vectorized worker spawns so their
            # sends observe the post-collapse cursors.
            for w, ep in enumerate(self._wkr_eps):
                ep.tx_free_at = float(wtx_free[w])
                ep.rx_free_at = float(wrx_free[w])
                ep.tx_busy_s = float(wtx_busy[w])
                ep.rx_busy_s = float(wrx_busy[w])
                ep.bytes_sent += rounds * (sum_push + M * req_bytes)
                ep.messages_sent += rounds * K
                ep.bytes_received += rounds * sum_push
                ep.messages_received += rounds * M
            for m, ep in enumerate(self._srv_eps):
                ep.tx_free_at = stx_free[m]
                ep.rx_free_at = srx_free[m]
                ep.tx_busy_s = stx_busy[m]
                ep.rx_busy_s = srx_busy[m]
                ep.bytes_sent += rounds * n * push_bytes[m]
                ep.messages_sent += rounds * n
                ep.bytes_received += rounds * n * (push_bytes[m] + req_bytes)
                ep.messages_received += rounds * 2 * n
                self._srv_busy[m] = sbusy[m]
                self._srv_now[m] = snow[m]
            nmsg = rounds * 3 * M * n
            net.total_messages += nmsg
            net.total_bytes += rounds * n * (2 * sum_push + M * req_bytes)
            net.fast_path_transfers += nmsg
            net._next_msg_id += nmsg
            if fused:
                net.fused_deliveries += rounds * K * n
            self.server_msgs_inline += inline_total
            self.server_msgs_drained += drained_total

        r = 0
        c = np.zeros(n)
        rank = np.arange(n)
        dur_l = [sample(w, 0, base_l[w], rngs[w]) for w in range(n)]
        arange_n = np.arange(n)
        cost2n = np.full(2 * n, cost)
        while True:
            # -- resume order and the worker TX cascade -------------------
            e = c + np.asarray(dur_l)
            order_w = np.lexsort((rank, e))
            wrank = np.empty(n, dtype=np.int64)
            wrank[order_w] = arange_n
            cur = np.maximum(wtx_free, e)
            T = np.empty((n, K))
            for k in range(K):
                cur = cur + wtx_holds[:, k]
                T[:, k] = cur
            new_wtx_free = cur

            # -- per-server request claim, RX lane, serve cascade ---------
            # RX cursors are claimed at TX-completion events, so per-server
            # claim order is the global TX order (tx_end, send seq)
            # restricted to that server — in both fused and unfused
            # regimes (unfused delivery order is (rx_end, tx rank), whose
            # per-server restriction is the same claim order).
            pull_serve = np.empty((n, M))
            pull_rxend = np.empty((n, M))
            x_early = [0] * M
            new_srx_free = [0.0] * M
            new_srx_busy = [0.0] * M
            new_sbusy = [0.0] * M
            new_snow = [0.0] * M
            inline_round = 0
            srv_claims: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
            for m in range(M):
                t2 = np.concatenate((T[:, m], T[:, M + m]))
                k2 = np.concatenate((wrank * K + m, wrank * K + M + m))
                o = np.lexsort((k2, t2))
                at = t2[o] + latency
                is_pull = o >= n
                h2 = np.where(is_pull, s_pull_hold[m], s_push_hold[m])
                rx_ends, new_srx_free[m] = _seq_cascade(at, h2, srx_free[m])
                new_srx_busy[m] = float(
                    np.add.accumulate(np.concatenate(((srx_busy[m],), h2)))[-1]
                )
                busy_ends, new_sbusy[m] = _seq_cascade(rx_ends, cost2n, sbusy[m])
                busy_prev = np.empty(2 * n)
                busy_prev[0] = sbusy[m]
                busy_prev[1:] = busy_ends[:-1]
                serve = np.maximum(busy_prev, rx_ends)
                new_snow[m] = float(serve[-1])
                inline_round += int(np.count_nonzero(rx_ends >= busy_prev))
                # Pulls served before this shard's last push see the
                # pre-advance frontier: one missing iteration.
                last_push = int(np.nonzero(~is_pull)[0][-1])
                x_early[m] = int(np.count_nonzero(is_pull[:last_push]))
                pw = o[is_pull] - n
                pull_serve[pw, m] = serve[is_pull]
                pull_rxend[pw, m] = rx_ends[is_pull]
                srv_claims.append((o, rx_ends, serve))

            # -- global reply send seq = global pull handle order ---------
            keyp = wrank[:, None] * K + (np.arange(M) + M)[None, :]
            go = np.lexsort((keyp.ravel(), T[:, M:].ravel()))
            ptx_rank = np.empty(n * M, dtype=np.int64)
            ptx_rank[go] = np.arange(n * M)
            if fused:
                reply_rank = ptx_rank.reshape(n, M)
            else:
                go2 = np.lexsort((ptx_rank, pull_rxend.ravel()))
                rr = np.empty(n * M, dtype=np.int64)
                rr[go2] = np.arange(n * M)
                reply_rank = rr.reshape(n, M)

            # -- per-server reply TX cascade (send order = claim order) ---
            rtx = np.empty((n, M))
            new_stx_free = [0.0] * M
            new_stx_busy = [0.0] * M
            for m in range(M):
                o, _rx, serve = srv_claims[m]
                sel = o >= n
                holds_m = np.full(n, s_reply_hold[m])
                ends, new_stx_free[m] = _seq_cascade(
                    serve[sel], holds_m, stx_free[m]
                )
                new_stx_busy[m] = float(
                    np.add.accumulate(
                        np.concatenate(((stx_busy[m],), holds_m))
                    )[-1]
                )
                rtx[o[sel] - n, m] = ends

            # -- per-worker reply RX claim order and cascade --------------
            # A worker's RX cursor is claimed at reply TX completions:
            # order by (reply tx_end, reply send seq), stable two-pass.
            o1 = np.argsort(reply_rank, axis=1, kind="stable")
            rtx_s = np.take_along_axis(rtx, o1, axis=1)
            o2 = np.argsort(rtx_s, axis=1, kind="stable")
            perm = np.take_along_axis(o1, o2, axis=1)
            rtx_s = np.take_along_axis(rtx_s, o2, axis=1)
            rr_s = np.take_along_axis(reply_rank, perm, axis=1)
            hold_s = np.take_along_axis(wrx_holds, perm, axis=1)
            rrx = np.empty((n, M))
            cur = wrx_free
            new_wrx_busy = wrx_busy
            for j in range(M):
                cur = np.maximum(cur, rtx_s[:, j] + latency) + hold_s[:, j]
                rrx[:, j] = cur
                new_wrx_busy = new_wrx_busy + hold_s[:, j]
            f = cur
            # The sync wait releases inside the last reply's delivery
            # event; resume seqs are allocated there, so next round's
            # resume rank is this fire order.
            fire_order = np.lexsort((rr_s[:, -1], rtx_s[:, -1], f))

            # -- inter-round isolation check ------------------------------
            last_round = r + 1 >= cfg.max_iter
            dur_next: List[float] = []
            if not last_round:
                dur_next = [
                    sample(w, r + 1, base_l[w], rngs[w]) for w in range(n)
                ]
                if not float(np.min(f + np.asarray(dur_next))) > float(np.max(f)):
                    # Round r+1's earliest send would overlap round r's
                    # tail (serve orders and reply times could shift), so
                    # nothing about round r is committed: the cohort
                    # de-vectorizes here, durations pre-drawn so the RNG
                    # streams stay aligned with the pure event path.
                    _flush()
                    for pos in np.argsort(rank, kind="stable"):
                        w = int(pos)
                        eng.spawn(
                            self._worker_proc(
                                w, r, {r: dur_l[w], r + 1: dur_next[w]}
                            ),
                            name=names[w],
                            elidable=True,
                            start_at=float(c[w]),
                        )
                    return False

            # -- commit round r -------------------------------------------
            if observed:
                self._observed_round_commit(
                    r, c, e, f, order_w, fire_order, T, wrank, pull_rxend,
                    srv_claims, rtx_s, rr_s, rrx, perm, pull_serve, names,
                )
            else:
                for m in range(M):
                    self.servers[m].handle_quiet_round(r, x_early[m])
                if hooks:
                    self._emit_collapsed_hooks(
                        r, e, T, wrank, pull_rxend, srv_claims, rtx_s, rr_s,
                        rrx, perm, pull_serve,
                    )
                for idx in order_w:
                    w = int(idx)
                    record_span(
                        names[w], SpanKind.COMPUTE, float(c[w]), float(e[w]), r
                    )
                for idx in fire_order:
                    w = int(idx)
                    record_span(
                        names[w], SpanKind.PULL, float(e[w]), float(f[w]), r
                    )
            wtx_free = new_wtx_free
            wrx_free = f
            wrx_busy = new_wrx_busy
            for k in range(K):
                wtx_busy = wtx_busy + wtx_holds[:, k]
            srx_free = new_srx_free
            srx_busy = new_srx_busy
            stx_free = new_stx_free
            stx_busy = new_stx_busy
            sbusy = new_sbusy
            snow = new_snow
            inline_total += inline_round
            drained_total += 2 * n * M - inline_round
            # The initial spawn-step wave is only truly saved when the
            # whole run collapses — a de-vectorization re-spawns one step
            # event per worker, cancelling the round-0 saving.
            eng.credit_collapsed_round(saved_per_round + (n if last_round else 0))
            rounds += 1
            if last_round:
                _flush()
                eng.now = float(np.max(f))
                self._finish_times = [float(x) for x in f]
                return True
            r += 1
            c = f
            rank = np.empty(n, dtype=np.int64)
            rank[fire_order] = arange_n
            dur_l = dur_next

    def _observed_round_commit(
        self, r, c, e, f, order_w, fire_order, T, wrank, pull_rxend,
        srv_claims, rtx_s, rr_s, rrx, perm, pull_serve, names,
    ) -> None:
        """Replay one certified-quiet round through the real protocol
        handlers so the S001–S016 instant stream is byte-identical to the
        event path: COMPUTE spans in resume order, pushes/pulls via
        ``handle_push``/``handle_pull`` in global handle order (TX order
        when request deliveries fuse, delivery order otherwise) with the
        per-shard virtual clock set to each request's serve time, then
        delivery-hook synthesis, then PULL spans and latency-sketch
        observations in fire order.  Only the global span-*list* order
        differs from the event path (per-actor subsequences are
        identical); every protocol instant carries the same name, time,
        actor, and args in the same order."""
        cfg = self.cfg
        n = cfg.cluster.n_workers
        M = cfg.cluster.n_servers
        K = 2 * M
        cost = cfg.server_op_overhead_s
        record_span = self.trace.record_span
        servers = self.servers
        srv_names = self._srv_names
        hooks = self.net._delivery_hooks
        for idx in order_w:
            w = int(idx)
            record_span(names[w], SpanKind.COMPUTE, float(c[w]), float(e[w]), r)
        serve_flat = np.empty(n * K)
        for m in range(M):
            o, _rx, serve = srv_claims[m]
            sel = o >= n
            wkr = np.where(sel, o - n, o)
            col = np.where(sel, M + m, m)
            serve_flat[wkr * K + col] = serve
        keyflat = (wrank[:, None] * K + np.arange(K)[None, :]).ravel()
        if not hooks:
            gro = np.lexsort((keyflat, T.ravel()))
        else:
            txrank = np.empty(n * K, dtype=np.int64)
            txrank[np.lexsort((keyflat, T.ravel()))] = np.arange(n * K)
            rx_flat = np.empty(n * K)
            for m in range(M):
                o, rx_ends, _serve = srv_claims[m]
                sel = o >= n
                wkr = np.where(sel, o - n, o)
                col = np.where(sel, M + m, m)
                rx_flat[wkr * K + col] = rx_ends
            gro = np.lexsort((txrank, rx_flat))
        for idx in gro:
            i = int(idx)
            w, k = divmod(i, K)
            pull = k >= M
            m = k - M if pull else k
            st = float(serve_flat[i])
            self._srv_now[m] = st
            server = servers[m]
            dprs0 = server.metrics.dprs
            if pull:
                server.handle_pull(w, r, respond=_discard_reply)
            else:
                server.handle_push(w, r, grad=None)
            if server.metrics.dprs != dprs0:
                raise SimulationError(
                    f"collapsed round {r}: shard {m} buffered a DPR in a "
                    "round certified quiet"
                )
            end = st + cost
            self._srv_busy[m] = end
            if cost > 0:
                record_span(srv_names[m], SpanKind.SERVER_APPLY, st, end)
        if hooks:
            self._emit_collapsed_hooks(
                r, e, T, wrank, pull_rxend, srv_claims, rtx_s, rr_s, rrx,
                perm, pull_serve,
            )
        sketches = self._pull_sketches
        for idx in fire_order:
            w = int(idx)
            record_span(names[w], SpanKind.PULL, float(e[w]), float(f[w]), r)
            if sketches is not None:
                sketches[w].observe(float(f[w]) - float(e[w]))

    def _emit_collapsed_hooks(
        self, r, e, T, wrank, pull_rxend, srv_claims, rtx_s, rr_s, rrx,
        perm, pull_serve,
    ) -> None:
        """Feed delivery hooks one collapsed round's wire traffic.

        Hooks observe one synthesized :class:`Message` per transfer with
        the exact (src, dst, size, tag, send_time, deliver_time) the
        event path produces.  Requests are emitted in delivery order,
        then replies in delivery order; cross-class interleaving, msg/
        cause ids (-1 here), and reply payloads (None here) are not
        reproduced — trace comparisons sort on the stable wire fields
        (see tests/test_round_collapse.py)."""
        cfg = self.cfg
        n = cfg.cluster.n_workers
        M = cfg.cluster.n_servers
        K = 2 * M
        hooks = self.net._delivery_hooks
        push_bytes = self._shard_bytes
        req_bytes = cfg.request_bytes
        wkr_ids = self._wkr_node_ids
        srv_ids = self._srv_node_ids
        keyflat = (wrank[:, None] * K + np.arange(K)[None, :]).ravel()
        txrank = np.empty(n * K, dtype=np.int64)
        txrank[np.lexsort((keyflat, T.ravel()))] = np.arange(n * K)
        rx_flat = np.empty(n * K)
        for m in range(M):
            o, rx_ends, _serve = srv_claims[m]
            sel = o >= n
            wkr = np.where(sel, o - n, o)
            col = np.where(sel, M + m, m)
            rx_flat[wkr * K + col] = rx_ends
        for idx in np.lexsort((txrank, rx_flat)):
            i = int(idx)
            w, k = divmod(i, K)
            pull = k >= M
            m = k - M if pull else k
            msg = Message(
                src=wkr_ids[w],
                dst=srv_ids[m],
                size_bytes=req_bytes if pull else push_bytes[m],
                tag="pull" if pull else "push",
                payload=_PullMsg(w, r) if pull else _PushMsg(w, r, None),
                send_time=float(e[w]),
                deliver_time=float(rx_flat[i]),
            )
            for hook in hooks:
                hook(msg)
        ps_sorted = np.take_along_axis(pull_serve, perm, axis=1).ravel()
        perm_flat = perm.ravel()
        rrx_flat = rrx.ravel()
        for idx in np.lexsort((rr_s.ravel(), rtx_s.ravel(), rrx_flat)):
            i = int(idx)
            w = i // M
            m = int(perm_flat[i])
            msg = Message(
                src=srv_ids[m],
                dst=wkr_ids[w],
                size_bytes=push_bytes[m],
                tag="reply",
                send_time=float(ps_sorted[i]),
                deliver_time=float(rrx_flat[i]),
            )
            for hook in hooks:
                hook(msg)

    # -- run ---------------------------------------------------------------------------

    def run(self) -> SimRunResult:
        """Execute the co-simulation to completion and aggregate results."""
        if not self._direct:
            for m in range(self.cfg.cluster.n_servers):
                self.engine.spawn(self._server_proc(m), name=f"server{m}")
        else:
            for m in range(self.cfg.cluster.n_servers):
                ep = self.net.endpoint(self.cfg.cluster.server_id(m))
                ep.sink = partial(self._dispatch_server, m)
            if self._lane:
                # Analytic drain lanes time themselves off
                # ``msg.deliver_time``, so signal-free request deliveries
                # can fold into their TX-completion events.
                self.net.fuse_delivery = True
        # Closed-form round fast-forward: when every shard is provably
        # quiet for whole rounds, the collapse driver commits them
        # analytically and only spawns worker processes if (and from the
        # round where) it de-vectorizes.  Otherwise the classic path:
        # worker compute phases are the homogeneous event population at
        # scale; marking them elidable lets the engine batch-serve
        # protocol-quiet same-instant runs (BSP barrier releases, the t=0
        # start wave) without changing served order.
        collapsed_all = False
        if self._collapse_eligible():
            collapsed_all = self._collapse_rounds()
        else:
            for w in range(self.cfg.cluster.n_workers):
                self.engine.spawn(self._worker_proc(w), name=f"worker{w}", elidable=True)
        snapshotter = None
        if self.obs.enabled:
            snapshotter = ServerSnapshotter(
                self.obs.registry,
                self.servers,
                network=self.net,
                nodes=[self.cfg.cluster.server_id(j) for j in range(self.cfg.cluster.n_servers)],
                engine=self.engine,
                dispatch=self,
            )
            if not collapsed_all:
                # A fully collapsed run has no events to scrape between;
                # the finalize() below still records the end-state sample
                # (engine counters included).
                interval = self.cfg.snapshot_interval_s
                if interval is None:
                    interval = (
                        self.cfg.resolved_base_compute(self.cfg.cluster.workers[0].flops) / 2.0
                    )
                snapshotter.install(self.engine, interval)
        self.engine.run()
        if snapshotter is not None:
            # Final snapshot so the last partial period is never dropped
            # (a no-op when the periodic scrape already landed at end time).
            snapshotter.finalize(self.engine.now)
        if self._pending:
            raise RuntimeError(
                f"simulation drained with {len(self._pending)} unanswered pulls "
                "(synchronization deadlock)"
            )
        if self._capture is not None:
            self._capture.complete = True
        worker_names = [f"worker{w}" for w in range(self.cfg.cluster.n_workers)]
        total_compute = self.trace.compute_time(worker_names)
        total_wall = sum(self._finish_times)
        metrics = SyncMetrics.merge_all(s.metrics for s in self.servers)
        if self.obs.enabled:
            metrics.publish(self.obs.registry)
        return SimRunResult(
            duration=max(self._finish_times),
            iterations=self.cfg.max_iter,
            n_workers=self.cfg.cluster.n_workers,
            metrics=metrics,
            trace=self.trace,
            total_compute_time=total_compute,
            total_comm_time=max(0.0, total_wall - total_compute),
            bytes_on_wire=self.net.total_bytes,
            messages_on_wire=self.net.total_messages,
            final_params=self._global_params() if self.cfg.task is not None else None,
            eval_by_time=self.eval_by_time,
            eval_by_iteration=self.eval_by_iteration,
            worker_finish_times=list(self._finish_times),
        )


def run_fluentps(config: SimConfig) -> SimRunResult:
    """One-call convenience wrapper."""
    return FluentPSSimRunner(config).run()
