"""Co-simulation runner: FluentPS protocol × network model × real gradients.

This binds the three substrates together (DESIGN.md's centerpiece):

- worker processes compute for a sampled duration (straggler model), then
  sPush their update shards and sPull the next parameters over the
  simulated network;
- each :class:`~repro.core.server.ShardServer` applies real NumPy updates
  and runs its own pull/push conditions — **overlap synchronization**
  falls out of the architecture: a shard answers its pulls the moment its
  own condition allows, independent of the other M−1 shards (Figure 4b);
- when a :class:`~repro.ml.training.TrainingTask` is attached, gradient
  math is real and accuracy-vs-time curves come out; without one the run
  is timing-only against a :class:`~repro.ml.models_zoo.Workload` spec.

``wire_scale`` lets a small trainable proxy model carry the *paper
model's* wire footprint: message sizes are multiplied so the network sees
ResNet-56-sized transfers while the gradients stay cheap to compute.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.driver import StepContext
from repro.core.filters import NoFilter, PushFilter
from repro.core.keyspace import ElasticSlicer, ModelSpec, Slicer
from repro.core.layout import ShardLayout
from repro.core.metrics import SyncMetrics
from repro.core.models import SyncModel
from repro.core.server import ExecutionMode, PullReply, ShardServer
from repro.ml.models_zoo import Workload
from repro.ml.training import TrainingTask
from repro.obs import Observability, current_observability
from repro.obs.snapshot import ServerSnapshotter
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Engine, Timeout
from repro.sim.network import Message, Network
from repro.sim.stragglers import ComputeModel, LogNormalCompute
from repro.sim.trace import SpanKind, TraceRecorder
from repro.utils.records import SeriesRecord
from repro.utils.rng import derive_rng


@dataclass
class SimConfig:
    """Everything one co-simulated training run needs."""

    cluster: ClusterSpec
    max_iter: int
    sync: Union[SyncModel, Sequence[SyncModel]]
    execution: ExecutionMode = ExecutionMode.LAZY
    slicer: Optional[Slicer] = None
    compute_model: Optional[ComputeModel] = None
    base_compute_time: Optional[float] = None  # None → derive from workload
    batch_per_worker: int = 128
    task: Optional[TrainingTask] = None
    workload: Optional[Workload] = None
    wire_scale: Optional[float] = None  # None → auto from workload/task sizes
    seed: int = 0
    eval_every: int = 0
    keep_spans: bool = False
    header_bytes: int = 256
    request_bytes: int = 128
    #: Server processing time per handled request (queue pop, dispatch).
    server_op_overhead_s: float = 20e-6
    #: Protocol cost per DPR event: server-side buffering/re-check work
    #: plus the blocked worker's share of the retry round-trip.  Frequent
    #: soft barriers pay this once per re-buffer — the per-event cost
    #: behind lazy execution's 1.2x speedup (Fig 8) and part of PSSP's
    #: time advantage over SSP under the soft barrier (Fig 9/10).
    dpr_overhead_s: float = 500e-6
    #: Optional per-worker push filter (PS-Lite programming filters /
    #: Gaia significance filter): called as ``push_filter_factory()`` once
    #: per worker; shrinks push wire bytes by the filtered fraction.
    push_filter_factory: Optional[Callable[[], "PushFilter"]] = None
    #: Observability sink; None → the ambient :func:`current_observability`.
    obs: Optional[Observability] = None
    #: Snapshot scrape period in sim seconds; None → half a base compute.
    snapshot_interval_s: Optional[float] = None
    #: Engine calendar queue: None → auto (migrate past the pending-count
    #: threshold), False → binary heap only (the differential-testing
    #: slow path), True → same as auto (the calendar still only engages
    #: past the threshold).  See docs/PERFORMANCE.md, "Mesoscale
    #: fast-forward and the calendar queue".
    engine_calendar: Optional[bool] = None
    #: Pending-event count that triggers calendar migration; None → the
    #: engine default.
    engine_calendar_threshold: Optional[int] = None
    #: Server request dispatch.  ``"direct"`` (default) handles each
    #: delivered request inside the delivery event via the endpoint sink:
    #: no inbox round-trip, no per-request resume event — a busy server
    #: parks arrivals and drains them FIFO when its busy window closes.
    #: ``"proc"`` runs the classic one-generator-per-server inbox loop
    #: and is the dispatch differential oracle.  Handle times and
    #: per-server FIFO order are bit-identical between the two; only the
    #: event structure differs.
    server_dispatch: str = "direct"

    def __post_init__(self) -> None:
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if self.server_dispatch not in ("direct", "proc"):
            raise ValueError(
                f"server_dispatch must be 'direct' or 'proc', "
                f"got {self.server_dispatch!r}"
            )
        if self.task is None and self.workload is None:
            raise ValueError("need a TrainingTask and/or a Workload")
        if self.task is not None and self.task.n_workers != self.cluster.n_workers:
            raise ValueError(
                f"task built for {self.task.n_workers} workers, cluster has "
                f"{self.cluster.n_workers}"
            )

    @property
    def spec(self) -> ModelSpec:
        return self.task.spec if self.task is not None else self.workload.spec

    def resolved_wire_scale(self) -> float:
        if self.wire_scale is not None:
            if self.wire_scale <= 0:
                raise ValueError("wire_scale must be positive")
            return self.wire_scale
        if self.task is not None and self.workload is not None:
            return self.workload.wire_bytes / self.spec.total_bytes
        return 1.0

    def resolved_base_compute(self, node_flops: float) -> float:
        if self.base_compute_time is not None:
            if self.base_compute_time <= 0:
                raise ValueError("base_compute_time must be positive")
            return self.base_compute_time
        if self.workload is not None:
            return self.workload.train_flops_per_sample * self.batch_per_worker / node_flops
        # No workload: a nominal per-iteration second keeps ratios readable.
        return 1.0


@dataclass
class SimRunResult:
    """Outcome of one co-simulated run."""

    duration: float
    iterations: int
    n_workers: int
    metrics: SyncMetrics
    trace: TraceRecorder
    total_compute_time: float
    total_comm_time: float
    bytes_on_wire: int
    messages_on_wire: int
    final_params: Optional[np.ndarray] = None
    eval_by_time: SeriesRecord = field(default_factory=lambda: SeriesRecord("eval"))
    eval_by_iteration: SeriesRecord = field(default_factory=lambda: SeriesRecord("eval"))
    worker_finish_times: List[float] = field(default_factory=list)

    @property
    def mean_compute_time(self) -> float:
        return self.total_compute_time / self.n_workers

    @property
    def mean_comm_time(self) -> float:
        return self.total_comm_time / self.n_workers

    def dprs_per_100_iterations(self) -> float:
        return self.metrics.dprs_per_100_iterations(self.iterations)


@dataclass
class _PushMsg:
    worker: int
    progress: int
    shard: Optional[np.ndarray]


@dataclass
class _PullMsg:
    worker: int
    progress: int


@dataclass
class _ReplyMsg:
    server: int
    reply: PullReply


class _PendingPull:
    __slots__ = ("flat", "remaining", "signal", "max_missing", "last_cause")

    def __init__(self, engine: Engine, n_servers: int, n_elements: Optional[int]):
        self.flat = np.empty(n_elements) if n_elements is not None else None
        self.remaining = n_servers
        self.signal = engine.signal("pull-complete")
        self.max_missing = 0
        #: Causal span id of the last reply to land (-1 when tracing is
        #: off) — the cause that actually released the worker's sync wait.
        self.last_cause = -1


class FluentPSSimRunner:
    """Run one FluentPS training job on the simulated cluster."""

    def __init__(self, config: SimConfig):
        self.cfg = config
        self.engine = Engine(
            calendar=config.engine_calendar,
            calendar_threshold=config.engine_calendar_threshold,
        )
        self.net: Network = config.cluster.make_network(self.engine)
        self.obs = config.obs or current_observability()
        # Observability implies a full span capture for trace export.
        self.trace = TraceRecorder(keep_spans=config.keep_spans or self.obs.enabled)
        self.spec = config.spec
        slicer = config.slicer or ElasticSlicer()
        self.layout = ShardLayout(self.spec, slicer.slice(self.spec, config.cluster.n_servers))
        self.wire_scale = config.resolved_wire_scale()
        self.compute_model = config.compute_model or LogNormalCompute(0.2)

        n, m = config.cluster.n_workers, config.cluster.n_servers
        models = self._normalize_models(config.sync, m)
        training = config.task is not None
        if training:
            shard_vectors = self.layout.scatter(config.task.init_params.astype(np.float64))
        self.servers: List[ShardServer] = [
            ShardServer(
                shard_id=j,
                n_workers=n,
                model=models[j],
                execution=config.execution,
                params=shard_vectors[j] if training else None,
                clock=lambda: self.engine.now,
                rng=derive_rng(config.seed, "server", j),
                obs=self.obs,
            )
            for j in range(m)
        ]
        self._capture = None
        self.causal = None
        self._pull_sketches = None
        #: Worker whose push is currently being applied (drives straggler
        #: blame on DPR releases; only read when causal tracing is on).
        self._current_push_worker = -1
        if self.obs.enabled:
            self.obs.registry.set_clock(lambda: self.engine.now)
            self._capture = self.obs.begin_run(
                f"sim-run{len(self.obs.runs)}-n{n}x{m}", self.trace
            )
            self.causal = self._capture.causal
            self.net.causal = self.causal
            self._pull_sketches = [
                self.obs.registry.sketch(
                    "pull_latency_seconds",
                    "sync-wait seconds per sPull round (mergeable sketch)",
                ).labels(worker=w)
                for w in range(n)
            ]
            self.obs.instants.record(
                "run_config", 0.0, actor="runner",
                runner="sim", n_workers=n, n_servers=m,
                models=[mod.name for mod in models],
                execution=config.execution.value,
            )
        self._pending: Dict[Tuple[int, int], _PendingPull] = {}
        self._filters: List[PushFilter] = [
            config.push_filter_factory() if config.push_filter_factory else NoFilter()
            for _ in range(n)
        ]
        self._compute_rngs = [derive_rng(config.seed, "compute", w) for w in range(n)]
        self._step_rngs = [derive_rng(config.seed, "step", w) for w in range(n)]
        self.eval_by_time = SeriesRecord("eval", x_label="time_s", y_label="metric")
        self.eval_by_iteration = SeriesRecord("eval", x_label="iteration", y_label="metric")
        self._finish_times: List[float] = [0.0] * n
        # Direct-dispatch state (also read by the proc loop): per-server
        # busy-window close time, parked arrivals, and whether a drain
        # event is already on the calendar for that server.
        self._direct = config.server_dispatch == "direct"
        self._srv_names = [f"server{j}" for j in range(m)]
        self._srv_busy = [0.0] * m
        self._srv_queue: List[Deque[Message]] = [deque() for _ in range(m)]
        self._srv_drain_pending = [False] * m
        #: Dispatch counters (perf detail): requests handled inline in
        #: the delivery event vs. parked behind a busy server and drained.
        self.server_msgs_inline = 0
        self.server_msgs_drained = 0

    @staticmethod
    def _normalize_models(
        sync: Union[SyncModel, Sequence[SyncModel]], m: int
    ) -> List[SyncModel]:
        if isinstance(sync, SyncModel):
            return [sync] * m
        models = list(sync)
        if len(models) != m:
            raise ValueError(f"need one sync model per server, got {len(models)} for {m}")
        return models

    # -- sizing ---------------------------------------------------------------

    def _payload_bytes(self, server: int) -> int:
        return int(self.layout.shard_bytes(server) * self.wire_scale) + self.cfg.header_bytes

    # -- server side ----------------------------------------------------------

    def _server_proc(self, m: int):
        """Classic inbox loop (``server_dispatch="proc"``): one generator
        per server, resumed once per request plus once per busy window.
        The dispatch differential oracle — both paths share
        :meth:`_handle_server_msg`, so handle times and per-server FIFO
        order match the direct dispatcher bit-for-bit; only the event
        structure (inbox resume + timeout vs. inline + drain) differs."""
        ep = self.net.endpoint(self.cfg.cluster.server_id(m))
        while True:
            msg: Message = yield ep.inbox.get()
            cost = self._handle_server_msg(m, msg)
            if cost > 0:
                yield Timeout(cost)

    def _dispatch_server(self, m: int, msg: Message) -> None:
        """Endpoint sink (``server_dispatch="direct"``): handle the
        request inside the delivery event while the server is free;
        otherwise park it and drain FIFO when the busy window closes.
        Handle time is ``max(deliver_time, previous handle end)`` either
        way — identical to the proc loop — but the free case costs zero
        extra events and the busy case exactly one drain event."""
        if self.engine.now >= self._srv_busy[m] and not self._srv_queue[m]:
            self.server_msgs_inline += 1
            self._handle_server_msg(m, msg)
        else:
            self._srv_queue[m].append(msg)
            if not self._srv_drain_pending[m]:
                self._srv_drain_pending[m] = True
                self.engine._schedule(self._srv_busy[m], self._drain_server, m)

    def _drain_server(self, m: int) -> None:
        self._srv_drain_pending[m] = False
        self.server_msgs_drained += 1
        self._handle_server_msg(m, self._srv_queue[m].popleft())
        if self._srv_queue[m]:
            self._srv_drain_pending[m] = True
            self.engine._schedule(self._srv_busy[m], self._drain_server, m)

    def _handle_server_msg(self, m: int, msg: Message) -> float:
        server = self.servers[m]
        causal = self.causal
        actor = self._srv_names[m]
        now = self.engine.now
        payload = msg.payload
        # ``tip`` tracks the request's causal frontier through the
        # server: delivery rx -> backlog wait -> apply/DPR wait.
        tip = msg.cause_id
        if causal is not None and now > msg.deliver_time:
            tip = causal.record(
                tip, actor, "server_queue", msg.deliver_time, now,
                shard=m, tag=msg.tag,
            )
        dprs_before = server.metrics.dprs
        if isinstance(payload, _PushMsg):
            self._current_push_worker = payload.worker
            server.handle_push(payload.worker, payload.progress, grad=payload.shard)
            self._current_push_worker = -1
        elif isinstance(payload, _PullMsg):
            server.handle_pull(
                payload.worker,
                payload.progress,
                respond=lambda reply, j=m, cid=tip: self._send_reply(j, reply, cid),
            )
        else:
            raise TypeError(f"server {m}: unexpected message payload {payload!r}")
        # Charge server processing time: fixed per request plus per
        # DPR event this request caused (buffer/re-check bookkeeping).
        # The busy window serializes the server; later arrivals wait
        # for it to close before they are handled.
        cost = self.cfg.server_op_overhead_s
        cost += (server.metrics.dprs - dprs_before) * self.cfg.dpr_overhead_s
        end = now + cost
        self._srv_busy[m] = end
        if cost > 0 and self.obs.enabled:
            # Server-side apply spans are an observability feature;
            # the plain timing path skips the per-request recording.
            self.trace.record_span(actor, SpanKind.SERVER_APPLY, now, end)
            if causal is not None:
                causal.record(
                    tip, actor, "server_apply", now, end,
                    shard=m, tag=msg.tag,
                )
        return cost

    def _send_reply(self, server: int, reply: PullReply, cause: int = -1) -> None:
        causal = self.causal
        if causal is not None and reply.waited > 0:
            # The pull sat in the DPR buffer from enqueue until this very
            # instant; the release happens inside the straggler's push, so
            # ``_current_push_worker`` names who to blame for the wait.
            now = self.engine.now
            cause = causal.record(
                cause, f"server{server}", "server_queue", now - reply.waited, now,
                worker=reply.worker, iteration=reply.progress, shard=server,
                tag="dpr", blocked_on=self._current_push_worker,
            )
        self.net.send(
            self.cfg.cluster.server_id(server),
            self.cfg.cluster.worker_id(reply.worker),
            self._payload_bytes(server),
            payload=_ReplyMsg(server, reply),
            tag="reply",
            cause=cause,
            # Workers consume replies via this subscription, never the
            # inbox (the waiter event also keeps the worker-resume seq
            # allocation where the golden schedules expect it; an inline
            # sink moves it and reorders same-instant ties).  Skipping
            # the inbox append keeps 10k-worker runs from pinning every
            # reply Message (and its COW snapshot) alive in an unread
            # queue.
            deliver_to_inbox=False,
        ).subscribe(self._on_reply_delivered)

    def _on_reply_delivered(self, msg: Message) -> None:
        payload: _ReplyMsg = msg.payload
        reply = payload.reply
        pending = self._pending[(reply.worker, reply.progress)]
        if pending.flat is not None and reply.params is not None:
            self.layout.gather_into(pending.flat, payload.server, reply.params)
        pending.max_missing = max(pending.max_missing, reply.missing)
        pending.last_cause = msg.cause_id
        pending.remaining -= 1
        if pending.remaining == 0:
            del self._pending[(reply.worker, reply.progress)]
            pending.signal.fire(pending)

    # -- worker side ---------------------------------------------------------------

    def _worker_proc(self, w: int):
        cfg = self.cfg
        node = cfg.cluster.worker_id(w)
        name = f"worker{w}"
        base = cfg.resolved_base_compute(cfg.cluster.workers[w].flops)
        params = cfg.task.init_params.copy() if cfg.task is not None else None
        causal = self.causal
        sketch = self._pull_sketches[w] if self._pull_sketches is not None else None
        for i in range(cfg.max_iter):
            dur = self.compute_model.sample(w, i, base, self._compute_rngs[w])
            t0 = self.engine.now
            yield Timeout(dur)
            self.trace.record_span(name, SpanKind.COMPUTE, t0, self.engine.now, i)
            cause = -1
            if causal is not None:
                cause = causal.record(
                    -1, name, "compute", t0, self.engine.now, worker=w, iteration=i
                )
            wire_factor = 1.0
            if cfg.task is not None:
                update = cfg.task.step_fn(
                    StepContext(worker=w, iteration=i, params=params, rng=self._step_rngs[w])
                )
                filtered = self._filters[w].apply(update, params, i)
                wire_factor = filtered.wire_bytes_factor
                shards = self.layout.scatter(filtered.update)
            else:
                shards = [None] * cfg.cluster.n_servers
            # sPush to every shard server (async — Algorithm 1 line 4).
            t_sync = self.engine.now
            for m in range(cfg.cluster.n_servers):
                self.net.send(
                    node,
                    cfg.cluster.server_id(m),
                    max(cfg.header_bytes, int(self._payload_bytes(m) * wire_factor)),
                    payload=_PushMsg(w, i, shards[m]),
                    tag="push",
                    cause=cause,
                )
            # sPull from every shard server, then wait (lines 5-6).  The
            # push/pull messages share the worker's FIFO TX lane, so each
            # server sees this iteration's push before its pull.
            pending = _PendingPull(
                self.engine,
                cfg.cluster.n_servers,
                self.spec.total_elements if cfg.task is not None else None,
            )
            self._pending[(w, i)] = pending
            for m in range(cfg.cluster.n_servers):
                self.net.send(
                    node,
                    cfg.cluster.server_id(m),
                    cfg.request_bytes,
                    payload=_PullMsg(w, i),
                    tag="pull",
                    cause=cause,
                )
            yield pending.signal
            self.trace.record_span(name, SpanKind.PULL, t_sync, self.engine.now, i)
            if causal is not None:
                # Terminal span of the iteration's DAG: parented on the
                # last reply to land (the cause that released the wait).
                parent = pending.last_cause if pending.last_cause >= 0 else cause
                causal.record(
                    parent, name, "sync_wait", t_sync, self.engine.now,
                    worker=w, iteration=i,
                )
            if sketch is not None:
                sketch.observe(self.engine.now - t_sync)
            if params is not None:
                params = pending.flat
            if w == 0 and cfg.task is not None and cfg.eval_every > 0:
                if (i + 1) % cfg.eval_every == 0 or i + 1 == cfg.max_iter:
                    value = cfg.task.eval_fn(self._global_params())
                    self.eval_by_time.append(self.engine.now, value)
                    self.eval_by_iteration.append(i + 1, value)
        self._finish_times[w] = self.engine.now

    def _global_params(self) -> np.ndarray:
        return self.layout.gather([s.params for s in self.servers])

    # -- run ---------------------------------------------------------------------------

    def run(self) -> SimRunResult:
        """Execute the co-simulation to completion and aggregate results."""
        if not self._direct:
            for m in range(self.cfg.cluster.n_servers):
                self.engine.spawn(self._server_proc(m), name=f"server{m}")
        else:
            for m in range(self.cfg.cluster.n_servers):
                ep = self.net.endpoint(self.cfg.cluster.server_id(m))
                ep.sink = partial(self._dispatch_server, m)
        for w in range(self.cfg.cluster.n_workers):
            self.engine.spawn(self._worker_proc(w), name=f"worker{w}")
        snapshotter = None
        if self.obs.enabled:
            snapshotter = ServerSnapshotter(
                self.obs.registry,
                self.servers,
                network=self.net,
                nodes=[self.cfg.cluster.server_id(j) for j in range(self.cfg.cluster.n_servers)],
                engine=self.engine,
            )
            interval = self.cfg.snapshot_interval_s
            if interval is None:
                interval = (
                    self.cfg.resolved_base_compute(self.cfg.cluster.workers[0].flops) / 2.0
                )
            snapshotter.install(self.engine, interval)
        self.engine.run()
        if snapshotter is not None:
            # Final snapshot so the last partial period is never dropped
            # (a no-op when the periodic scrape already landed at end time).
            snapshotter.finalize(self.engine.now)
        if self._pending:
            raise RuntimeError(
                f"simulation drained with {len(self._pending)} unanswered pulls "
                "(synchronization deadlock)"
            )
        if self._capture is not None:
            self._capture.complete = True
        worker_names = [f"worker{w}" for w in range(self.cfg.cluster.n_workers)]
        total_compute = self.trace.compute_time(worker_names)
        total_wall = sum(self._finish_times)
        metrics = SyncMetrics.merge_all(s.metrics for s in self.servers)
        if self.obs.enabled:
            metrics.publish(self.obs.registry)
        return SimRunResult(
            duration=max(self._finish_times),
            iterations=self.cfg.max_iter,
            n_workers=self.cfg.cluster.n_workers,
            metrics=metrics,
            trace=self.trace,
            total_compute_time=total_compute,
            total_comm_time=max(0.0, total_wall - total_compute),
            bytes_on_wire=self.net.total_bytes,
            messages_on_wire=self.net.total_messages,
            final_params=self._global_params() if self.cfg.task is not None else None,
            eval_by_time=self.eval_by_time,
            eval_by_iteration=self.eval_by_iteration,
            worker_finish_times=list(self._finish_times),
        )


def run_fluentps(config: SimConfig) -> SimRunResult:
    """One-call convenience wrapper."""
    return FluentPSSimRunner(config).run()
