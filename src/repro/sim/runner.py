"""Co-simulation runner: FluentPS protocol × network model × real gradients.

This binds the three substrates together (DESIGN.md's centerpiece):

- worker processes compute for a sampled duration (straggler model), then
  sPush their update shards and sPull the next parameters over the
  simulated network;
- each :class:`~repro.core.server.ShardServer` applies real NumPy updates
  and runs its own pull/push conditions — **overlap synchronization**
  falls out of the architecture: a shard answers its pulls the moment its
  own condition allows, independent of the other M−1 shards (Figure 4b);
- when a :class:`~repro.ml.training.TrainingTask` is attached, gradient
  math is real and accuracy-vs-time curves come out; without one the run
  is timing-only against a :class:`~repro.ml.models_zoo.Workload` spec.

``wire_scale`` lets a small trainable proxy model carry the *paper
model's* wire footprint: message sizes are multiplied so the network sees
ResNet-56-sized transfers while the gradients stay cheap to compute.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.driver import StepContext
from repro.core.filters import NoFilter, PushFilter
from repro.core.keyspace import ElasticSlicer, ModelSpec, Slicer
from repro.core.layout import ShardLayout
from repro.core.metrics import SyncMetrics
from repro.core.models import SyncModel
from repro.core.server import (
    ExecutionMode,
    PullReply,
    ShardServer,
    flush_applies_across,
)
from repro.ml.models_zoo import Workload
from repro.ml.training import TrainingTask
from repro.obs import Observability, current_observability
from repro.obs.snapshot import ServerSnapshotter
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Engine, Timeout
from repro.sim.network import Message, Network
from repro.sim.stragglers import ComputeModel, LogNormalCompute
from repro.sim.trace import SpanKind, TraceRecorder
from repro.utils.records import SeriesRecord
from repro.utils.rng import derive_rng


@dataclass
class SimConfig:
    """Everything one co-simulated training run needs."""

    cluster: ClusterSpec
    max_iter: int
    sync: Union[SyncModel, Sequence[SyncModel]]
    execution: ExecutionMode = ExecutionMode.LAZY
    slicer: Optional[Slicer] = None
    compute_model: Optional[ComputeModel] = None
    base_compute_time: Optional[float] = None  # None → derive from workload
    batch_per_worker: int = 128
    task: Optional[TrainingTask] = None
    workload: Optional[Workload] = None
    wire_scale: Optional[float] = None  # None → auto from workload/task sizes
    seed: int = 0
    eval_every: int = 0
    keep_spans: bool = False
    header_bytes: int = 256
    request_bytes: int = 128
    #: Server processing time per handled request (queue pop, dispatch).
    server_op_overhead_s: float = 20e-6
    #: Protocol cost per DPR event: server-side buffering/re-check work
    #: plus the blocked worker's share of the retry round-trip.  Frequent
    #: soft barriers pay this once per re-buffer — the per-event cost
    #: behind lazy execution's 1.2x speedup (Fig 8) and part of PSSP's
    #: time advantage over SSP under the soft barrier (Fig 9/10).
    dpr_overhead_s: float = 500e-6
    #: Optional per-worker push filter (PS-Lite programming filters /
    #: Gaia significance filter): called as ``push_filter_factory()`` once
    #: per worker; shrinks push wire bytes by the filtered fraction.
    push_filter_factory: Optional[Callable[[], "PushFilter"]] = None
    #: Observability sink; None → the ambient :func:`current_observability`.
    obs: Optional[Observability] = None
    #: Snapshot scrape period in sim seconds; None → half a base compute.
    snapshot_interval_s: Optional[float] = None
    #: Engine calendar queue: None → auto (migrate past the pending-count
    #: threshold), False → binary heap only (the differential-testing
    #: slow path), True → same as auto (the calendar still only engages
    #: past the threshold).  See docs/PERFORMANCE.md, "Mesoscale
    #: fast-forward and the calendar queue".
    engine_calendar: Optional[bool] = None
    #: Pending-event count that triggers calendar migration; None → the
    #: engine default.
    engine_calendar_threshold: Optional[int] = None
    #: Protocol-quiet event elision: None/True → the engine batch-serves
    #: same-timestamp runs of worker compute-phase completions (clock
    #: advanced once per region, no per-event queue bookkeeping), False →
    #: event-by-event service, kept as the differential oracle exactly
    #: like ``engine_calendar=False`` and ``server_dispatch="proc"``.
    #: Served callback order — and thus the S001–S016 protocol event
    #: stream and final params — is bit-identical either way.  See
    #: docs/PERFORMANCE.md, "Protocol-quiet elision and parallel shard
    #: drains".
    engine_elide: Optional[bool] = None
    #: Server request dispatch.  ``"direct"`` (default) handles each
    #: delivered request inside the delivery event via the endpoint sink:
    #: no inbox round-trip, no per-request resume event — a busy server
    #: parks arrivals and drains them FIFO when its busy window closes.
    #: ``"proc"`` runs the classic one-generator-per-server inbox loop
    #: and is the dispatch differential oracle.  Handle times and
    #: per-server FIFO order are bit-identical between the two; only the
    #: event structure differs.
    server_dispatch: str = "direct"
    #: Busy-server drain mode under direct dispatch.  ``"lane"``
    #: (default): each shard runs an analytic drain lane — a parked
    #: request's handle time is the cascade ``max(deliver_time, lane busy
    #: end)`` computed at arrival, served immediately on the per-shard
    #: virtual clock, so no per-message drain events exist and (on the
    #: analytic wire) request deliveries fuse into their TX-completion
    #: events.  ``"event"`` keeps the sequential busy-window drain (one
    #: engine event per parked request) as the differential oracle.
    #: Handle times, protocol event streams, and final params are
    #: bit-identical across modes; see docs/PERFORMANCE.md.
    server_drain: str = "lane"
    #: Per-worker observability series cap.  Below this worker count the
    #: runner keeps one ``pull_latency_seconds`` sketch series per worker
    #: (labels ``worker=<w>``); above it, all workers share a single
    #: aggregate series (``worker="all"``) so the metrics registry stays
    #: bounded at mesoscale — at 100k workers per-worker label sets would
    #: dominate run memory.  Sketches merge exactly, so the aggregate is
    #: byte-identical to merging the per-worker series after the fact.
    worker_series_threshold: int = 4096

    def __post_init__(self) -> None:
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if self.server_dispatch not in ("direct", "proc"):
            raise ValueError(
                f"server_dispatch must be 'direct' or 'proc', "
                f"got {self.server_dispatch!r}"
            )
        if self.server_drain not in ("lane", "event"):
            raise ValueError(
                f"server_drain must be 'lane' or 'event', "
                f"got {self.server_drain!r}"
            )
        if self.worker_series_threshold < 1:
            raise ValueError(
                f"worker_series_threshold must be >= 1, "
                f"got {self.worker_series_threshold}"
            )
        if self.task is None and self.workload is None:
            raise ValueError("need a TrainingTask and/or a Workload")
        if self.task is not None and self.task.n_workers != self.cluster.n_workers:
            raise ValueError(
                f"task built for {self.task.n_workers} workers, cluster has "
                f"{self.cluster.n_workers}"
            )

    @property
    def spec(self) -> ModelSpec:
        return self.task.spec if self.task is not None else self.workload.spec

    def resolved_wire_scale(self) -> float:
        if self.wire_scale is not None:
            if self.wire_scale <= 0:
                raise ValueError("wire_scale must be positive")
            return self.wire_scale
        if self.task is not None and self.workload is not None:
            return self.workload.wire_bytes / self.spec.total_bytes
        return 1.0

    def resolved_base_compute(self, node_flops: float) -> float:
        if self.base_compute_time is not None:
            if self.base_compute_time <= 0:
                raise ValueError("base_compute_time must be positive")
            return self.base_compute_time
        if self.workload is not None:
            return self.workload.train_flops_per_sample * self.batch_per_worker / node_flops
        # No workload: a nominal per-iteration second keeps ratios readable.
        return 1.0


@dataclass
class SimRunResult:
    """Outcome of one co-simulated run."""

    duration: float
    iterations: int
    n_workers: int
    metrics: SyncMetrics
    trace: TraceRecorder
    total_compute_time: float
    total_comm_time: float
    bytes_on_wire: int
    messages_on_wire: int
    final_params: Optional[np.ndarray] = None
    eval_by_time: SeriesRecord = field(default_factory=lambda: SeriesRecord("eval"))
    eval_by_iteration: SeriesRecord = field(default_factory=lambda: SeriesRecord("eval"))
    worker_finish_times: List[float] = field(default_factory=list)

    @property
    def mean_compute_time(self) -> float:
        return self.total_compute_time / self.n_workers

    @property
    def mean_comm_time(self) -> float:
        return self.total_comm_time / self.n_workers

    def dprs_per_100_iterations(self) -> float:
        return self.metrics.dprs_per_100_iterations(self.iterations)


@dataclass(slots=True)
class _PushMsg:
    worker: int
    progress: int
    shard: Optional[np.ndarray]


@dataclass(slots=True)
class _PullMsg:
    worker: int
    progress: int


@dataclass(slots=True)
class _ReplyMsg:
    server: int
    reply: PullReply


class _PendingPull:
    __slots__ = ("flat", "remaining", "signal", "max_missing", "last_cause")

    def __init__(self, engine: Engine, n_servers: int, n_elements: Optional[int]):
        self.flat = np.empty(n_elements) if n_elements is not None else None
        self.remaining = n_servers
        self.signal = engine.signal("pull-complete")
        self.max_missing = 0
        #: Causal span id of the last reply to land (-1 when tracing is
        #: off) — the cause that actually released the worker's sync wait.
        self.last_cause = -1


class FluentPSSimRunner:
    """Run one FluentPS training job on the simulated cluster."""

    def __init__(self, config: SimConfig):
        self.cfg = config
        self.engine = Engine(
            calendar=config.engine_calendar,
            calendar_threshold=config.engine_calendar_threshold,
            elide=config.engine_elide,
        )
        self.net: Network = config.cluster.make_network(self.engine)
        self.obs = config.obs or current_observability()
        # Observability implies a full span capture for trace export.
        self.trace = TraceRecorder(keep_spans=config.keep_spans or self.obs.enabled)
        self.spec = config.spec
        slicer = config.slicer or ElasticSlicer()
        self.layout = ShardLayout(self.spec, slicer.slice(self.spec, config.cluster.n_servers))
        self.wire_scale = config.resolved_wire_scale()
        self.compute_model = config.compute_model or LogNormalCompute(0.2)

        n, m = config.cluster.n_workers, config.cluster.n_servers
        models = self._normalize_models(config.sync, m)
        training = config.task is not None
        if training:
            shard_vectors = self.layout.scatter(config.task.init_params.astype(np.float64))
        self.servers: List[ShardServer] = [
            ShardServer(
                shard_id=j,
                n_workers=n,
                model=models[j],
                execution=config.execution,
                params=shard_vectors[j] if training else None,
                # Per-shard drain-lane clock: equals ``engine.now`` inside
                # real handle events, and the cascaded virtual handle time
                # when the analytic lane serves a parked request — so
                # waited times and protocol instants are bit-identical
                # across drain modes.
                clock=lambda j=j: self._srv_now[j],
                rng=derive_rng(config.seed, "server", j),
                obs=self.obs,
            )
            for j in range(m)
        ]
        self._capture = None
        self.causal = None
        self._pull_sketches = None
        #: Worker whose push is currently being applied (drives straggler
        #: blame on DPR releases; only read when causal tracing is on).
        self._current_push_worker = -1
        if self.obs.enabled:
            self.obs.registry.set_clock(lambda: self.engine.now)
            self._capture = self.obs.begin_run(
                f"sim-run{len(self.obs.runs)}-n{n}x{m}", self.trace
            )
            self.causal = self._capture.causal
            self.net.causal = self.causal
            pull_sketch = self.obs.registry.sketch(
                "pull_latency_seconds",
                "sync-wait seconds per sPull round (mergeable sketch)",
            )
            if n > config.worker_series_threshold:
                # Mesoscale: one shared aggregate series instead of one
                # label set per worker keeps the registry bounded (the
                # sketch merge is exact, so nothing is lost but the
                # per-worker split — see SimConfig.worker_series_threshold).
                agg = pull_sketch.labels(worker="all")
                self._pull_sketches = [agg] * n
            else:
                self._pull_sketches = [
                    pull_sketch.labels(worker=w) for w in range(n)
                ]
            self.obs.instants.record(
                "run_config", 0.0, actor="runner",
                runner="sim", n_workers=n, n_servers=m,
                models=[mod.name for mod in models],
                execution=config.execution.value,
            )
        self._pending: Dict[Tuple[int, int], _PendingPull] = {}
        self._filters: List[PushFilter] = [
            config.push_filter_factory() if config.push_filter_factory else NoFilter()
            for _ in range(n)
        ]
        self._compute_rngs = [derive_rng(config.seed, "compute", w) for w in range(n)]
        self._step_rngs = [derive_rng(config.seed, "step", w) for w in range(n)]
        self.eval_by_time = SeriesRecord("eval", x_label="time_s", y_label="metric")
        self.eval_by_iteration = SeriesRecord("eval", x_label="iteration", y_label="metric")
        self._finish_times: List[float] = [0.0] * n
        # Direct-dispatch state (also read by the proc loop): per-server
        # busy-window close time, parked arrivals, and whether a drain
        # event is already on the calendar for that server.
        self._direct = config.server_dispatch == "direct"
        # Analytic drain lanes need cursor-scheduled (analytic) wire
        # timing; the process-path wire falls back to the event drain.
        self._lane = (
            self._direct and config.server_drain == "lane" and self.net.analytic
        )
        self._srv_names = [f"server{j}" for j in range(m)]
        self._srv_busy = [0.0] * m
        # Per-shard virtual clock: the handle time of the request this
        # shard is currently serving (== engine.now inside real handle
        # events).  ShardServer.clock reads it, so DPR waits and protocol
        # instants see identical times in lane and event drain modes.
        self._srv_now = [0.0] * m
        self._srv_queue: List[Deque[Message]] = [deque() for _ in range(m)]
        self._srv_drain_pending = [False] * m
        # Hot-path memos: node-id strings, per-shard wire sizes, and (when
        # causal tracing is off) one prebound pull responder per server —
        # all pure functions of the config, resolved once instead of per
        # request at incast rates.
        self._srv_node_ids = [config.cluster.server_id(j) for j in range(m)]
        self._wkr_node_ids = [config.cluster.worker_id(w) for w in range(n)]
        # Endpoint objects resolved once: Network.send accepts them in
        # place of node ids, skipping two registry lookups per message
        # (cache misses once the registry holds 100k entries).
        self._srv_eps = [self.net.endpoints[i] for i in self._srv_node_ids]
        self._wkr_eps = [self.net.endpoints[i] for i in self._wkr_node_ids]
        self._shard_bytes = [self._payload_bytes(j) for j in range(m)]
        self._responders = [
            partial(self._send_reply, j) for j in range(m)
        ]
        #: Dispatch counters (perf detail): requests handled inline in
        #: the delivery event vs. parked behind a busy server and drained.
        self.server_msgs_inline = 0
        self.server_msgs_drained = 0

    @staticmethod
    def _normalize_models(
        sync: Union[SyncModel, Sequence[SyncModel]], m: int
    ) -> List[SyncModel]:
        if isinstance(sync, SyncModel):
            return [sync] * m
        models = list(sync)
        if len(models) != m:
            raise ValueError(f"need one sync model per server, got {len(models)} for {m}")
        return models

    # -- sizing ---------------------------------------------------------------

    def _payload_bytes(self, server: int) -> int:
        return int(self.layout.shard_bytes(server) * self.wire_scale) + self.cfg.header_bytes

    # -- server side ----------------------------------------------------------

    def _server_proc(self, m: int):
        """Classic inbox loop (``server_dispatch="proc"``): one generator
        per server, resumed once per request plus once per busy window.
        The dispatch differential oracle — both paths share
        :meth:`_handle_server_msg`, so handle times and per-server FIFO
        order match the direct dispatcher bit-for-bit; only the event
        structure (inbox resume + timeout vs. inline + drain) differs."""
        ep = self.net.endpoint(self.cfg.cluster.server_id(m))
        while True:
            msg: Message = yield ep.inbox.get()
            cost = self._handle_server_msg(m, msg, self.engine.now)
            if cost > 0:
                yield Timeout(cost)

    def _dispatch_server(self, m: int, msg: Message) -> None:
        """Endpoint sink (``server_dispatch="direct"``): handle the
        request inside the delivery event while the server is free;
        otherwise the drain mode decides.  ``"lane"``: serve it *now* at
        the cascaded virtual handle time ``max(deliver_time, lane busy
        end)`` — arrival order equals handle order per shard, so the
        cascade reproduces the busy-window FIFO with zero extra events.
        ``"event"``: park it and drain FIFO when the busy window closes
        (one engine event per parked request, the differential oracle).
        Handle times are bit-identical across modes and to the proc
        loop."""
        now = msg.deliver_time
        busy = self._srv_busy[m]
        if self._lane:
            if now >= busy:
                self.server_msgs_inline += 1
                self._handle_server_msg(m, msg, now)
            else:
                self.server_msgs_drained += 1
                self._handle_server_msg(m, msg, busy)
            return
        if now >= busy and not self._srv_queue[m]:
            self.server_msgs_inline += 1
            self._handle_server_msg(m, msg, now)
        else:
            self._srv_queue[m].append(msg)
            if not self._srv_drain_pending[m]:
                self._srv_drain_pending[m] = True
                self.engine._schedule(busy, self._drain_server, m)

    def _drain_server(self, m: int) -> None:
        self._srv_drain_pending[m] = False
        self.server_msgs_drained += 1
        self._handle_server_msg(m, self._srv_queue[m].popleft(), self.engine.now)
        if self._srv_queue[m]:
            self._srv_drain_pending[m] = True
            self.engine._schedule(self._srv_busy[m], self._drain_server, m)

    def _handle_server_msg(self, m: int, msg: Message, now: float) -> float:
        server = self.servers[m]
        causal = self.causal
        actor = self._srv_names[m]
        self._srv_now[m] = now
        payload = msg.payload
        # ``tip`` tracks the request's causal frontier through the
        # server: delivery rx -> backlog wait -> apply/DPR wait.
        tip = msg.cause_id
        if causal is not None and now > msg.deliver_time:
            tip = causal.record(
                tip, actor, "server_queue", msg.deliver_time, now,
                shard=m, tag=msg.tag,
            )
        dprs_before = server.metrics.dprs
        cls = payload.__class__
        if cls is _PushMsg:
            self._current_push_worker = payload.worker
            server.handle_push(payload.worker, payload.progress, grad=payload.shard)
            self._current_push_worker = -1
        elif cls is _PullMsg:
            server.handle_pull(
                payload.worker,
                payload.progress,
                # Causal tracing threads the request's span id through the
                # responder; with tracing off the prebound per-server
                # responder avoids one closure per pull.
                respond=self._responders[m]
                if causal is None
                else lambda reply, j=m, cid=tip: self._send_reply(j, reply, cid),
            )
        else:
            raise TypeError(f"server {m}: unexpected message payload {payload!r}")
        # Charge server processing time: fixed per request plus per
        # DPR event this request caused (buffer/re-check bookkeeping).
        # The busy window serializes the server; later arrivals wait
        # for it to close before they are handled.
        cost = self.cfg.server_op_overhead_s
        cost += (server.metrics.dprs - dprs_before) * self.cfg.dpr_overhead_s
        end = now + cost
        self._srv_busy[m] = end
        if cost > 0 and self.obs.enabled:
            # Server-side apply spans are an observability feature;
            # the plain timing path skips the per-request recording.
            self.trace.record_span(actor, SpanKind.SERVER_APPLY, now, end)
            if causal is not None:
                causal.record(
                    tip, actor, "server_apply", now, end,
                    shard=m, tag=msg.tag,
                )
        return cost

    def _send_reply(self, server: int, reply: PullReply, cause: int = -1) -> None:
        causal = self.causal
        if causal is not None and reply.waited > 0:
            # The pull sat in the DPR buffer from enqueue until this very
            # instant; the release happens inside the straggler's push, so
            # ``_current_push_worker`` names who to blame for the wait.
            now = self._srv_now[server]
            cause = causal.record(
                cause, f"server{server}", "server_queue", now - reply.waited, now,
                worker=reply.worker, iteration=reply.progress, shard=server,
                tag="dpr", blocked_on=self._current_push_worker,
            )
        self.net.send(
            self._srv_eps[server],
            self._wkr_eps[reply.worker],
            self._shard_bytes[server],
            payload=_ReplyMsg(server, reply),
            tag="reply",
            cause=cause,
            # Workers consume replies via this subscription, never the
            # inbox (the waiter event also keeps the worker-resume seq
            # allocation where the golden schedules expect it; an inline
            # sink moves it and reorders same-instant ties).  Skipping
            # the inbox append keeps 10k-worker runs from pinning every
            # reply Message (and its COW snapshot) alive in an unread
            # queue.
            deliver_to_inbox=False,
            # Replies issued from a cascaded lane handle must serialize
            # at the virtual handle time, not the (earlier) engine clock.
            at=self._srv_now[server],
            # Inline delivery callback: skips the Signal allocation and
            # the subscriber resume event per reply (the gather happens
            # inside the delivery event itself).
            on_deliver=self._on_reply_delivered,
        )

    def _on_reply_delivered(self, msg: Message) -> None:
        payload: _ReplyMsg = msg.payload
        reply = payload.reply
        pending = self._pending[(reply.worker, reply.progress)]
        if pending.flat is not None and reply.params is not None:
            self.layout.gather_into(pending.flat, payload.server, reply.params)
        pending.max_missing = max(pending.max_missing, reply.missing)
        pending.last_cause = msg.cause_id
        pending.remaining -= 1
        if pending.remaining == 0:
            del self._pending[(reply.worker, reply.progress)]
            pending.signal.fire(pending)

    # -- worker side ---------------------------------------------------------------

    def _worker_proc(self, w: int):
        cfg = self.cfg
        engine = self.engine
        send = self.net.send
        node = self._wkr_eps[w]
        srv_ids = self._srv_eps
        n_servers = cfg.cluster.n_servers
        push_bytes = self._shard_bytes  # exact when wire_factor == 1.0
        request_bytes = cfg.request_bytes
        header_bytes = cfg.header_bytes
        record_span = self.trace.record_span
        compute_rng = self._compute_rngs[w]
        sample = self.compute_model.sample
        name = f"worker{w}"
        base = cfg.resolved_base_compute(cfg.cluster.workers[w].flops)
        params = cfg.task.init_params.copy() if cfg.task is not None else None
        causal = self.causal
        sketch = self._pull_sketches[w] if self._pull_sketches is not None else None
        for i in range(cfg.max_iter):
            dur = sample(w, i, base, compute_rng)
            t0 = engine.now
            yield dur  # zero-allocation spelling of Timeout(dur)
            record_span(name, SpanKind.COMPUTE, t0, engine.now, i)
            cause = -1
            if causal is not None:
                cause = causal.record(
                    -1, name, "compute", t0, engine.now, worker=w, iteration=i
                )
            wire_factor = 1.0
            if cfg.task is not None:
                update = cfg.task.step_fn(
                    StepContext(worker=w, iteration=i, params=params, rng=self._step_rngs[w])
                )
                filtered = self._filters[w].apply(update, params, i)
                wire_factor = filtered.wire_bytes_factor
                shards = self.layout.scatter(filtered.update)
            else:
                shards = [None] * n_servers
            # sPush to every shard server (async — Algorithm 1 line 4).
            # Neither pushes nor pulls subscribe to the delivery signal,
            # so both ride the signal-free send path (notify=False).
            t_sync = engine.now
            for m in range(n_servers):
                send(
                    node,
                    srv_ids[m],
                    push_bytes[m]
                    if wire_factor == 1.0
                    else max(header_bytes, int(self._payload_bytes(m) * wire_factor)),
                    payload=_PushMsg(w, i, shards[m]),
                    tag="push",
                    cause=cause,
                    notify=False,
                )
            # sPull from every shard server, then wait (lines 5-6).  The
            # push/pull messages share the worker's FIFO TX lane, so each
            # server sees this iteration's push before its pull.
            pending = _PendingPull(
                engine,
                n_servers,
                self.spec.total_elements if cfg.task is not None else None,
            )
            self._pending[(w, i)] = pending
            for m in range(n_servers):
                send(
                    node,
                    srv_ids[m],
                    request_bytes,
                    payload=_PullMsg(w, i),
                    tag="pull",
                    cause=cause,
                    notify=False,
                )
            yield pending.signal
            record_span(name, SpanKind.PULL, t_sync, engine.now, i)
            if causal is not None:
                # Terminal span of the iteration's DAG: parented on the
                # last reply to land (the cause that released the wait).
                parent = pending.last_cause if pending.last_cause >= 0 else cause
                causal.record(
                    parent, name, "sync_wait", t_sync, engine.now,
                    worker=w, iteration=i,
                )
            if sketch is not None:
                sketch.observe(engine.now - t_sync)
            if params is not None:
                params = pending.flat
            if w == 0 and cfg.task is not None and cfg.eval_every > 0:
                if (i + 1) % cfg.eval_every == 0 or i + 1 == cfg.max_iter:
                    value = cfg.task.eval_fn(self._global_params())
                    self.eval_by_time.append(engine.now, value)
                    self.eval_by_iteration.append(i + 1, value)
        self._finish_times[w] = engine.now

    def _global_params(self) -> np.ndarray:
        # One vectorized apply pass across shards before gathering (falls
        # back to per-shard flushes for odd shapes; bit-identical).
        flush_applies_across(self.servers)
        return self.layout.gather([s.params for s in self.servers])

    # -- run ---------------------------------------------------------------------------

    def run(self) -> SimRunResult:
        """Execute the co-simulation to completion and aggregate results."""
        if not self._direct:
            for m in range(self.cfg.cluster.n_servers):
                self.engine.spawn(self._server_proc(m), name=f"server{m}")
        else:
            for m in range(self.cfg.cluster.n_servers):
                ep = self.net.endpoint(self.cfg.cluster.server_id(m))
                ep.sink = partial(self._dispatch_server, m)
            if self._lane:
                # Analytic drain lanes time themselves off
                # ``msg.deliver_time``, so signal-free request deliveries
                # can fold into their TX-completion events.
                self.net.fuse_delivery = True
        # Worker compute phases are the homogeneous event population at
        # scale; marking them elidable lets the engine batch-serve
        # protocol-quiet same-instant runs (BSP barrier releases, the t=0
        # start wave) without changing served order.
        for w in range(self.cfg.cluster.n_workers):
            self.engine.spawn(self._worker_proc(w), name=f"worker{w}", elidable=True)
        snapshotter = None
        if self.obs.enabled:
            snapshotter = ServerSnapshotter(
                self.obs.registry,
                self.servers,
                network=self.net,
                nodes=[self.cfg.cluster.server_id(j) for j in range(self.cfg.cluster.n_servers)],
                engine=self.engine,
                dispatch=self,
            )
            interval = self.cfg.snapshot_interval_s
            if interval is None:
                interval = (
                    self.cfg.resolved_base_compute(self.cfg.cluster.workers[0].flops) / 2.0
                )
            snapshotter.install(self.engine, interval)
        self.engine.run()
        if snapshotter is not None:
            # Final snapshot so the last partial period is never dropped
            # (a no-op when the periodic scrape already landed at end time).
            snapshotter.finalize(self.engine.now)
        if self._pending:
            raise RuntimeError(
                f"simulation drained with {len(self._pending)} unanswered pulls "
                "(synchronization deadlock)"
            )
        if self._capture is not None:
            self._capture.complete = True
        worker_names = [f"worker{w}" for w in range(self.cfg.cluster.n_workers)]
        total_compute = self.trace.compute_time(worker_names)
        total_wall = sum(self._finish_times)
        metrics = SyncMetrics.merge_all(s.metrics for s in self.servers)
        if self.obs.enabled:
            metrics.publish(self.obs.registry)
        return SimRunResult(
            duration=max(self._finish_times),
            iterations=self.cfg.max_iter,
            n_workers=self.cfg.cluster.n_workers,
            metrics=metrics,
            trace=self.trace,
            total_compute_time=total_compute,
            total_comm_time=max(0.0, total_wall - total_compute),
            bytes_on_wire=self.net.total_bytes,
            messages_on_wire=self.net.total_messages,
            final_params=self._global_params() if self.cfg.task is not None else None,
            eval_by_time=self.eval_by_time,
            eval_by_iteration=self.eval_by_iteration,
            worker_finish_times=list(self._finish_times),
        )


def run_fluentps(config: SimConfig) -> SimRunResult:
    """One-call convenience wrapper."""
    return FluentPSSimRunner(config).run()
