"""Cluster specifications and the paper's two evaluation-cluster presets.

The paper evaluates on (1) a 32-instance AWS p2.xlarge GPU cluster (K80,
25 Gbps aggregate) and (2) a 64-machine CPU cluster (two 4-core CPUs,
1 Gbps NICs, 10 Gbps aggregate) extended to 128 workers with Kubernetes.
These presets reproduce their *ratios* of compute rate to network rate —
the quantity that determines where communication starts to dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.engine import Engine
from repro.sim.network import Network, NicSpec

GBPS = 1e9 / 8.0  # bytes/second per Gbit/s


@dataclass(frozen=True)
class NodeSpec:
    """One machine: effective training throughput and NIC."""

    name: str
    flops: float  # effective achievable FLOP/s for DNN training
    nic: NicSpec
    kind: str = "cpu"  # "cpu" | "gpu"

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise ValueError(f"node flops must be positive, got {self.flops}")


@dataclass
class ClusterSpec:
    """A training cluster: worker nodes, server nodes, fabric parameters."""

    name: str
    workers: List[NodeSpec]
    servers: List[NodeSpec]
    latency_s: float = 100e-6
    fabric_concurrency: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.workers:
            raise ValueError("cluster needs at least one worker")
        if not self.servers:
            raise ValueError("cluster needs at least one server")

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def worker_id(self, n: int) -> str:
        return self.workers[n].name

    def server_id(self, m: int) -> str:
        return self.servers[m].name

    def make_network(self, engine: Engine) -> Network:
        """Instantiate the fabric and register every node."""
        net = Network(
            engine,
            latency_s=self.latency_s,
            fabric_concurrency=self.fabric_concurrency,
        )
        for node in self.workers + self.servers:
            net.add_node(node.name, node.nic)
        return net


def _mk_nodes(prefix: str, count: int, flops: float, nic: NicSpec, kind: str) -> List[NodeSpec]:
    return [NodeSpec(name=f"{prefix}{i}", flops=flops, nic=nic, kind=kind) for i in range(count)]


def gpu_cluster_p2(
    n_workers: int,
    n_servers: int = 8,
    gpu_flops: float = 2.0e11,
    nic_gbps: float = 0.8,
    latency_s: float = 100e-6,
) -> ClusterSpec:
    """Paper's Performance-Test cluster: p2.xlarge-like nodes.

    One NVIDIA K80 half per node; ``gpu_flops`` is the *effective
    achieved* training throughput (≈200 GFLOP/s — K80s reach a small
    fraction of peak on CIFAR ResNet batches; this calibrates per-
    iteration compute to the paper's ≈0.4 s/iteration for ResNet-56 at
    batch 128/worker).  Per-node NIC sized so the 32-node aggregate
    matches the paper's 25 Gbps aggregate figure at default arguments.
    Servers are co-located on worker-class machines, as in the paper's
    8-servers/32-workers setup.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    nic = NicSpec(bandwidth_Bps=nic_gbps * GBPS, overhead_s=30e-6)
    return ClusterSpec(
        name=f"gpu-p2-{n_workers}w{n_servers}s",
        workers=_mk_nodes("worker", n_workers, gpu_flops, nic, "gpu"),
        servers=_mk_nodes("server", n_servers, gpu_flops / 10, nic, "cpu"),
        latency_s=latency_s,
    )


def cpu_cluster(
    n_workers: int,
    n_servers: int = 1,
    cpu_flops: float = 6.0e10,
    nic_gbps: float = 1.0,
    latency_s: float = 150e-6,
) -> ClusterSpec:
    """Paper's Scalability-Test cluster: 8-core machines, 1 Gbps NICs.

    Extended past 64 nodes the same way the paper does with Kubernetes —
    more (virtual) nodes with identical specs.
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    nic = NicSpec(bandwidth_Bps=nic_gbps * GBPS, overhead_s=50e-6)
    return ClusterSpec(
        name=f"cpu-{n_workers}w{n_servers}s",
        workers=_mk_nodes("worker", n_workers, cpu_flops, nic, "cpu"),
        servers=_mk_nodes("server", n_servers, cpu_flops, nic, "cpu"),
        latency_s=latency_s,
    )
