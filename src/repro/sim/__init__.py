"""Discrete-event cluster simulator.

This subpackage is the hardware substrate substituting for the paper's AWS
GPU cluster and 64/128-node CPU cluster (see DESIGN.md).  It provides:

- :mod:`repro.sim.engine` — deterministic event loop with generator-based
  processes, signals, FIFO resources and stores;
- :mod:`repro.sim.network` — NIC/fabric model with serialization, latency
  and contention;
- :mod:`repro.sim.cluster` — node and cluster specifications plus the two
  paper-cluster presets;
- :mod:`repro.sim.stragglers` — compute-time distributions that create the
  randomly-slow workers the synchronization models must tolerate;
- :mod:`repro.sim.trace` — span/event timeline recording;
- :mod:`repro.sim.runner` — the co-simulation binding the FluentPS core,
  the network model and real NumPy gradient math.
"""

from repro.sim.engine import AllOf, Engine, Process, Resource, Signal, Store, Timeout
from repro.sim.network import Message, Network, NicSpec
from repro.sim.cluster import ClusterSpec, NodeSpec, cpu_cluster, gpu_cluster_p2
from repro.sim.stragglers import (
    ComputeModel,
    DeterministicCompute,
    ExponentialTailCompute,
    LogNormalCompute,
    ParetoTailCompute,
    TransientStragglerCompute,
)
from repro.sim.trace import SpanKind, TraceRecorder

__all__ = [
    "AllOf",
    "Engine",
    "Process",
    "Resource",
    "Signal",
    "Store",
    "Timeout",
    "Message",
    "Network",
    "NicSpec",
    "ClusterSpec",
    "NodeSpec",
    "cpu_cluster",
    "gpu_cluster_p2",
    "ComputeModel",
    "DeterministicCompute",
    "ExponentialTailCompute",
    "LogNormalCompute",
    "ParetoTailCompute",
    "TransientStragglerCompute",
    "SpanKind",
    "TraceRecorder",
]
