"""Deterministic discrete-event engine with generator-based processes.

The engine is a priority queue of ``(time, seq)``-ordered callbacks plus a
small process runtime: a *process* is a Python generator that ``yield``\\ s
waitables (:class:`Timeout`, :class:`Signal`, :class:`AllOf`, another
:class:`Process`) and is resumed with the waitable's payload.  Ties at the
same timestamp resolve in scheduling order (``seq``), so a run is a pure
function of its inputs — required for reproducible co-simulation.

This is intentionally simpy-shaped but self-contained (no network access
for dependencies) and small enough to property-test exhaustively.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

ProcessGen = Generator["Waitable", Any, Any]


class SimulationError(RuntimeError):
    """Raised for engine misuse (double fire, yield of a non-waitable...)."""


class Waitable:
    """Base class for things a process may ``yield``."""

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the waiting process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        engine.call_in(self.delay, callback, self.value)


class Signal(Waitable):
    """One-shot event.  ``fire(payload)`` resumes every waiter with payload.

    Subscribing after the signal has fired resumes immediately (at the
    current simulated time), so there is no lost-wakeup hazard.
    """

    __slots__ = ("_engine", "_fired", "_payload", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self._engine = engine
        self._fired = False
        self._payload: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def payload(self) -> Any:
        if not self._fired:
            raise SimulationError(f"signal {self.name!r} has not fired")
        return self._payload

    def fire(self, payload: Any = None) -> None:
        """Fire the signal once, resuming every current waiter with ``payload``."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._payload = payload
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self._engine.call_in(0.0, cb, payload)

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        if engine is not self._engine:
            raise SimulationError("signal subscribed from a foreign engine")
        if self._fired:
            engine.call_in(0.0, callback, self._payload)
        else:
            self._waiters.append(callback)

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Public hook: run ``callback(payload)`` when the signal fires
        (immediately, at the current sim time, if it already has)."""
        self._subscribe(self._engine, callback)


class AllOf(Waitable):
    """Resume when every child waitable has completed; payload is the list
    of child payloads in the original order."""

    def __init__(self, engine: "Engine", children: Iterable[Waitable]):
        self._engine = engine
        self._children = list(children)

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        n = len(self._children)
        if n == 0:
            engine.call_in(0.0, callback, [])
            return
        results: List[Any] = [None] * n
        remaining = [n]

        def make_cb(i: int) -> Callable[[Any], None]:
            def _cb(value: Any) -> None:
                results[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    callback(results)

            return _cb

        for i, child in enumerate(self._children):
            child._subscribe(engine, make_cb(i))


class Process(Waitable):
    """A running generator.  Waitable: joiners get the generator's return."""

    __slots__ = ("_engine", "_gen", "_done", "name")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = ""):
        self._engine = engine
        self._gen = gen
        self._done = Signal(engine, name=f"{name}.done")
        self.name = name

    @property
    def finished(self) -> bool:
        return self._done.fired

    @property
    def result(self) -> Any:
        return self._done.payload

    def _start(self) -> None:
        self._engine.call_in(0.0, self._step, None)

    def _step(self, value: Any) -> None:
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self._done.fire(stop.value)
            return
        if not isinstance(yielded, Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "processes must yield Timeout/Signal/AllOf/Process"
            )
        yielded._subscribe(self._engine, self._step)

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        self._done._subscribe(engine, callback)


class Engine:
    """The event loop.  All times are simulated seconds, starting at 0."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_processed = 0
        self._daemon_pending = 0  # scheduled call_every ticks (see below)

    # -- raw callback scheduling --------------------------------------

    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds (FIFO at ties)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, lambda: fn(*args)))

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule into the past: {when} < {self.now}")
        self.call_in(when - self.now, fn, *args)

    def call_every(self, interval: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` every ``interval`` seconds as a *daemon*: the tick
        reschedules itself only while non-daemon events remain pending, so
        periodic samplers (metric snapshots) never keep a drained
        simulation alive.  The first tick fires after ``interval``."""
        if interval <= 0:
            raise SimulationError(f"call_every interval must be positive, got {interval}")

        def tick() -> None:
            self._daemon_pending -= 1
            fn()
            # Reschedule only if real work remains beyond other daemon ticks.
            if len(self._heap) > self._daemon_pending:
                self._daemon_pending += 1
                self.call_in(interval, tick)

        self._daemon_pending += 1
        self.call_in(interval, tick)

    # -- process/waitable API ------------------------------------------

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator as a process; returns a joinable Process."""
        proc = Process(self, gen, name=name)
        proc._start()
        return proc

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A waitable that resumes after ``delay`` seconds."""
        return Timeout(delay, value)

    def signal(self, name: str = "") -> Signal:
        """A fresh one-shot signal bound to this engine."""
        return Signal(self, name=name)

    def all_of(self, children: Iterable[Waitable]) -> AllOf:
        """A waitable that completes when every child completes."""
        return AllOf(self, children)

    # -- running --------------------------------------------------------

    def step(self) -> bool:
        """Run one event; returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _seq, thunk = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("event heap corrupted: time went backwards")
        self.now = when
        self._events_processed += 1
        thunk()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain events (optionally only up to time ``until``); returns now."""
        budget = max_events if max_events is not None else float("inf")
        while self._heap and budget > 0:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return self.now
            self.step()
            budget -= 1
        if until is not None and until > self.now:
            self.now = until
        return self.now

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        return self._events_processed


class Resource:
    """FIFO resource with integer capacity (models a NIC lane, a GPU...).

    ``acquire()`` returns a :class:`Signal` the caller yields on; the
    payload is an opaque grant token that must be passed to ``release``.
    """

    __slots__ = ("_engine", "_capacity", "_in_use", "_queue", "name")

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self._engine = engine
        self._capacity = capacity
        self._in_use = 0
        self._queue: List[Signal] = []
        self.name = name

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> Signal:
        """Request the resource; yield the returned signal to wait for grant."""
        sig = Signal(self._engine, name=f"{self.name}.grant")
        if self._in_use < self._capacity:
            self._in_use += 1
            sig.fire(self)
        else:
            self._queue.append(sig)
        return sig

    def release(self) -> None:
        """Release one grant, waking the next FIFO waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.pop(0)
            nxt.fire(self)
        else:
            self._in_use -= 1

    def use(self, hold: float) -> ProcessGen:
        """Process body: acquire, hold for ``hold`` seconds, release."""
        yield self.acquire()
        yield Timeout(hold)
        self.release()


class Store:
    """Unbounded FIFO message queue with blocking ``get``."""

    __slots__ = ("_engine", "_items", "_getters", "name")

    def __init__(self, engine: Engine, name: str = ""):
        self._engine = engine
        self._items: List[Any] = []
        self._getters: List[Signal] = []
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest blocked getter if any."""
        if self._getters:
            sig = self._getters.pop(0)
            sig.fire(item)
        else:
            self._items.append(item)

    def get(self) -> Signal:
        """A signal fired with the next item (immediately if one is queued)."""
        sig = Signal(self._engine, name=f"{self.name}.get")
        if self._items:
            sig.fire(self._items.pop(0))
        else:
            self._getters.append(sig)
        return sig
