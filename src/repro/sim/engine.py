"""Deterministic discrete-event engine with generator-based processes.

The engine is a priority queue of ``(time, seq)``-ordered callbacks plus a
small process runtime: a *process* is a Python generator that ``yield``\\ s
waitables (:class:`Timeout`, :class:`Signal`, :class:`AllOf`, another
:class:`Process`) and is resumed with the waitable's payload.  Ties at the
same timestamp resolve in scheduling order (``seq``), so a run is a pure
function of its inputs — required for reproducible co-simulation.

This is intentionally simpy-shaped but self-contained (no network access
for dependencies) and small enough to property-test exhaustively.

Hot-path design (measured by :mod:`repro.bench.perf`):

- heap entries are flat ``(when, seq, fn, arg)`` tuples — no per-event
  closure or argument tuple (every internal resume callback takes
  exactly one payload argument), and ordering never compares past
  ``seq`` (unique), so the heap stays on C-level tuple comparison;
- cancellation is tombstone-based: :meth:`Engine.schedule` returns a
  ``__slots__`` :class:`EventHandle`; cancelling marks the seq dead and
  the drain loop discards it on pop — the heap is never rebuilt;
- :class:`Process` resumption type-dispatches on the yielded waitable:
  the overwhelmingly common ``yield Timeout(...)`` and ``yield Signal``
  cases schedule directly on the heap, skipping the generic
  ``Waitable._subscribe`` double dispatch; a bare ``yield <number>`` is
  the zero-allocation spelling of ``yield Timeout(number)`` used by the
  simulator's hottest loops;
- :meth:`Engine.run` drains with an inlined loop over local references
  rather than calling :meth:`step` per event, and raises the cyclic-GC
  gen-0 threshold for the duration of a full drain (restored on exit):
  the loop allocates short-lived tracked objects (messages, signals,
  heap tuples) at MHz rates, and the interpreter default of ~700
  allocations per collection costs ~15% of wall time in collector
  sweeps over objects that refcounting alone reclaims.  Large drains
  (>= ``_GC_FREEZE_PENDING`` pending events, i.e. 10k-worker-scale
  topologies) additionally ``gc.freeze()`` the long-lived object graph
  (processes, endpoints, parameter shards) so the collections that do
  happen stop re-traversing it; ``gc.unfreeze()`` restores it on exit.

Mesoscale fast-forward and the calendar queue (see docs/PERFORMANCE.md,
"Mesoscale fast-forward and the calendar queue"):

- producers never change: every ``_heappush(eng._heap, ...)`` call site
  (the network's analytic lane scheduler, process resumes, signal
  fires) keeps pushing flat records onto ``Engine._heap``, whose list
  *identity* is never reassigned.  At 10k-worker scale the heap holds
  tens of thousands of records and every push/pop walks ~17 levels of
  tuple comparisons — that depth, not the event count, is what grows;
- when the ingest heap crosses ``calendar_threshold`` records, the
  drain *sweeps* it: one ``sorted()`` pass splits the stream into a
  **fast-forward window** (the next ``_CAL_NEAR`` events, served as a
  presorted batch with an index instead of per-event heap pops) and a
  far horizon distributed into **calendar buckets** keyed by
  ``int(when / width)``, with the bucket width derived from the
  observed span (re-derived whenever the calendar drains empty, which
  is the resize mechanism under adversarial timestamp clustering);
- the window is *provably non-interfering by construction*: before
  each batch event runs, its record is compared against the live heap
  top and the exact calendar floor (min pending bucket timestamp, kept
  rounding-immune by tracking real event times, not bucket boundaries).
  Any newly produced event that lands inside the window — a DPR
  wakeup, a frontier advance, an in-flight wire event — wins the
  comparison and runs first, so the served order is bit-identical to
  the pure heap's ``(when, seq)`` order.  ``events_skipped`` counts
  events served from the window (heap maintenance skipped — every
  event still executes), ``windows_collapsed`` counts fully drained
  windows;
- ``calendar=False`` disables all of it and keeps the original
  heap-only drain as the differential-testing fallback, exactly like
  ``analytic=False`` on the network;
- the DPOR choice hook (:meth:`set_choice_hook`) flushes the calendar
  back into the heap and suspends sweeping: schedule exploration
  always sees the one flat tie-group surface it was written against.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Set, Tuple

ProcessGen = Generator["Waitable", Any, Any]

_heappush = heapq.heappush
_heappop = heapq.heappop

#: Gen-0 allocation threshold while :meth:`Engine.run` drains the heap.
#: Collections still happen (memory stays bounded, unlike ``gc.disable``),
#: just ~140x less often; ~100k small tracked objects is a few MB of arena.
_GC_DRAIN_GEN0 = 100_000

#: Pending-event count above which a full drain freezes the long-lived
#: object graph (``gc.freeze``/``gc.unfreeze``) for the duration: at
#: 10k-worker scale the resident processes/endpoints/shards cost ~30% of
#: wall time in collector traversals that can never free them.  Small
#: drains (every micro benchmark, the 128-worker macro) stay below this
#: and pay nothing.
_GC_FREEZE_PENDING = 5_000

#: Ingest-heap size that triggers a calendar sweep on the default
#: (auto-selecting) engine.  Below it the binary heap wins outright —
#: the threshold only needs to catch the 10k-worker regime where heap
#: depth starts to dominate per-event cost.  Each sweep is a full
#: ``sorted()`` of the ingest heap, so a low threshold trades heap depth
#: for sort churn: at 10k workers, 32768 drains ~15% faster than 4096
#: (9 sweeps vs 33 for the same run).  Mesoscale runs that want the
#: calendar earlier pass ``calendar_threshold=`` explicitly.
_CAL_THRESHOLD = 32768

#: Fast-forward window size: how many of the earliest swept events stay
#: in the presorted batch instead of the far-horizon buckets.
_CAL_NEAR = 512

#: Target bucket count when (re)deriving the calendar width from the
#: swept far-horizon span.
_CAL_BUCKETS = 512

#: Relative span below which bucketing is churn (all events effectively
#: at one timestamp): the sweep keeps such clusters in the window.
_CAL_MIN_REL_SPAN = 1e-12


def _invoke0(fn: Callable[[], None]) -> None:
    """Adapter: run a zero-argument callback under the one-arg protocol."""
    fn()


def _invoke_n(packed: Tuple[Callable[..., None], Tuple[Any, ...]]) -> None:
    """Adapter: run a multi-argument callback under the one-arg protocol."""
    fn, args = packed
    fn(*args)


class SimulationError(RuntimeError):
    """Raised for engine misuse (double fire, yield of a non-waitable...)."""


class Waitable:
    """Base class for things a process may ``yield``."""

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Resume the waiting process after ``delay`` simulated seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        engine._schedule(engine.now + self.delay, callback, self.value)


class Signal(Waitable):
    """One-shot event.  ``fire(payload)`` resumes every waiter with payload.

    Subscribing after the signal has fired resumes immediately (at the
    current simulated time), so there is no lost-wakeup hazard.
    """

    __slots__ = ("_engine", "_fired", "_payload", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        # NOTE: repro.sim.network.Network.send fills these slots manually
        # (skipping this frame) — keep the two in sync.
        self._engine = engine
        self._fired = False
        self._payload: Any = None
        # Lazily allocated: most signals fire with zero or one waiter, and
        # the network fast path creates one signal per message.
        self._waiters: Optional[List[Callable[[Any], None]]] = None
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def payload(self) -> Any:
        if not self._fired:
            raise SimulationError(f"signal {self.name!r} has not fired")
        return self._payload

    def fire(self, payload: Any = None) -> None:
        """Fire the signal once, resuming every current waiter with ``payload``."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._payload = payload
        waiters = self._waiters
        if waiters:
            # Inlined _schedule: one fire per delivered message makes this
            # loop hot (repro.bench.perf network/macro numbers).
            self._waiters = None
            eng = self._engine
            now = eng.now
            heap = eng._heap
            seq = eng._seq
            for cb in waiters:
                seq += 1
                _heappush(heap, (now, seq, cb, payload))
            eng._seq = seq

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        if engine is not self._engine:
            raise SimulationError("signal subscribed from a foreign engine")
        if self._fired:
            engine._schedule(engine.now, callback, self._payload)
        elif self._waiters is None:
            self._waiters = [callback]
        else:
            self._waiters.append(callback)

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Public hook: run ``callback(payload)`` when the signal fires
        (immediately, at the current sim time, if it already has)."""
        self._subscribe(self._engine, callback)


class AllOf(Waitable):
    """Resume when every child waitable has completed; payload is the list
    of child payloads in the original order."""

    __slots__ = ("_engine", "_children")

    def __init__(self, engine: "Engine", children: Iterable[Waitable]):
        self._engine = engine
        self._children = list(children)

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        n = len(self._children)
        if n == 0:
            engine._schedule(engine.now, callback, [])
            return
        results: List[Any] = [None] * n
        remaining = [n]

        def make_cb(i: int) -> Callable[[Any], None]:
            def _cb(value: Any) -> None:
                results[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    callback(results)

            return _cb

        for i, child in enumerate(self._children):
            child._subscribe(engine, make_cb(i))


class Process(Waitable):
    """A running generator.  Waitable: joiners get the generator's return.

    The completion :class:`Signal` is created lazily — a process nobody
    joins (e.g. one network transfer) never allocates it.
    """

    __slots__ = ("_engine", "_gen", "_done", "_finished", "_result", "_step_cb", "name")

    def __init__(self, engine: "Engine", gen: ProcessGen, name: str = ""):
        self._engine = engine
        self._gen = gen
        self._done: Optional[Signal] = None
        self._finished = False
        self._result: Any = None
        #: One closure per process (not per event): resolves gen.send, the
        #: engine, and its heap once, so each resume runs on fast locals
        #: instead of repeated attribute loads and bound-method binding.
        self._step_cb = self._make_step()
        self.name = name

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> Any:
        if not self._finished:
            raise SimulationError(f"process {self.name!r} has not finished")
        return self._result

    def _start(self, start_at: Optional[float] = None) -> None:
        eng = self._engine
        when = eng.now if start_at is None else start_at
        if when < eng.now:
            raise SimulationError(
                f"process {self.name!r} cannot start in the past "
                f"(start_at={when} < now={eng.now})"
            )
        eng._schedule(when, self._step_cb, None)

    def _make_step(self) -> Callable[[Any], None]:
        send = self._gen.send
        eng = self._engine
        heap = eng._heap  # never reassigned (tombstones avoid heap rebuilds)
        push = _heappush

        def step(value: Any) -> None:
            try:
                yielded = send(value)
            except StopIteration as stop:
                self._finished = True
                self._result = stop.value
                if self._done is not None:
                    self._done.fire(stop.value)
                return
            # Type dispatch, commonest waitables first (bare-number delays,
            # then signal waits — the network fast path resolves every send
            # through a Signal): Timeout and Signal resume straight through
            # the heap (inlined _schedule), skipping the generic _subscribe
            # double dispatch.
            cls = yielded.__class__
            if cls is float or cls is int:
                # Zero-allocation timeout: `yield d` == `yield Timeout(d)`
                # with a None payload.  Negative delays land in the past and
                # are rejected by the drain loop's monotonicity check.
                eng._seq = seq = eng._seq + 1
                push(heap, (eng.now + yielded, seq, step, None))
            elif cls is Signal:
                if eng is not yielded._engine:
                    raise SimulationError("signal subscribed from a foreign engine")
                if yielded._fired:
                    eng._seq = seq = eng._seq + 1
                    push(heap, (eng.now, seq, step, yielded._payload))
                elif yielded._waiters is None:
                    yielded._waiters = [step]
                else:
                    yielded._waiters.append(step)
            elif cls is Timeout:
                eng._seq = seq = eng._seq + 1
                push(heap, (eng.now + yielded.delay, seq, step, yielded.value))
            elif isinstance(yielded, Waitable):
                yielded._subscribe(eng, step)
            else:
                raise SimulationError(
                    f"process {self.name!r} yielded {type(yielded).__name__}; "
                    "processes must yield a delay number or "
                    "Timeout/Signal/AllOf/Process"
                )

        return step

    def _join_signal(self) -> Signal:
        if self._done is None:
            self._done = Signal(self._engine, name=self.name + ".done")
            if self._finished:
                # Late subscriber to an already-finished process: fire now
                # so _subscribe resumes it at the current sim time.
                self._done.fire(self._result)
        return self._done

    def _subscribe(self, engine: "Engine", callback: Callable[[Any], None]) -> None:
        self._join_signal()._subscribe(engine, callback)


class EventHandle:
    """A cancellable scheduled event (returned by :meth:`Engine.schedule`).

    ``cancel()`` tombstones the event: the heap entry stays in place and
    the drain loop discards it when popped — O(1) cancellation with no
    heap rebuild.
    """

    __slots__ = ("_engine", "seq", "when", "_cancelled")

    def __init__(self, engine: "Engine", seq: int, when: float):
        self._engine = engine
        self.seq = seq
        self.when = when
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> bool:
        """Cancel the event; returns False if it already ran or was
        already cancelled (cancellation is idempotent)."""
        if self._cancelled:
            return False
        self._cancelled = True
        return self._engine._tombstone(self.seq, self.when)


class Engine:
    """The event loop.  All times are simulated seconds, starting at 0.

    ``calendar`` selects the event-queue backend: ``None``/``True``
    enable the calendar queue + fast-forward window (migrated to
    automatically once the ingest heap crosses ``calendar_threshold``
    pending records — the default threshold only engages at 10k-worker
    scale), ``False`` pins the original binary-heap drain, kept as the
    differential-testing fallback.  Served event order is bit-identical
    either way; ``tests/test_engine_calendar.py`` and
    ``tests/test_engine_fastforward.py`` hold the equivalence proof.
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_events_processed",
        "_daemon_pending",
        "_tombstones",
        "_choice_hook",
        "_cal_enabled",
        "_cal_threshold",
        "_batch",
        "_bi",
        "_cal_buckets",
        "_cal_minheap",
        "_cal_count",
        "_cal_width",
        "_cal_floor",
        "_ff_events_skipped",
        "_ff_windows_collapsed",
        "_cal_sweeps",
        "_elide_enabled",
        "_elidable",
        "_events_elided",
        "_quiet_regions",
        "_pending_hwm",
        "_collapse_enabled",
        "_rounds_collapsed",
        "_round_events_saved",
    )

    def __init__(
        self,
        calendar: Optional[bool] = None,
        calendar_threshold: Optional[int] = None,
        elide: Optional[bool] = None,
        collapse: Optional[bool] = None,
    ) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[Any], None], Any]] = []
        self._seq = 0
        self._events_processed = 0
        self._daemon_pending = 0  # scheduled call_every ticks (see below)
        #: Tombstoned seqs: cancelled events awaiting discard-on-pop.
        self._tombstones: Set[int] = set()
        #: Optional scheduling choice hook (see :meth:`set_choice_hook`).
        self._choice_hook: Optional[Callable[[float, List[Tuple]], int]] = None
        self._cal_enabled = calendar is not False
        if calendar_threshold is None:
            calendar_threshold = _CAL_THRESHOLD
        self._cal_threshold = max(1, calendar_threshold)
        #: Fast-forward window: presorted ``(when, seq, fn, arg)`` records
        #: served by index — ``_batch[_bi:]`` is the live tail.
        self._batch: List[Tuple[float, int, Callable[[Any], None], Any]] = []
        self._bi = 0
        #: Far horizon: bucket key -> unsorted list of records.
        self._cal_buckets: dict = {}
        #: Lazy min-tracking over buckets: (real event when, key) pairs —
        #: exact times, never bucket boundaries, so the refill trigger is
        #: immune to ``int(when / width)`` float rounding.
        self._cal_minheap: List[Tuple[float, int]] = []
        self._cal_count = 0
        self._cal_width = 0.0
        #: Exact earliest event time across all buckets (inf when empty).
        #: Invariant: while any bucket is non-empty, ``now < _cal_floor``.
        self._cal_floor = float("inf")
        self._ff_events_skipped = 0
        self._ff_windows_collapsed = 0
        self._cal_sweeps = 0
        #: Protocol-quiet elision (``elide=False`` keeps the event-by-event
        #: drain as the differential oracle, like ``calendar=False``).
        self._elide_enabled = elide is not False
        #: Callbacks registered via ``spawn(..., elidable=True)``: resumes
        #: that are pure compute-phase completions — a same-timestamp run
        #: of them is a protocol-quiet region the drain may batch-serve.
        self._elidable: Set[Callable[[Any], None]] = set()
        self._events_elided = 0
        self._quiet_regions = 0
        #: Pending-event high-water mark, sampled at queue-maintenance
        #: points (drain entry, sweeps, refills) — not per push.
        self._pending_hwm = 0
        #: Closed-form round fast-forward (``collapse=False`` keeps the
        #: event-by-event protocol rounds as the differential oracle).
        #: The round analytics live in the runner; the engine only
        #: carries the opt-out flag and the credit counters.
        self._collapse_enabled = collapse is not False
        self._rounds_collapsed = 0
        self._round_events_saved = 0

    # -- raw callback scheduling --------------------------------------

    def _schedule(self, when: float, fn: Callable[[Any], None], arg: Any) -> int:
        """Hot-path scheduling (one-arg callback protocol, no validation);
        returns the event seq."""
        self._seq = seq = self._seq + 1
        _heappush(self._heap, (when, seq, fn, arg))
        return seq

    def _tombstone(self, seq: int, when: float) -> bool:
        """Mark a scheduled seq dead; returns False if it already ran
        (events in the past are gone from the heap, so adding a tombstone
        for them would leave it stale forever).  An event scheduled for
        the *current* timestamp may or may not have run yet, so that rare
        boundary pays an O(n) liveness scan; future events are always
        still in the heap and tombstone in O(1)."""
        if when < self.now or seq > self._seq:
            return False
        if when > self.now:
            # Strictly in the future: guaranteed still pending (in the
            # ingest heap, the fast-forward window, or a calendar bucket —
            # the drain discards tombstones wherever the record surfaces).
            self._tombstones.add(seq)
            return True
        # Boundary: scheduled for the current timestamp, may already have
        # run this instant — pay a (rare) liveness scan.  A current-time
        # record can only live in the heap or the window's live tail:
        # bucket events are strictly in the future (now < _cal_floor).
        for entry in self._heap:
            if entry[1] == seq:
                self._tombstones.add(seq)
                return True
        batch = self._batch
        for i in range(self._bi, len(batch)):
            if batch[i][1] == seq:
                self._tombstones.add(seq)
                return True
        return False

    # -- calendar queue + fast-forward window ---------------------------

    def _sweep(self) -> None:
        """Migrate the ingest heap into the window and the calendar.

        One ``sorted()`` pass over the heap; the earliest ``_CAL_NEAR``
        records become (or merge into) the fast-forward window, the far
        horizon is distributed into buckets in O(1) appends per record.
        The heap list is cleared *in place* — its identity is load-bearing
        (``Process._make_step`` captures it; the network pushes to it).
        """
        heap = self._heap
        pend = len(heap) + (len(self._batch) - self._bi) + self._cal_count
        if pend > self._pending_hwm:
            self._pending_hwm = pend
        events = sorted(heap)
        heap.clear()
        self._cal_sweeps += 1
        near = events[: _CAL_NEAR]
        far = events[_CAL_NEAR:]
        if far:
            if self._cal_count == 0:
                # Calendar is empty: (re)derive the bucket width from the
                # observed span — this is the resize point under
                # adversarial clustering (one-per-bucket vs all-same).
                span = far[-1][0] - far[0][0]
                horizon = far[-1][0]
                if span > 0.0 and (horizon <= 0.0
                                   or span / horizon > _CAL_MIN_REL_SPAN):
                    self._cal_width = span / _CAL_BUCKETS
                else:
                    self._cal_width = 0.0
            width = self._cal_width
            if width > 0.0:
                buckets = self._cal_buckets
                minheap = self._cal_minheap
                last_key = None
                for entry in far:
                    key = int(entry[0] / width)
                    b = buckets.get(key)
                    if b is None:
                        buckets[key] = [entry]
                    else:
                        b.append(entry)
                    if key != last_key:
                        # First record of a sorted run into this key: its
                        # time is the run's minimum — push the exact time.
                        _heappush(minheap, (entry[0], key))
                        last_key = key
                self._cal_count += len(far)
                if self._cal_floor > far[0][0]:
                    self._cal_floor = far[0][0]
            else:
                # Degenerate clustering (effectively one timestamp):
                # bucketing would be refill churn — keep it all windowed.
                near = events
        tail = self._batch[self._bi :]
        if tail:
            near = sorted(tail + near)
        self._batch = near
        self._bi = 0

    def _refill(self) -> None:
        """Merge the earliest calendar bucket into the window."""
        pend = len(self._heap) + (len(self._batch) - self._bi) + self._cal_count
        if pend > self._pending_hwm:
            self._pending_hwm = pend
        buckets = self._cal_buckets
        minheap = self._cal_minheap
        while minheap and minheap[0][1] not in buckets:
            _heappop(minheap)  # stale: that bucket was already refilled
        if not minheap:
            self._cal_floor = float("inf")
            return
        key = _heappop(minheap)[1]
        bucket = buckets.pop(key)
        self._cal_count -= len(bucket)
        bucket.sort()
        tail = self._batch[self._bi :]
        if tail:
            bucket = sorted(tail + bucket)
        self._batch = bucket
        self._bi = 0
        while minheap and minheap[0][1] not in buckets:
            _heappop(minheap)
        self._cal_floor = minheap[0][0] if minheap else float("inf")

    def _flush_calendar(self) -> None:
        """Push every windowed/bucketed record back onto the ingest heap.

        Used when a choice hook is installed: schedule exploration
        reasons over one flat tie-group surface, so the calendar
        suspends itself rather than teaching DPOR about windows.
        """
        heap = self._heap
        for entry in self._batch[self._bi :]:
            _heappush(heap, entry)
        self._batch = []
        self._bi = 0
        if self._cal_count:
            for bucket in self._cal_buckets.values():
                for entry in bucket:
                    _heappush(heap, entry)
            self._cal_buckets.clear()
            self._cal_minheap.clear()
            self._cal_count = 0
        self._cal_floor = float("inf")

    @property
    def calendar_enabled(self) -> bool:
        """Whether the calendar/fast-forward backend may engage."""
        return self._cal_enabled

    @property
    def calendar_sweeps(self) -> int:
        """How many times the ingest heap was swept into the calendar."""
        return self._cal_sweeps

    @property
    def events_skipped(self) -> int:
        """Events served from the fast-forward window: per-event heap
        maintenance was skipped (every event still executed)."""
        return self._ff_events_skipped

    @property
    def windows_collapsed(self) -> int:
        """Fully drained fast-forward windows."""
        return self._ff_windows_collapsed

    @property
    def elide_enabled(self) -> bool:
        """Whether protocol-quiet region elision may engage."""
        return self._elide_enabled

    @property
    def events_elided(self) -> int:
        """Events served inside protocol-quiet regions: the clock advanced
        once per region and all per-event merge/refill/tombstone
        bookkeeping was skipped (every callback still executed, in the
        exact order the event-by-event drain would have used)."""
        return self._events_elided

    @property
    def quiet_regions(self) -> int:
        """Protocol-quiet regions batch-served by the drain."""
        return self._quiet_regions

    @property
    def pending_high_water(self) -> int:
        """Largest pending-event population observed, sampled at
        queue-maintenance points (drain entry, sweeps, refills)."""
        pend = len(self._heap) + (len(self._batch) - self._bi) + self._cal_count
        if pend > self._pending_hwm:
            self._pending_hwm = pend
        return self._pending_hwm

    @property
    def collapse_enabled(self) -> bool:
        """Whether closed-form round fast-forward may engage."""
        return self._collapse_enabled

    @property
    def rounds_collapsed(self) -> int:
        """Whole protocol rounds advanced in closed form (no events)."""
        return self._rounds_collapsed

    @property
    def round_events_saved(self) -> int:
        """Events the collapsed rounds would have scheduled and served."""
        return self._round_events_saved

    def credit_collapsed_round(self, events_saved: int) -> None:
        """Account one analytically committed protocol round.

        ``events_saved`` is the exact event census the oracle would have
        scheduled and served for the round.  The clock is *not* advanced
        here: a partial collapse de-vectorizes the first non-quiet round
        at instants that precede the committed rounds' last event, so the
        drain must still be allowed to start from the earlier time.  A
        fully collapsed run (no events left) sets ``now`` to the final
        instant itself before :meth:`run` returns on the empty queue."""
        self._rounds_collapsed += 1
        self._round_events_saved += events_saved

    def _pack(self, fn: Callable[..., None], args: Tuple[Any, ...]):
        """Adapt an external ``fn(*args)`` callback to the one-arg protocol."""
        if not args:
            return _invoke0, fn
        if len(args) == 1:
            return fn, args[0]
        return _invoke_n, (fn, args)

    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` seconds (FIFO at ties)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        cb, arg = self._pack(fn, args)
        self._schedule(self.now + delay, cb, arg)

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule into the past: {when} < {self.now}")
        cb, arg = self._pack(fn, args)
        self._schedule(when, cb, arg)

    def post(self, when: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at absolute time ``when`` on the internal
        one-argument callback protocol.

        This is the public spelling of the hot path that :meth:`call_at`
        wraps: no adapter tuple is allocated and no handle is returned, so
        per-event cost stays at one heap push.  ``fn`` *must* accept exactly
        one positional argument (pack multiple values into a tuple).  The
        network's analytic lane scheduler uses this protocol to post two
        events per message instead of running a transfer process (it binds
        the internal ``_schedule`` directly, which is this method minus the
        past-check — only safe when the timestamp is provably ``>= now``).
        """
        if when < self.now:
            raise SimulationError(f"cannot schedule into the past: {when} < {self.now}")
        self._schedule(when, fn, arg)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Like :meth:`call_in`, but returns a cancellable handle whose
        ``cancel()`` tombstones the pending event in O(1)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        when = self.now + delay
        cb, arg = self._pack(fn, args)
        return EventHandle(self, self._schedule(when, cb, arg), when)

    def call_every(self, interval: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` every ``interval`` seconds as a *daemon*: the tick
        reschedules itself only while non-daemon events remain pending, so
        periodic samplers (metric snapshots) never keep a drained
        simulation alive.  The first tick fires after ``interval``."""
        if interval <= 0:
            raise SimulationError(f"call_every interval must be positive, got {interval}")

        def tick() -> None:
            self._daemon_pending -= 1
            fn()
            # Reschedule only if real work remains beyond other daemon ticks.
            if self.pending_events > self._daemon_pending:
                self._daemon_pending += 1
                self.call_in(interval, tick)

        self._daemon_pending += 1
        self.call_in(interval, tick)

    # -- process/waitable API ------------------------------------------

    def spawn(
        self,
        gen: ProcessGen,
        name: str = "",
        elidable: bool = False,
        start_at: Optional[float] = None,
    ) -> Process:
        """Start a generator as a process; returns a joinable Process.

        ``start_at`` schedules the first resume at an absolute instant at
        or after ``now`` instead of immediately — the round-collapse
        runner uses it to re-materialize workers mid-run at their
        per-worker analytic clocks.  Spawn order still decides seq order
        at equal instants.

        ``elidable=True`` declares that this process's resumes are pure
        compute-phase completions: a same-timestamp run of resumes from
        elidable processes is a *protocol-quiet region* the fast drain
        may batch-serve (advancing the clock once, skipping per-event
        queue bookkeeping).  Callback order is bit-identical either way;
        the declaration only unlocks the cheaper serving mode.  Any
        interleaved non-elidable event at the same instant, or a cancel
        landing mid-region, breaks the region back to event-by-event
        service.  Only mark processes whose resume cannot be invalidated
        by a peer resume at the same timestamp (worker compute phases
        qualify: their sends land strictly later or at higher seq).
        """
        proc = Process(self, gen, name=name)
        if elidable:
            self._elidable.add(proc._step_cb)
        proc._start(start_at)
        return proc

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A waitable that resumes after ``delay`` seconds."""
        return Timeout(delay, value)

    def signal(self, name: str = "") -> Signal:
        """A fresh one-shot signal bound to this engine."""
        return Signal(self, name=name)

    def all_of(self, children: Iterable[Waitable]) -> AllOf:
        """A waitable that completes when every child completes."""
        return AllOf(self, children)

    # -- running --------------------------------------------------------

    def set_choice_hook(
        self, hook: Optional[Callable[[float, List[Tuple]], int]]
    ) -> None:
        """Install (or clear, with ``None``) a scheduling choice hook.

        The default drain resolves same-timestamp ties in scheduling order
        (``seq``).  With a hook installed, every group of two or more live
        events tied at the next timestamp is handed to
        ``hook(when, group)`` — ``group`` is the list of ``(when, seq, fn,
        arg)`` heap entries in seq order — and the returned index picks
        which one runs first; the rest go back on the heap (keeping their
        seqs, so the default FIFO order among them is preserved until the
        hook is consulted again).  Index 0 reproduces the default
        schedule exactly.

        This is the model checker's commutation point
        (:mod:`repro.analysis.explore`): it only affects the slow
        per-event path, never the inlined fast drain, so hookless runs
        pay nothing.  Installing a hook flushes the calendar queue back
        into the flat heap and suspends sweeping for as long as the hook
        stays installed — exploration always reasons over the one flat
        tie-group surface.
        """
        self._choice_hook = hook
        if hook is not None:
            self._flush_calendar()

    def _step_choice(self) -> bool:
        """One event via the choice hook: collect the live tie group at
        the next timestamp, let the hook pick, push the rest back."""
        heap = self._heap
        tombstones = self._tombstones
        group: List[Tuple[float, int, Callable[[Any], None], Any]] = []
        # Pop every live entry tied at the next timestamp (seq order).
        while heap:
            entry = _heappop(heap)
            if tombstones and entry[1] in tombstones:
                tombstones.discard(entry[1])
                continue
            if not group:
                group.append(entry)
            elif entry[0] <= group[0][0]:
                group.append(entry)
            else:
                _heappush(heap, entry)
                break
        if not group:
            return False
        choice = 0
        if len(group) > 1:
            choice = self._choice_hook(group[0][0], group)
            if not 0 <= choice < len(group):
                raise SimulationError(
                    f"choice hook returned {choice} for a group of {len(group)}"
                )
            for i, entry in enumerate(group):
                if i != choice:
                    _heappush(heap, entry)
        when, _seq, fn, arg = group[choice]
        if when < self.now:
            raise SimulationError("event heap corrupted: time went backwards")
        self.now = when
        self._events_processed += 1
        fn(arg)
        return True

    def step(self) -> bool:
        """Run one event; returns False when the queue is empty."""
        if self._choice_hook is not None:
            if self._bi < len(self._batch) or self._cal_count:
                self._flush_calendar()
            return self._step_choice()
        heap = self._heap
        tombstones = self._tombstones
        while True:
            batch = self._batch
            bi = self._bi
            if bi < len(batch):
                entry = batch[bi]
                if self._cal_count and entry[0] >= self._cal_floor:
                    self._refill()
                    continue
                if heap and heap[0] < entry:
                    when, seq, fn, arg = _heappop(heap)
                    if tombstones and seq in tombstones:
                        tombstones.discard(seq)
                        continue
                else:
                    self._bi = bi + 1
                    when, seq, fn, arg = entry
                    if tombstones and seq in tombstones:
                        tombstones.discard(seq)
                        continue
                    self._ff_events_skipped += 1
            elif batch:
                self._batch = []
                self._bi = 0
                self._ff_windows_collapsed += 1
                continue
            elif heap:
                if self._cal_count and heap[0][0] >= self._cal_floor:
                    self._refill()
                    continue
                when, seq, fn, arg = _heappop(heap)
                if tombstones and seq in tombstones:
                    tombstones.discard(seq)
                    continue
            elif self._cal_count:
                self._refill()
                continue
            else:
                return False
            if when < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            self.now = when
            self._events_processed += 1
            fn(arg)
            return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain events (optionally only up to time ``until``); returns now."""
        if until is None and max_events is None:
            if self._choice_hook is not None:
                # Choice-hook runs route through the per-event slow path:
                # correctness tooling, not a perf surface.
                if self._bi < len(self._batch) or self._cal_count:
                    self._flush_calendar()
                while self._step_choice():
                    pass
                return self.now
            # Fast drain: the inlined loop over local refs is what every
            # full simulation pays per event (see repro.bench.perf).  The
            # gen-0 GC threshold is raised for the drain (see module
            # docstring) and restored even if a callback raises; drains
            # starting at 10k-worker-scale pending counts also freeze the
            # long-lived object graph for the duration.
            heap = self._heap
            tombstones = self._tombstones
            pop = _heappop
            processed = 0
            saved_thresholds = gc.get_threshold()
            gc.set_threshold(
                max(saved_thresholds[0], _GC_DRAIN_GEN0), *saved_thresholds[1:]
            )
            pend = len(heap) + (len(self._batch) - self._bi) + self._cal_count
            if pend > self._pending_hwm:
                self._pending_hwm = pend
            frozen = pend >= _GC_FREEZE_PENDING
            if frozen:
                gc.collect()
                gc.freeze()
            skipped = 0
            collapsed = 0
            elided = 0
            regions = 0
            elidable = self._elidable
            elide_on = self._elide_enabled and bool(elidable)
            try:
                if not self._cal_enabled:
                    # Differential fallback (calendar=False): the original
                    # heap-only drain, bit for bit.
                    while heap:
                        when, seq, fn, arg = pop(heap)
                        if tombstones and seq in tombstones:
                            tombstones.discard(seq)
                            continue
                        if when < self.now:
                            raise SimulationError(
                                "event heap corrupted: time went backwards"
                            )
                        self.now = when
                        processed += 1
                        fn(arg)
                    return self.now
                threshold = self._cal_threshold
                while True:
                    batch = self._batch
                    bi = self._bi
                    blen = len(batch)
                    if bi >= blen:
                        if blen:
                            self._batch = []
                            self._bi = 0
                            collapsed += 1
                        if self._cal_count and (
                            not heap or heap[0][0] >= self._cal_floor
                        ):
                            self._refill()
                            continue
                        if not heap:
                            break
                        # Pre-migration regime (and between windows): a
                        # tight heap-only loop — callbacks can only push,
                        # never create a window, so `heap` stays the sole
                        # event source until a sweep triggers or a
                        # bucketed timestamp comes due.
                        floor = self._cal_floor
                        while heap:
                            if len(heap) > threshold:
                                self._sweep()
                                break
                            entry = heap[0]
                            if entry[0] >= floor:
                                self._refill()
                                break
                            pop(heap)
                            when, seq, fn, arg = entry
                            if tombstones and seq in tombstones:
                                tombstones.discard(seq)
                                continue
                            if when < self.now:
                                raise SimulationError(
                                    "event heap corrupted: time went backwards"
                                )
                            self.now = when
                            processed += 1
                            if elide_on and fn in elidable and heap:
                                top = heap[0]
                                if top[0] == when and top[2] in elidable:
                                    # Protocol-quiet region (heap regime):
                                    # a same-timestamp run of elidable
                                    # resumes.  Serve it without per-event
                                    # clock/floor/sweep bookkeeping; a
                                    # cancel (tombstones turns truthy) or
                                    # any non-elidable event surfacing at
                                    # this instant breaks the region back
                                    # to event-by-event service.
                                    fn(arg)
                                    count = 1
                                    while not tombstones and heap:
                                        top = heap[0]
                                        if top[0] != when or top[2] not in elidable:
                                            break
                                        pop(heap)
                                        count += 1
                                        top[2](top[3])
                                    processed += count - 1
                                    elided += count
                                    regions += 1
                                    continue
                            fn(arg)
                        continue
                    # Window live: serve the 2-way merge of the presorted
                    # batch and the ingest heap.  New events that land
                    # inside the window (DPR wakeups, wire deliveries)
                    # win the tuple comparison and run first — served
                    # order stays bit-identical to the pure heap.
                    entry = batch[bi]
                    if self._cal_count and entry[0] >= self._cal_floor:
                        self._refill()
                        continue
                    if heap and heap[0] < entry:
                        when, seq, fn, arg = pop(heap)
                        if tombstones and seq in tombstones:
                            tombstones.discard(seq)
                            continue
                        if when < self.now:
                            raise SimulationError(
                                "event heap corrupted: time went backwards"
                            )
                        self.now = when
                        processed += 1
                        fn(arg)
                        if len(heap) > threshold:
                            self._sweep()
                        continue
                    when, seq, fn, arg = entry
                    if tombstones and seq in tombstones:
                        self._bi = bi + 1
                        tombstones.discard(seq)
                        continue
                    if when < self.now:
                        raise SimulationError(
                            "event heap corrupted: time went backwards"
                        )
                    if (
                        elide_on
                        and fn in elidable
                        and bi + 1 < blen
                        and batch[bi + 1][0] == when
                        and batch[bi + 1][2] in elidable
                    ):
                        # Protocol-quiet region (window regime): advance
                        # the clock once and serve the same-timestamp run
                        # of elidable resumes with no per-event merge /
                        # refill / clock bookkeeping.  Window seqs always
                        # predate heap seqs (sweeps clear the heap), so a
                        # heap entry can never win a same-instant tie —
                        # but a re-post landing at this instant, or a
                        # cancel (tombstones turns truthy), conservatively
                        # breaks the region back to event-by-event
                        # service.  ``_bi`` advances before each callback
                        # so the tombstone boundary scan still sees the
                        # unserved tail.
                        self.now = when
                        j = bi
                        while j < blen and not tombstones:
                            e = batch[j]
                            if e[0] != when or e[2] not in elidable:
                                break
                            if heap and heap[0][0] <= when:
                                break
                            j = j + 1
                            self._bi = j
                            e[2](e[3])
                        count = j - bi
                        if count:
                            processed += count
                            skipped += count
                            elided += count
                            regions += 1
                            continue
                    self._bi = bi + 1
                    self.now = when
                    processed += 1
                    skipped += 1
                    fn(arg)
            finally:
                self._events_processed += processed
                self._ff_events_skipped += skipped
                self._ff_windows_collapsed += collapsed
                self._events_elided += elided
                self._quiet_regions += regions
                gc.set_threshold(*saved_thresholds)
                if frozen:
                    gc.unfreeze()
            return self.now
        budget = max_events if max_events is not None else float("inf")
        while budget > 0 and (
            self._heap or self._cal_count or self._bi < len(self._batch)
        ):
            if until is not None and self._next_live_when() > until:
                self.now = until
                return self.now
            if self.step():
                budget -= 1
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _next_live_when(self) -> float:
        """Timestamp of the next non-tombstoned event (inf if none)."""
        heap = self._heap
        tombstones = self._tombstones
        while True:
            batch = self._batch
            bi = self._bi
            bwhen = float("inf")
            while bi < len(batch):
                entry = batch[bi]
                if tombstones and entry[1] in tombstones:
                    tombstones.discard(entry[1])
                    bi += 1
                    continue
                bwhen = entry[0]
                break
            self._bi = bi
            hwhen = float("inf")
            while heap:
                top = heap[0]
                if tombstones and top[1] in tombstones:
                    _heappop(heap)
                    tombstones.discard(top[1])
                    continue
                hwhen = top[0]
                break
            nxt = bwhen if bwhen <= hwhen else hwhen
            if self._cal_count and nxt >= self._cal_floor:
                # The calendar may hold an earlier event than either
                # visible head — surface its min bucket and re-resolve.
                self._refill()
                continue
            return nxt

    @property
    def pending_events(self) -> int:
        return (
            len(self._heap)
            + (len(self._batch) - self._bi)
            + self._cal_count
            - len(self._tombstones)
        )

    @property
    def events_processed(self) -> int:
        return self._events_processed


class Resource:
    """FIFO resource with integer capacity (models a NIC lane, a GPU...).

    ``acquire()`` returns a :class:`Signal` the caller yields on; the
    payload is an opaque grant token that must be passed to ``release``.
    Uncontended acquires reuse one shared pre-fired grant signal, so the
    fast path allocates nothing (the incast hot loop acquires and
    releases one lane per message).
    """

    __slots__ = ("_engine", "_capacity", "_in_use", "_queue", "_granted", "name")

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self._engine = engine
        self._capacity = capacity
        self._in_use = 0
        self._queue: List[Signal] = []
        self.name = name
        # Shared immediate-grant signal: fired signals are immutable, so
        # every uncontended acquire can hand back the same one.
        self._granted = Signal(engine, name=name + ".grant")
        self._granted._fired = True
        self._granted._payload = self

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self) -> Signal:
        """Request the resource; yield the returned signal to wait for grant."""
        if self._in_use < self._capacity:
            self._in_use += 1
            return self._granted
        sig = Signal(self._engine, name=self.name + ".grant")
        self._queue.append(sig)
        return sig

    def release(self) -> None:
        """Release one grant, waking the next FIFO waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.pop(0)
            nxt.fire(self)
        else:
            self._in_use -= 1

    def use(self, hold: float) -> ProcessGen:
        """Process body: acquire, hold for ``hold`` seconds, release."""
        yield self.acquire()
        yield Timeout(hold)
        self.release()


class Store:
    """Unbounded FIFO message queue with blocking ``get``."""

    __slots__ = ("_engine", "_items", "_getters", "name")

    def __init__(self, engine: Engine, name: str = ""):
        self._engine = engine
        self._items: List[Any] = []
        self._getters: List[Signal] = []
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item, waking the oldest blocked getter if any."""
        if self._getters:
            sig = self._getters.pop(0)
            sig.fire(item)
        else:
            self._items.append(item)

    def get(self) -> Signal:
        """A signal fired with the next item (immediately if one is queued)."""
        sig = Signal(self._engine, name=self.name)
        if self._items:
            sig._fired = True
            sig._payload = self._items.pop(0)
        else:
            self._getters.append(sig)
        return sig
