"""Per-iteration compute-time models, including straggler distributions.

"Even in a load-balanced cluster, some worker nodes are randomly slower
than other nodes" (paper §I, citing Project Adam).  The synchronization
models exist to tolerate exactly this variance, so the distribution is a
first-class experimental knob.  Every model maps a *base* iteration time
(model FLOPs / node FLOP rate) to a sampled duration; all draw from a
dedicated named RNG stream so runs are reproducible.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class ComputeModel(abc.ABC):
    """Samples the duration of one gradient-computation step."""

    @abc.abstractmethod
    def sample(
        self,
        worker: int,
        iteration: int,
        base_time: float,
        rng: np.random.Generator,
    ) -> float:
        """Return the duration (seconds) of ``iteration`` on ``worker``."""

    def mean_factor(self) -> float:
        """Approximate expected slowdown multiplier (for analytic sizing)."""
        return 1.0


class DeterministicCompute(ComputeModel):
    """No variance: every iteration takes ``factor * base_time``."""

    def __init__(self, factor: float = 1.0):
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.factor = factor

    def sample(self, worker, iteration, base_time, rng):
        return self.factor * base_time

    def mean_factor(self) -> float:
        return self.factor


class LogNormalCompute(ComputeModel):
    """Multiplicative log-normal jitter — the usual cloud-VM noise model.

    duration = base_time * exp(N(0, sigma)); sigma≈0.2 gives the mild,
    persistent variance of a load-balanced cluster.
    """

    def __init__(self, sigma: float = 0.2):
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma

    def sample(self, worker, iteration, base_time, rng):
        return base_time * float(np.exp(rng.normal(0.0, self.sigma)))

    def mean_factor(self) -> float:
        return float(np.exp(self.sigma**2 / 2))


class ExponentialTailCompute(ComputeModel):
    """Occasional exponential slowdowns: with probability ``p_slow`` an
    iteration takes an extra Exp(mean = ``tail_scale * base_time``).

    Reproduces the 'randomly slower nodes' of Project Adam: most
    iterations are nominal, a few are badly delayed.
    """

    def __init__(self, p_slow: float = 0.1, tail_scale: float = 2.0, jitter_sigma: float = 0.1):
        if not 0 <= p_slow <= 1:
            raise ValueError(f"p_slow must be in [0,1], got {p_slow}")
        if tail_scale < 0:
            raise ValueError(f"tail_scale must be >= 0, got {tail_scale}")
        self.p_slow = p_slow
        self.tail_scale = tail_scale
        self.jitter = LogNormalCompute(jitter_sigma)

    def sample(self, worker, iteration, base_time, rng):
        t = self.jitter.sample(worker, iteration, base_time, rng)
        if rng.random() < self.p_slow:
            t += float(rng.exponential(self.tail_scale * base_time))
        return t

    def mean_factor(self) -> float:
        return self.jitter.mean_factor() + self.p_slow * self.tail_scale


class ParetoTailCompute(ComputeModel):
    """Heavy (Pareto) tail — stress case beyond the paper's clusters."""

    def __init__(self, alpha: float = 3.0, scale: float = 0.3):
        if alpha <= 1:
            raise ValueError(f"alpha must be > 1 for finite mean, got {alpha}")
        if scale < 0:
            raise ValueError(f"scale must be >= 0, got {scale}")
        self.alpha = alpha
        self.scale = scale

    def sample(self, worker, iteration, base_time, rng):
        return base_time * (1.0 + self.scale * float(rng.pareto(self.alpha)))

    def mean_factor(self) -> float:
        return 1.0 + self.scale / (self.alpha - 1)


class TransientStragglerCompute(ComputeModel):
    """A rotating straggler: in each window of ``period`` iterations one
    worker runs ``slow_factor`` times slower for ``duration`` iterations.

    This is the adversarial case for BSP (the barrier tracks the
    straggler) and the motivating case for SSP/PSSP.
    """

    def __init__(
        self,
        n_workers: int,
        slow_factor: float = 3.0,
        period: int = 50,
        duration: int = 10,
        jitter_sigma: float = 0.05,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if slow_factor < 1:
            raise ValueError(f"slow_factor must be >= 1, got {slow_factor}")
        if not 0 < duration <= period:
            raise ValueError("need 0 < duration <= period")
        self.n_workers = n_workers
        self.slow_factor = slow_factor
        self.period = period
        self.duration = duration
        self.jitter = LogNormalCompute(jitter_sigma)

    def straggler_at(self, iteration: int) -> int:
        """Which worker is (potentially) slow during this window."""
        return (iteration // self.period) % self.n_workers

    def is_slow(self, worker: int, iteration: int) -> bool:
        return (
            self.straggler_at(iteration) == worker
            and iteration % self.period < self.duration
        )

    def sample(self, worker, iteration, base_time, rng):
        t = self.jitter.sample(worker, iteration, base_time, rng)
        if self.is_slow(worker, iteration):
            t *= self.slow_factor
        return t

    def mean_factor(self) -> float:
        frac = self.duration / (self.period * self.n_workers)
        return self.jitter.mean_factor() * (1 + frac * (self.slow_factor - 1))


class HeterogeneousCompute(ComputeModel):
    """Persistent per-worker speed differences plus mild jitter.

    Models a shared/oversubscribed CPU cluster (the paper's 64/128-worker
    scalability cluster): worker w runs at a fixed multiplier spread
    evenly over ``[1, 1+spread]``.  Persistent rate differences make the
    progress gap grow *linearly* until the staleness bound pins it — the
    regime where SSP's soft barrier fires every iteration for every fast
    worker regardless of the threshold, and where PSSP's probabilistic
    pass-through saves up to 97% of DPRs (Figure 9).
    """

    def __init__(self, n_workers: int, spread: float = 0.3, jitter_sigma: float = 0.02,
                 p_slow: float = 0.0, tail_scale: float = 2.0):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if spread < 0:
            raise ValueError(f"spread must be >= 0, got {spread}")
        self.n_workers = n_workers
        self.spread = spread
        self.tail = ExponentialTailCompute(p_slow, tail_scale, jitter_sigma)

    def rate_factor(self, worker: int) -> float:
        """Fixed slowdown multiplier of one worker (1 = fastest)."""
        if self.n_workers == 1:
            return 1.0
        return 1.0 + self.spread * worker / (self.n_workers - 1)

    def sample(self, worker, iteration, base_time, rng):
        return self.rate_factor(worker) * self.tail.sample(worker, iteration, base_time, rng)

    def mean_factor(self) -> float:
        return (1.0 + self.spread / 2.0) * self.tail.mean_factor()


def gpu_cluster_compute() -> ComputeModel:
    """Default compute model for the paper's GPU cluster: homogeneous
    dedicated nodes, tiny jitter, rare multi-iteration stalls (EBS/NFS
    hiccups, preemption on shared EC2 hosts)."""
    return ExponentialTailCompute(p_slow=0.004, tail_scale=4.0, jitter_sigma=0.01)


def cpu_cluster_compute(n_workers: int) -> ComputeModel:
    """Default compute model for the paper's shared CPU cluster:
    persistent heterogeneity plus occasional stalls."""
    return HeterogeneousCompute(
        n_workers, spread=0.3, jitter_sigma=0.02, p_slow=0.005, tail_scale=2.0
    )


def make_compute_model(name: str, n_workers: Optional[int] = None, **kwargs) -> ComputeModel:
    """Factory keyed by name — used by benches to sweep straggler regimes."""
    name = name.lower()
    if name in ("deterministic", "none"):
        return DeterministicCompute(**kwargs)
    if name in ("lognormal", "jitter"):
        return LogNormalCompute(**kwargs)
    if name in ("exponential", "exp-tail"):
        return ExponentialTailCompute(**kwargs)
    if name in ("pareto", "heavy-tail"):
        return ParetoTailCompute(**kwargs)
    if name in ("transient", "rotating"):
        if n_workers is None:
            raise ValueError("transient straggler model needs n_workers")
        return TransientStragglerCompute(n_workers=n_workers, **kwargs)
    if name in ("heterogeneous", "hetero"):
        if n_workers is None:
            raise ValueError("heterogeneous compute model needs n_workers")
        return HeterogeneousCompute(n_workers=n_workers, **kwargs)
    raise ValueError(f"unknown compute model {name!r}")
