"""Network model: NICs, point-to-point transfers, incast contention.

Transfers serialize on the sender's TX lane and the receiver's RX lane
(store-and-forward approximation).  RX serialization is what reproduces
the parameter-server *incast* bottleneck: when N workers push gradients to
one server simultaneously, the server NIC drains them one at a time, which
is exactly why PS-Lite's imbalanced default slicing makes communication
time dominate at scale (paper §II-B, Figure 6).

All sizes are bytes, all rates bytes/second, all times seconds.

Two scheduling paths produce identical timestamps (see
``docs/PERFORMANCE.md``, "The wire fast path"):

- **Analytic lane scheduler** (default): both NIC lanes are plain
  capacity-1 FIFOs, so a transfer's timeline is a closed-form function of
  each lane's ``free_at`` cursor.  ``send`` advances the TX cursor and
  posts one event at TX completion; that event claims the RX cursor and
  posts the delivery event.  Two heap events per message, no process.
- **Process fallback**: a generator per message that acquires the lane
  ``Resource`` objects explicitly.  Required when ``fabric_concurrency``
  caps simultaneous transfers (the cursors cannot express a shared cap);
  also selectable via ``Network(..., analytic=False)`` for differential
  testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush as _heappush
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Engine, Resource, Signal, Store

_SIGNAL_NEW = Signal.__new__


@dataclass(frozen=True)
class NicSpec:
    """Per-node network interface: full-duplex bandwidth + fixed overhead."""

    bandwidth_Bps: float
    overhead_s: float = 20e-6  # per-message software/serialization overhead

    def __post_init__(self) -> None:
        if self.bandwidth_Bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_Bps}")
        if self.overhead_s < 0:
            raise ValueError(f"overhead must be >= 0, got {self.overhead_s}")

    def serialize_time(self, size_bytes: int) -> float:
        return self.overhead_s + size_bytes / self.bandwidth_Bps


@dataclass(slots=True)
class Message:
    """One transfer on the wire.

    ``msg_id`` is assigned by :meth:`Network.send` from a per-``Network``
    counter, so identically-seeded runs in one process see identical id
    streams (a module-global counter would leak state across runs).

    ``cause_id`` threads the causal trace through the wire: the sender
    sets it to the causal span that produced the message, and delivery
    rewrites it to the receive-side span id, so the receiver can chain
    its own spans onto the message's history (-1 when tracing is off).
    """

    src: str
    dst: str
    size_bytes: int
    tag: str = ""
    payload: Any = None
    msg_id: int = -1
    send_time: float = -1.0
    deliver_time: float = -1.0
    cause_id: int = -1


_MESSAGE_NEW = Message.__new__


class Endpoint:
    """A node's attachment point: NIC lanes plus a FIFO inbox."""

    __slots__ = (
        "node_id",
        "nic",
        "tx",
        "rx",
        "inbox",
        "sink",
        "bytes_sent",
        "bytes_received",
        "messages_sent",
        "messages_received",
        "tx_busy_s",
        "rx_busy_s",
        "tx_free_at",
        "rx_free_at",
        "_ser_times",
    )

    def __init__(self, engine: Engine, node_id: str, nic: NicSpec):
        self.node_id = node_id
        self.nic = nic
        self.tx = Resource(engine, capacity=1, name=f"{node_id}.tx")
        self.rx = Resource(engine, capacity=1, name=f"{node_id}.rx")
        self.inbox = Store(engine, name=f"{node_id}.inbox")
        #: Direct-dispatch hook: when set, delivered messages are handed
        #: to ``sink(msg)`` synchronously inside the delivery event
        #: instead of being appended to :attr:`inbox` — no Store/Signal
        #: round-trip, no resume event.  The consumer owns its own FIFO
        #: discipline (see the runner's busy-window dispatcher).
        self.sink: Optional[Callable[["Message"], None]] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.tx_busy_s = 0.0  # cumulative time the TX lane spent serializing
        self.rx_busy_s = 0.0  # cumulative time the RX lane spent draining
        #: Analytic lane cursors: earliest time each FIFO lane is free.
        #: Only the analytic fast path reads/advances these; the process
        #: fallback serializes on the ``Resource`` lanes above instead.
        self.tx_free_at = 0.0
        self.rx_free_at = 0.0
        #: Serialize-time memo: PS traffic repeats a handful of message
        #: sizes (shard push/pull), so the per-size time is computed once.
        self._ser_times: Dict[int, float] = {}

    def serialize_time(self, size_bytes: int) -> float:
        """Memoized :meth:`NicSpec.serialize_time` for this endpoint."""
        t = self._ser_times.get(size_bytes)
        if t is None:
            t = self._ser_times[size_bytes] = self.nic.serialize_time(size_bytes)
        return t

    def tx_utilization(self, now: float) -> float:
        """Fraction of elapsed sim time the TX lane was serializing."""
        return self.tx_busy_s / now if now > 0 else 0.0

    def rx_utilization(self, now: float) -> float:
        """Fraction of elapsed sim time the RX lane was draining."""
        return self.rx_busy_s / now if now > 0 else 0.0


class Network:
    """Point-to-point fabric connecting registered endpoints."""

    __slots__ = (
        "engine",
        "latency_s",
        "endpoints",
        "analytic",
        "total_bytes",
        "total_messages",
        "bytes_in_flight",
        "messages_in_flight",
        "fast_path_transfers",
        "fallback_transfers",
        "fuse_delivery",
        "fused_deliveries",
        "causal",
        "delay_hook",
        "_next_msg_id",
        "_fabric",
        "_delivery_hooks",
        "_tx_done_cb",
        "_deliver_cb",
    )

    def __init__(
        self,
        engine: Engine,
        latency_s: float = 50e-6,
        fabric_concurrency: Optional[int] = None,
        analytic: Optional[bool] = None,
    ):
        """``fabric_concurrency`` optionally caps simultaneous transfers,
        modelling an oversubscribed aggregate fabric.

        ``analytic`` selects the scheduling path: ``None`` (default) picks
        the analytic lane scheduler exactly when no fabric cap is set;
        ``False`` forces the process fallback (differential testing);
        ``True`` with a fabric cap is an error — lane cursors cannot model
        a shared concurrency limit.
        """
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        if analytic and fabric_concurrency is not None:
            raise ValueError("analytic lane scheduling cannot model fabric_concurrency")
        self.engine = engine
        self.latency_s = latency_s
        self.endpoints: Dict[str, Endpoint] = {}
        self._next_msg_id = 0  # per-Network: id streams reset per run
        self._fabric: Optional[Resource] = (
            Resource(engine, capacity=fabric_concurrency, name="fabric")
            if fabric_concurrency is not None
            else None
        )
        #: Mutable per-send switch: flip to ``False`` before sending to
        #: route traffic through the process fallback on an existing net.
        self.analytic = (fabric_concurrency is None) if analytic is None else bool(analytic)
        self.total_bytes = 0
        self.total_messages = 0
        self.bytes_in_flight = 0  # sent but not yet delivered
        self.messages_in_flight = 0
        #: Scheduling-path counters (scraped by ``repro.obs.snapshot``).
        self.fast_path_transfers = 0
        self.fallback_transfers = 0
        #: Fused delivery (set by the runner's analytic drain lanes): a
        #: signal-free send to a sink endpoint folds its delivery into the
        #: TX-completion event — ``msg.deliver_time`` carries the exact
        #: RX-drain instant, the sink runs with that virtual clock, and
        #: the per-message delivery event disappears.  Only engaged when
        #: nothing can observe real-time delivery (no signal, no delivery
        #: hooks); timings are bit-identical because the RX cursor math is
        #: unchanged and sinks time themselves off ``deliver_time``.
        self.fuse_delivery = False
        self.fused_deliveries = 0
        #: Causal span sink (a :class:`repro.obs.causal.CausalTrace`);
        #: ``None`` keeps the wire paths recording-free.  Recording only
        #: *reads* the already-fixed timeline, so timestamps are
        #: bit-identical with tracing on or off.
        self.causal = None
        #: Optional bounded delivery perturbation: ``delay_hook(msg)``
        #: returns extra seconds of RX-side hold for that message.  The
        #: extra time extends the receiver's RX cursor (fast path) or the
        #: drain yield (fallback), so per-(src, dst) FIFO ordering — the
        #: push-before-pull contract the runner relies on — is preserved;
        #: only cross-sender arrival interleavings change.  Used by the
        #: schedule explorer (:mod:`repro.analysis.explore`).
        self.delay_hook: Optional[Callable[[Message], float]] = None
        self._delivery_hooks: List[Callable[[Message], None]] = []
        #: Hot-path bindings: one attribute load instead of a descriptor
        #: walk per event.  The fast path pushes ``(when, seq, fn, arg)``
        #: entries straight onto the engine heap (the body of
        #: ``Engine._schedule``, inlined) — safe because every analytic
        #: timestamp is ``max(now, cursor) + hold`` with non-negative
        #: holds, so nothing lands in the past (:meth:`Engine.post` is the
        #: checked public spelling of the same protocol).
        self._tx_done_cb = self._fast_tx_done
        self._deliver_cb = self._fast_deliver

    def add_node(self, node_id: str, nic: NicSpec) -> Endpoint:
        if node_id in self.endpoints:
            raise ValueError(f"duplicate node id {node_id!r}")
        ep = Endpoint(self.engine, node_id, nic)
        self.endpoints[node_id] = ep
        return ep

    def endpoint(self, node_id: str) -> Endpoint:
        try:
            return self.endpoints[node_id]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def on_delivery(self, hook: Callable[[Message], None]) -> None:
        """Register a hook called (in sim time) whenever a message lands."""
        self._delivery_hooks.append(hook)

    def send(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        payload: Any = None,
        tag: str = "",
        deliver_to_inbox: bool = True,
        cause: int = -1,
        notify: bool = True,
        at: float = -1.0,
        on_deliver: Optional[Callable[[Message], None]] = None,
    ) -> Optional[Signal]:
        """Start a transfer; returns a Signal fired with the Message upon
        delivery.  The message is also appended to the destination inbox
        (unless ``deliver_to_inbox=False`` for pure timing probes).
        ``cause`` is the sender's causal span id (ignored unless a causal
        trace is attached via :attr:`causal`).  ``notify=False`` skips the
        delivery signal entirely and returns ``None`` — for callers that
        never subscribe (the runner's push/pull requests), saving one
        signal allocation per message at incast rates.  Timing is
        identical either way: the signal only ever *observes* delivery.
        ``at`` (>= ``engine.now``) sends from a virtual instant instead of
        the engine clock — the runner's analytic drain lanes use it so a
        reply issued from a cascaded handle time serializes exactly when
        the event-driven drain would have sent it.  ``on_deliver`` runs a
        plain callback inline inside the delivery event instead of firing
        a Signal — one event and one allocation cheaper per message than
        subscribing; it supersedes ``notify`` and the call returns None."""
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        # ``src``/``dst`` may be Endpoint objects instead of node ids: at
        # 100k workers the endpoint registry is a large dict and the two
        # lookups per send are cache misses; hot callers (the runner)
        # memoize their endpoints and skip the registry entirely.
        if src.__class__ is str:
            try:
                src_ep = self.endpoints[src]
            except KeyError as missing:
                raise KeyError(f"unknown node {missing.args[0]!r}") from None
        else:
            src_ep = src
            src = src_ep.node_id
        if dst.__class__ is str:
            try:
                dst_ep = self.endpoints[dst]
            except KeyError as missing:
                raise KeyError(f"unknown node {missing.args[0]!r}") from None
        else:
            dst_ep = dst
            dst = dst_ep.node_id
        engine = self.engine
        now = engine.now
        if at >= 0.0:
            if at < now:
                raise ValueError(f"cannot send from the past: {at} < {now}")
            now = at
        # Manual slot fills mirror Message.__init__ / Signal.__init__ (keep
        # in sync): skipping the constructor frames saves ~100 ns per
        # message, which is real money at incast rates.  The signal's
        # constant name avoids per-message f-string churn (the Message
        # carries src/dst/tag already).
        msg = _MESSAGE_NEW(Message)
        msg.src = src
        msg.dst = dst
        msg.size_bytes = size_bytes
        msg.tag = tag
        msg.payload = payload
        msg.msg_id = mid = self._next_msg_id
        self._next_msg_id = mid + 1
        msg.send_time = now
        msg.deliver_time = -1.0
        msg.cause_id = cause
        self.bytes_in_flight += size_bytes
        self.messages_in_flight += 1
        if on_deliver is not None:
            done = on_deliver
        elif notify:
            done = _SIGNAL_NEW(Signal)
            done._engine = engine
            done._fired = False
            done._payload = None
            done._waiters = None
            done.name = "deliver"
        else:
            done = None
        if self.analytic:
            # Analytic fast path: the TX lane is a capacity-1 FIFO, so
            # this transfer starts serializing the instant the lane frees.
            # max(now, free_at) + hold is the same float addition the
            # process path performs via resume timestamps, so the cursors
            # reproduce its timeline bit for bit.  rx_hold and arrival are
            # precomputed here (both are pure functions of size and tx_end)
            # so the TX-completion event does no lookups of its own; the
            # serialize-time memo is inlined (same dict as
            # :meth:`Endpoint.serialize_time`) to skip two calls per send.
            self.fast_path_transfers += 1
            ser = src_ep._ser_times
            tx_hold = ser.get(size_bytes)
            if tx_hold is None:
                tx_hold = ser[size_bytes] = src_ep.nic.serialize_time(size_bytes)
            ser = dst_ep._ser_times
            rx_hold = ser.get(size_bytes)
            if rx_hold is None:
                rx_hold = ser[size_bytes] = dst_ep.nic.serialize_time(size_bytes)
            tx_free = src_ep.tx_free_at
            tx_end = (tx_free if tx_free > now else now) + tx_hold
            src_ep.tx_free_at = tx_end
            engine._seq = seq = engine._seq + 1
            _heappush(
                engine._heap,
                (
                    tx_end,
                    seq,
                    self._tx_done_cb,
                    (
                        msg,
                        src_ep,
                        dst_ep,
                        done,
                        deliver_to_inbox,
                        tx_hold,
                        rx_hold,
                        tx_end + self.latency_s,
                    ),
                ),
            )
        else:
            self.fallback_transfers += 1
            self.engine.spawn(
                self._transfer(msg, src_ep, dst_ep, done, deliver_to_inbox),
                name="xfer",
            )
        return done

    def _fast_tx_done(self, packed) -> None:
        """TX lane released (fast path): book TX stats, claim the RX lane.

        Runs at the transfer's TX-completion instant.  Propagation latency
        is a network-wide constant, so arrival order equals TX-completion
        event order — claiming the RX cursor here reproduces the FIFO
        arrival order the process path gets from ``Resource`` queueing.
        (``arrival`` was precomputed at send time as ``tx_end + latency``;
        the heap hands back ``tx_end`` bit-exact, so it equals the
        ``engine.now + latency`` the process path computes here.)
        """
        msg, src_ep, dst_ep, done, deliver_to_inbox, tx_hold, rx_hold, arrival = packed
        src_ep.tx_busy_s += tx_hold
        src_ep.bytes_sent += msg.size_bytes
        src_ep.messages_sent += 1
        rx_free = dst_ep.rx_free_at
        rx_end = (rx_free if rx_free > arrival else arrival) + rx_hold
        delay_hook = self.delay_hook
        if delay_hook is not None:
            extra = delay_hook(msg)
            if extra < 0:
                raise ValueError(f"delay_hook returned negative delay {extra}")
            rx_end += extra
        dst_ep.rx_free_at = rx_end
        causal = self.causal
        if causal is not None:
            # Pure bookkeeping over timestamps that are already fixed
            # (send_time, tx_end = engine.now, arrival, rx_end): the
            # timeline is bit-identical whether or not this branch runs.
            # Subtracting tx_hold can land one ulp before send_time for an
            # uncontended TX lane; clamp so the queue span never inverts.
            tx_start = self.engine.now - tx_hold
            if tx_start < msg.send_time:
                tx_start = msg.send_time
            q = causal.record(
                msg.cause_id, msg.src, "tx_queue", msg.send_time, tx_start, tag=msg.tag
            )
            w = causal.record(
                q, f"{msg.src}->{msg.dst}", "wire", tx_start, arrival, tag=msg.tag
            )
            msg.cause_id = causal.record(w, msg.dst, "rx", arrival, rx_end, tag=msg.tag)
        engine = self.engine
        if (
            done is None
            and self.fuse_delivery
            and deliver_to_inbox
            and dst_ep.sink is not None
            and not self._delivery_hooks
            and engine._choice_hook is None
        ):
            # Fused delivery: nothing observes this message in real time
            # (no signal, no hooks, sink consumer), so fold the delivery
            # bookkeeping into this TX event.  ``deliver_time`` carries
            # the exact RX-drain instant the delivery event would have
            # fired at; the sink (the runner's analytic drain lane) times
            # the handle off it, so the timeline is bit-identical — only
            # the per-message delivery event disappears.
            self.fused_deliveries += 1
            size = msg.size_bytes
            dst_ep.rx_busy_s += rx_hold
            self.bytes_in_flight -= size
            self.messages_in_flight -= 1
            dst_ep.bytes_received += size
            dst_ep.messages_received += 1
            self.total_bytes += size
            self.total_messages += 1
            msg.deliver_time = rx_end
            dst_ep.sink(msg)
            return
        # The packed tuple is reused verbatim for the delivery event (one
        # fewer allocation per message); _fast_deliver ignores the TX slots.
        engine._seq = seq = engine._seq + 1
        _heappush(engine._heap, (rx_end, seq, self._deliver_cb, packed))

    def _fast_deliver(self, packed) -> None:
        """RX drain finished (fast path): book RX stats and deliver.

        The delivery tail is inlined (kept in sync with :meth:`_deliver`,
        which the process fallback uses), including the uncontended
        ``Store.put`` append: per-message calls matter at incast rates.
        """
        msg, _src_ep, dst_ep, done, deliver_to_inbox, _tx_hold, rx_hold, _arrival = packed
        size = msg.size_bytes
        dst_ep.rx_busy_s += rx_hold
        self.bytes_in_flight -= size
        self.messages_in_flight -= 1
        dst_ep.bytes_received += size
        dst_ep.messages_received += 1
        self.total_bytes += size
        self.total_messages += 1
        engine = self.engine
        msg.deliver_time = engine.now
        if deliver_to_inbox:
            sink = dst_ep.sink
            if sink is not None:
                sink(msg)
            else:
                inbox = dst_ep.inbox
                if inbox._getters:
                    inbox.put(msg)
                else:
                    inbox._items.append(msg)
        hooks = self._delivery_hooks
        if hooks:
            for hook in hooks:
                hook(msg)
        # Inlined Signal.fire (keep in sync): `done` is created unfired by
        # send() and fired exactly once, here (None for notify=False sends;
        # a plain callable for on_deliver sends, invoked inline instead).
        if done is not None:
            if done.__class__ is not Signal:
                done(msg)
                return
            done._fired = True
            done._payload = msg
            waiters = done._waiters
            if waiters:
                done._waiters = None
                now = engine.now
                heap = engine._heap
                seq = engine._seq
                for cb in waiters:
                    seq += 1
                    _heappush(heap, (now, seq, cb, msg))
                engine._seq = seq

    def _transfer(self, msg, src_ep, dst_ep, done, deliver_to_inbox):
        # Bare-number yields are the engine's zero-allocation timeout path;
        # uncontended acquires reuse the resource's shared grant signal.
        causal = self.causal
        tx_start = arrival = 0.0
        try:
            # Sender-side serialization (FIFO on the TX lane).
            yield src_ep.tx.acquire()
            if self._fabric is not None:
                yield self._fabric.acquire()
            tx_hold = src_ep.serialize_time(msg.size_bytes)
            if causal is not None:
                tx_start = self.engine.now
            yield tx_hold
            src_ep.tx.release()
            src_ep.tx_busy_s += tx_hold
            src_ep.bytes_sent += msg.size_bytes
            src_ep.messages_sent += 1
            # Propagation.
            yield self.latency_s
            if causal is not None:
                arrival = self.engine.now
            # Receiver-side drain (incast point).
            yield dst_ep.rx.acquire()
            rx_hold = dst_ep.serialize_time(msg.size_bytes)
            delay_hook = self.delay_hook
            if delay_hook is not None:
                extra = delay_hook(msg)
                if extra < 0:
                    raise ValueError(f"delay_hook returned negative delay {extra}")
                # Extend the lane hold (not just the delivery) so the
                # cursor semantics match the fast path exactly.
                yield rx_hold + extra
            else:
                yield rx_hold
            dst_ep.rx.release()
            if self._fabric is not None:
                self._fabric.release()
            dst_ep.rx_busy_s += rx_hold
        finally:
            # A cancelled (GeneratorExit) or failing transfer must still
            # take its bytes off the wire, or the in-flight gauges drift
            # upward forever and the snapshot report lies.
            self.bytes_in_flight -= msg.size_bytes
            self.messages_in_flight -= 1
        if causal is not None:
            # Same three spans as the fast path, from observed resume
            # times — the fallback contends on Resource lanes, so here RX
            # queueing shows up between ``arrival`` and the final drain.
            q = causal.record(
                msg.cause_id, msg.src, "tx_queue", msg.send_time, tx_start, tag=msg.tag
            )
            w = causal.record(
                q, f"{msg.src}->{msg.dst}", "wire", tx_start, arrival, tag=msg.tag
            )
            msg.cause_id = causal.record(
                w, msg.dst, "rx", arrival, self.engine.now, tag=msg.tag
            )
        self._deliver(msg, dst_ep, done, deliver_to_inbox)

    def _deliver(self, msg, dst_ep, done, deliver_to_inbox) -> None:
        """Delivery tail for the process fallback (the fast path inlines
        the same sequence in :meth:`_fast_deliver` — keep them in sync)."""
        dst_ep.bytes_received += msg.size_bytes
        dst_ep.messages_received += 1
        self.total_bytes += msg.size_bytes
        self.total_messages += 1
        msg.deliver_time = self.engine.now
        if deliver_to_inbox:
            if dst_ep.sink is not None:
                dst_ep.sink(msg)
            else:
                dst_ep.inbox.put(msg)
        for hook in self._delivery_hooks:
            hook(msg)
        if done is not None:
            if done.__class__ is not Signal:
                done(msg)
            else:
                done.fire(msg)

    def transfer_time_estimate(self, src: str, dst: str, size_bytes: int) -> float:
        """Uncontended end-to-end transfer time (analytic, for sizing).

        Contract: this is the *uncontended* bound — it assumes the TX and
        RX lanes are idle and, when ``fabric_concurrency`` is set, that a
        fabric slot is free.  It equals the delivered latency exactly for
        a lone transfer on an idle network (asserted by
        ``tests/test_network.py``) and is a lower bound whenever lanes or
        the fabric are contended; it never models queueing delay.
        """
        src_ep = self.endpoint(src)
        dst_ep = self.endpoint(dst)
        return (
            src_ep.serialize_time(size_bytes)
            + self.latency_s
            + dst_ep.serialize_time(size_bytes)
        )
