"""Network model: NICs, point-to-point transfers, incast contention.

Transfers serialize on the sender's TX lane and the receiver's RX lane
(store-and-forward approximation).  RX serialization is what reproduces
the parameter-server *incast* bottleneck: when N workers push gradients to
one server simultaneously, the server NIC drains them one at a time, which
is exactly why PS-Lite's imbalanced default slicing makes communication
time dominate at scale (paper §II-B, Figure 6).

All sizes are bytes, all rates bytes/second, all times seconds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.sim.engine import Engine, Resource, Signal, Store


@dataclass(frozen=True)
class NicSpec:
    """Per-node network interface: full-duplex bandwidth + fixed overhead."""

    bandwidth_Bps: float
    overhead_s: float = 20e-6  # per-message software/serialization overhead

    def __post_init__(self) -> None:
        if self.bandwidth_Bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_Bps}")
        if self.overhead_s < 0:
            raise ValueError(f"overhead must be >= 0, got {self.overhead_s}")

    def serialize_time(self, size_bytes: int) -> float:
        return self.overhead_s + size_bytes / self.bandwidth_Bps


@dataclass
class Message:
    """One transfer on the wire.

    ``msg_id`` is assigned by :meth:`Network.send` from a per-``Network``
    counter, so identically-seeded runs in one process see identical id
    streams (a module-global counter would leak state across runs).
    """

    src: str
    dst: str
    size_bytes: int
    tag: str = ""
    payload: Any = None
    msg_id: int = -1
    send_time: float = -1.0
    deliver_time: float = -1.0


class Endpoint:
    """A node's attachment point: NIC lanes plus a FIFO inbox."""

    def __init__(self, engine: Engine, node_id: str, nic: NicSpec):
        self.node_id = node_id
        self.nic = nic
        self.tx = Resource(engine, capacity=1, name=f"{node_id}.tx")
        self.rx = Resource(engine, capacity=1, name=f"{node_id}.rx")
        self.inbox = Store(engine, name=f"{node_id}.inbox")
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0
        self.tx_busy_s = 0.0  # cumulative time the TX lane spent serializing
        self.rx_busy_s = 0.0  # cumulative time the RX lane spent draining
        #: Serialize-time memo: PS traffic repeats a handful of message
        #: sizes (shard push/pull), so the per-size time is computed once.
        self._ser_times: Dict[int, float] = {}

    def serialize_time(self, size_bytes: int) -> float:
        """Memoized :meth:`NicSpec.serialize_time` for this endpoint."""
        t = self._ser_times.get(size_bytes)
        if t is None:
            t = self._ser_times[size_bytes] = self.nic.serialize_time(size_bytes)
        return t

    def tx_utilization(self, now: float) -> float:
        """Fraction of elapsed sim time the TX lane was serializing."""
        return self.tx_busy_s / now if now > 0 else 0.0

    def rx_utilization(self, now: float) -> float:
        """Fraction of elapsed sim time the RX lane was draining."""
        return self.rx_busy_s / now if now > 0 else 0.0


class Network:
    """Point-to-point fabric connecting registered endpoints."""

    def __init__(
        self,
        engine: Engine,
        latency_s: float = 50e-6,
        fabric_concurrency: Optional[int] = None,
    ):
        """``fabric_concurrency`` optionally caps simultaneous transfers,
        modelling an oversubscribed aggregate fabric."""
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.engine = engine
        self.latency_s = latency_s
        self.endpoints: Dict[str, Endpoint] = {}
        self._msg_ids = itertools.count()
        self._fabric: Optional[Resource] = (
            Resource(engine, capacity=fabric_concurrency, name="fabric")
            if fabric_concurrency is not None
            else None
        )
        self.total_bytes = 0
        self.total_messages = 0
        self.bytes_in_flight = 0  # sent but not yet delivered
        self.messages_in_flight = 0
        self._delivery_hooks: List[Callable[[Message], None]] = []

    def add_node(self, node_id: str, nic: NicSpec) -> Endpoint:
        if node_id in self.endpoints:
            raise ValueError(f"duplicate node id {node_id!r}")
        ep = Endpoint(self.engine, node_id, nic)
        self.endpoints[node_id] = ep
        return ep

    def endpoint(self, node_id: str) -> Endpoint:
        try:
            return self.endpoints[node_id]
        except KeyError:
            raise KeyError(f"unknown node {node_id!r}") from None

    def on_delivery(self, hook: Callable[[Message], None]) -> None:
        """Register a hook called (in sim time) whenever a message lands."""
        self._delivery_hooks.append(hook)

    def send(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        payload: Any = None,
        tag: str = "",
        deliver_to_inbox: bool = True,
    ) -> Signal:
        """Start a transfer; returns a Signal fired with the Message upon
        delivery.  The message is also appended to the destination inbox
        (unless ``deliver_to_inbox=False`` for pure timing probes)."""
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        src_ep = self.endpoint(src)
        dst_ep = self.endpoint(dst)
        msg = Message(
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            tag=tag,
            payload=payload,
            msg_id=next(self._msg_ids),
        )
        msg.send_time = self.engine.now
        self.bytes_in_flight += size_bytes
        self.messages_in_flight += 1
        # Constant names: per-message f-strings are pure allocation churn
        # in the incast hot path (the Message carries src/dst/tag already).
        done = self.engine.signal(name="deliver")
        self.engine.spawn(
            self._transfer(msg, src_ep, dst_ep, done, deliver_to_inbox),
            name="xfer",
        )
        return done

    def _transfer(self, msg, src_ep, dst_ep, done, deliver_to_inbox):
        # Bare-number yields are the engine's zero-allocation timeout path;
        # uncontended acquires reuse the resource's shared grant signal.
        # Sender-side serialization (FIFO on the TX lane).
        yield src_ep.tx.acquire()
        if self._fabric is not None:
            yield self._fabric.acquire()
        tx_hold = src_ep.serialize_time(msg.size_bytes)
        yield tx_hold
        src_ep.tx.release()
        src_ep.tx_busy_s += tx_hold
        src_ep.bytes_sent += msg.size_bytes
        src_ep.messages_sent += 1
        # Propagation.
        yield self.latency_s
        # Receiver-side drain (incast point).
        yield dst_ep.rx.acquire()
        rx_hold = dst_ep.serialize_time(msg.size_bytes)
        yield rx_hold
        dst_ep.rx.release()
        if self._fabric is not None:
            self._fabric.release()
        dst_ep.rx_busy_s += rx_hold
        dst_ep.bytes_received += msg.size_bytes
        dst_ep.messages_received += 1
        self.total_bytes += msg.size_bytes
        self.total_messages += 1
        self.bytes_in_flight -= msg.size_bytes
        self.messages_in_flight -= 1
        msg.deliver_time = self.engine.now
        if deliver_to_inbox:
            dst_ep.inbox.put(msg)
        for hook in self._delivery_hooks:
            hook(msg)
        done.fire(msg)

    def transfer_time_estimate(self, src: str, dst: str, size_bytes: int) -> float:
        """Uncontended end-to-end transfer time (analytic, for sizing)."""
        src_ep = self.endpoint(src)
        dst_ep = self.endpoint(dst)
        return (
            src_ep.serialize_time(size_bytes)
            + self.latency_s
            + dst_ep.serialize_time(size_bytes)
        )
