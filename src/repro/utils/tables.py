"""Plain-text table formatting for benchmark output.

The paper reports results as tables and figure series; our benches print
the same rows.  No third-party table dependency — fixed-width columns with
smart numeric formatting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def _fmt_cell(v: object, precision: int) -> str:
    if v is None:
        return "-"
    if isinstance(v, bool):
        return "yes" if v else "no"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 10 ** (-precision):
            return f"{v:.{precision}e}"
        return f"{v:.{precision}g}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a fixed-width table; returns the string (caller prints)."""
    str_rows: List[List[str]] = [[_fmt_cell(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_ratio(new: float, old: float) -> str:
    """Human-readable speedup string, e.g. '4.26x'."""
    if new <= 0:
        return "inf"
    return f"{old / new:.2f}x"
