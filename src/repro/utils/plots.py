"""ASCII line plots for SeriesRecords (accuracy-vs-time curves).

The paper's Figures 8/10/11 are curves; benches print their series as
rows, and examples render them as terminal plots with this module — no
plotting dependency needed offline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.utils.records import SeriesRecord

_GLYPHS = "ox+*#@%&"


def ascii_plot(
    series: Sequence[SeriesRecord],
    width: int = 72,
    height: int = 16,
    title: Optional[str] = None,
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render one or more series on a shared-axis character grid."""
    series = [s for s in series if len(s)]
    if not series:
        raise ValueError("nothing to plot: all series empty")
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4 characters")
    xs_all = [x for s in series for x in s.x]
    ys_all = [y for s in series for y in s.y]
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo = y_min if y_min is not None else min(ys_all)
    y_hi = y_max if y_max is not None else max(ys_all)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for x, y in zip(s.x, s.y):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = max(len(f"{y_hi:.3g}"), len(f"{y_lo:.3g}"))
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{y_hi:.3g}".rjust(label_w)
        elif r == height - 1:
            label = f"{y_lo:.3g}".rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{x_lo:.3g}".ljust(width // 2) + f"{x_hi:.3g}".rjust(width - width // 2)
    lines.append(" " * label_w + "  " + x_axis)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={s.name}" for i, s in enumerate(series)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)
