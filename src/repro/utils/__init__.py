"""Shared utilities: deterministic RNG streams, result records, tables."""

from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.records import RunRecord, SeriesRecord
from repro.utils.tables import format_table

__all__ = [
    "derive_rng",
    "spawn_rngs",
    "RunRecord",
    "SeriesRecord",
    "format_table",
]
