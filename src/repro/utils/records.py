"""Lightweight result records shared by the benchmark harness and examples.

A :class:`RunRecord` captures the scalar outcome of one experiment arm
(one synchronization model at one cluster size); a :class:`SeriesRecord`
captures a curve (accuracy vs. time, DPRs vs. iteration).  Both serialize
to plain dicts so benches can dump JSON next to their printed tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Sentinel distinguishing "no default given" from an explicit ``None``.
_UNSET = object()


@dataclass
class RunRecord:
    """Scalar outcome of one experiment arm."""

    name: str
    params: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    def metric(self, key: str, default: object = _UNSET) -> Optional[float]:
        """Look up one metric.

        Returns ``default`` (including an explicit ``None``) when the key
        is absent and a default was given; otherwise a missing key raises
        a :class:`KeyError` naming the record and the available keys.
        """
        if key in self.metrics:
            return self.metrics[key]
        if default is not _UNSET:
            return default  # type: ignore[return-value]
        raise KeyError(
            f"record {self.name!r} has no metric {key!r}; "
            f"available: {sorted(self.metrics)}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": dict(self.params), "metrics": dict(self.metrics)}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "RunRecord":
        return cls(name=str(d["name"]), params=dict(d.get("params", {})),
                   metrics={k: float(v) for k, v in dict(d.get("metrics", {})).items()})

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))


@dataclass
class SeriesRecord:
    """A named curve: parallel ``x`` and ``y`` sequences."""

    name: str
    x: List[float] = field(default_factory=list)
    y: List[float] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "y"

    def append(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)

    def final(self) -> float:
        if not self.y:
            raise ValueError(f"series {self.name!r} is empty")
        return self.y[-1]

    def best(self) -> float:
        if not self.y:
            raise ValueError(f"series {self.name!r} is empty")
        return max(self.y)

    def at_x(self, x: float) -> float:
        """Last y value observed at or before ``x`` (step interpolation)."""
        if not self.x:
            raise ValueError(f"series {self.name!r} is empty")
        out = self.y[0]
        for xi, yi in zip(self.x, self.y):
            if xi > x:
                break
            out = yi
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "x": list(self.x),
            "y": list(self.y),
            "x_label": self.x_label,
            "y_label": self.y_label,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "SeriesRecord":
        return cls(
            name=str(d["name"]),
            x=[float(v) for v in d.get("x", [])],
            y=[float(v) for v in d.get("y", [])],
            x_label=str(d.get("x_label", "x")),
            y_label=str(d.get("y_label", "y")),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SeriesRecord":
        return cls.from_dict(json.loads(text))


def merge_metrics(records: Sequence[RunRecord], key: str) -> List[float]:
    """Collect one metric across records, in order."""
    return [r.metrics[key] for r in records]
