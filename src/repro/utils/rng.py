"""Deterministic random-number streams.

Every stochastic component in the reproduction (straggler sampling, PSSP
coin flips, data generation, weight init) draws from its own named stream
derived from a single experiment seed.  Two runs with the same seed are
bit-identical regardless of event interleavings, which is what makes the
discrete-event co-simulation reproducible and the benchmarks comparable.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List, Union

import numpy as np

StreamKey = Union[int, str]


def _key_to_int(key: StreamKey) -> int:
    """Map a stream key to a stable 32-bit integer."""
    if isinstance(key, (int, np.integer)):
        return int(key) & 0xFFFFFFFF
    return zlib.crc32(str(key).encode("utf-8")) & 0xFFFFFFFF


def derive_rng(seed: int, *streams: StreamKey) -> np.random.Generator:
    """Return a Generator for the stream named by ``streams`` under ``seed``.

    ``derive_rng(7, "worker", 3)`` always yields the same stream, independent
    of any other stream drawn from seed 7.
    """
    entropy = [int(seed) & 0xFFFFFFFF] + [_key_to_int(k) for k in streams]
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(seed: int, prefix: StreamKey, n: int) -> List[np.random.Generator]:
    """Return ``n`` independent generators named ``(prefix, 0..n-1)``."""
    return [derive_rng(seed, prefix, i) for i in range(n)]


def stable_choice(rng: np.random.Generator, items: Iterable) -> object:
    """Uniformly choose one item from a finite iterable (ordering-stable)."""
    seq = list(items)
    if not seq:
        raise ValueError("cannot choose from an empty iterable")
    return seq[int(rng.integers(0, len(seq)))]
