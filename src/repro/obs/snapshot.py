"""Periodic snapshot scraping of server and network internals.

The co-simulation runner installs a :class:`ServerSnapshotter` on its
engine (via :meth:`~repro.sim.engine.Engine.call_every`, so the sampler
never keeps a drained simulation alive) and each scrape records, in sim
time, the live quantities the paper's mechanisms act on:

- per-shard DPR queue depth, frontier value (``V_train``), update
  version, cumulative DPR count, and the age of the oldest buffered
  pull — the input signals any dynamic policy (DSPS/DSSP-style) needs;
- network pressure: bytes in flight plus per-node TX/RX NIC utilization
  (the incast bottleneck of §II-B, now visible as a series);
- fast-path health: how many transfers took the analytic lane scheduler
  vs the process fallback, and how many per-pull parameter copies the
  server's copy-on-write snapshot cache avoided (see
  ``docs/PERFORMANCE.md``, "The wire fast path and snapshot sharing").

Everything lands in gauge series keyed by ``shard``/``node`` labels, so
a metrics dump carries one curve per shard per quantity.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class ServerSnapshotter:
    """Scrapes a set of shard servers (and optionally a network)."""

    def __init__(
        self,
        registry,
        servers: Sequence,
        network=None,
        nodes: Optional[Sequence[str]] = None,
        engine=None,
        dispatch=None,
    ):
        """``nodes`` limits NIC gauges to the named endpoints (typically
        the server nodes — the incast side); default is all endpoints.
        ``engine`` adds fast-forward health gauges (events skipped by
        mesoscale windows, windows collapsed, calendar sweeps) plus the
        elision counters (events elided, quiet regions, pending-event
        high-water).  ``dispatch`` is any object exposing
        ``server_msgs_inline``/``server_msgs_drained`` (the runner) and
        adds the request-dispatch counters."""
        self.servers = list(servers)
        self.network = network
        self.engine = engine
        self.dispatch = dispatch
        self.nodes: List[str] = (
            list(nodes)
            if nodes is not None
            else (sorted(network.endpoints) if network is not None else [])
        )
        self.scrapes = 0
        self._last_scrape_t: Optional[float] = None
        self._g_depth = registry.gauge(
            "ps_dpr_queue_depth", "buffered delayed pull requests per shard"
        )
        self._g_frontier = registry.gauge("ps_frontier", "V_train frontier per shard")
        self._g_version = registry.gauge("ps_version", "server update counter per shard")
        self._g_dprs = registry.gauge("ps_dprs", "cumulative DPRs per shard")
        self._g_age = registry.gauge(
            "ps_buffered_pull_age_seconds", "age of the oldest buffered pull per shard"
        )
        self._g_copies = registry.gauge(
            "ps_snapshot_copies", "parameter copies materialized per shard (COW misses)"
        )
        self._g_copies_avoided = registry.gauge(
            "ps_snapshot_copies_avoided", "pull replies served from the shared COW copy"
        )
        self._g_inflight = registry.gauge(
            "net_bytes_in_flight", "bytes currently on the wire"
        )
        self._g_net_bytes = registry.gauge("net_bytes_total", "bytes delivered so far")
        self._g_tx = registry.gauge(
            "nic_tx_utilization", "fraction of time the TX lane was serializing"
        )
        self._g_rx = registry.gauge(
            "nic_rx_utilization", "fraction of time the RX lane was draining"
        )
        self._g_fast = registry.gauge(
            "net_fast_path_transfers", "transfers scheduled by the analytic lane scheduler"
        )
        self._g_fallback = registry.gauge(
            "net_fallback_transfers", "transfers run through the process fallback"
        )
        # Pre-bound label handles: scrape() runs every sampling interval
        # for every shard and node, so the kwargs->sorted-key label
        # formatting is paid once here instead of per sample.
        self._per_server = [
            (
                s,
                self._g_depth.labels(shard=s.shard_id),
                self._g_frontier.labels(shard=s.shard_id),
                self._g_version.labels(shard=s.shard_id),
                self._g_dprs.labels(shard=s.shard_id),
                self._g_age.labels(shard=s.shard_id),
                self._g_copies.labels(shard=s.shard_id),
                self._g_copies_avoided.labels(shard=s.shard_id),
            )
            for s in self.servers
        ]
        self._g_skipped = registry.gauge(
            "engine_events_skipped", "events fast-forwarded past heap maintenance"
        )
        self._g_collapsed = registry.gauge(
            "engine_windows_collapsed", "mesoscale windows drained without heap ops"
        )
        self._g_sweeps = registry.gauge(
            "engine_calendar_sweeps", "heap-to-calendar migrations performed"
        )
        self._g_elided = registry.gauge(
            "engine_events_elided",
            "events batch-served inside protocol-quiet regions",
        )
        self._g_quiet = registry.gauge(
            "engine_quiet_regions", "protocol-quiet same-instant regions served"
        )
        self._g_pending_hwm = registry.gauge(
            "engine_pending_event_hwm", "pending-event high-water mark"
        )
        self._g_rounds_collapsed = registry.gauge(
            "engine_rounds_collapsed",
            "protocol rounds committed in closed form (no per-message events)",
        )
        self._g_round_saved = registry.gauge(
            "engine_round_events_saved",
            "events the closed-form round fast-forward never scheduled",
        )
        self._g_fused = registry.gauge(
            "net_fused_deliveries",
            "deliveries folded into their TX-completion event",
        )
        self._g_inline = registry.gauge(
            "ps_dispatch_inline", "requests handled inside the delivery event"
        )
        self._g_drained = registry.gauge(
            "ps_dispatch_drained",
            "requests served behind a busy shard lane (cascade or drain)",
        )
        self._b_inflight = self._g_inflight.labels()
        self._b_net_bytes = self._g_net_bytes.labels()
        self._b_fast = self._g_fast.labels()
        self._b_fallback = self._g_fallback.labels()
        self._b_skipped = self._g_skipped.labels()
        self._b_collapsed = self._g_collapsed.labels()
        self._b_sweeps = self._g_sweeps.labels()
        self._b_elided = self._g_elided.labels()
        self._b_quiet = self._g_quiet.labels()
        self._b_pending_hwm = self._g_pending_hwm.labels()
        self._b_rounds_collapsed = self._g_rounds_collapsed.labels()
        self._b_round_saved = self._g_round_saved.labels()
        self._b_fused = self._g_fused.labels()
        self._b_inline = self._g_inline.labels()
        self._b_drained = self._g_drained.labels()
        self._per_node = (
            [
                (
                    network.endpoints[node],
                    self._g_tx.labels(node=node),
                    self._g_rx.labels(node=node),
                )
                for node in self.nodes
            ]
            if network is not None
            else []
        )

    def scrape(self, now: float) -> None:
        """Record one sample of every scraped quantity at sim time ``now``."""
        self.scrapes += 1
        self._last_scrape_t = now
        for (
            server,
            b_depth,
            b_frontier,
            b_version,
            b_dprs,
            b_age,
            b_copies,
            b_avoided,
        ) in self._per_server:
            b_depth.set(server.buffered_pulls)
            b_frontier.set(server.v_train)
            b_version.set(server.version)
            b_dprs.set(server.metrics.dprs)
            b_age.set(oldest_buffered_age(server, now))
            b_copies.set(server.snapshot_copies)
            b_avoided.set(server.snapshot_copies_avoided)
        if self.engine is not None:
            self._b_skipped.set(self.engine.events_skipped)
            self._b_collapsed.set(self.engine.windows_collapsed)
            self._b_sweeps.set(self.engine.calendar_sweeps)
            self._b_elided.set(self.engine.events_elided)
            self._b_quiet.set(self.engine.quiet_regions)
            self._b_pending_hwm.set(self.engine.pending_high_water)
            self._b_rounds_collapsed.set(self.engine.rounds_collapsed)
            self._b_round_saved.set(self.engine.round_events_saved)
        if self.dispatch is not None:
            self._b_inline.set(self.dispatch.server_msgs_inline)
            self._b_drained.set(self.dispatch.server_msgs_drained)
        if self.network is not None:
            self._b_inflight.set(self.network.bytes_in_flight)
            self._b_net_bytes.set(self.network.total_bytes)
            self._b_fast.set(self.network.fast_path_transfers)
            self._b_fallback.set(self.network.fallback_transfers)
            self._b_fused.set(self.network.fused_deliveries)
            for ep, b_tx, b_rx in self._per_node:
                b_tx.set(ep.tx_utilization(now))
                b_rx.set(ep.rx_utilization(now))

    def install(self, engine, interval_s: float) -> None:
        """Scrape now and then every ``interval_s`` simulated seconds while
        the simulation still has real (non-sampler) work pending."""
        if interval_s <= 0:
            raise ValueError(f"snapshot interval must be positive, got {interval_s}")
        self.scrape(engine.now)
        engine.call_every(interval_s, lambda: self.scrape(engine.now))

    def finalize(self, now: float) -> None:
        """Emit the end-of-run snapshot so the last partial sampling
        period is never dropped; a no-op when the periodic scrape already
        sampled at (or after) ``now`` — except for the engine counters,
        which only accumulate when the drain returns (every mid-run
        scrape reads zero), so they are always re-set here."""
        if self._last_scrape_t is not None and not (now > self._last_scrape_t):
            if self.engine is not None:
                self._b_skipped.set(self.engine.events_skipped)
                self._b_collapsed.set(self.engine.windows_collapsed)
                self._b_sweeps.set(self.engine.calendar_sweeps)
                self._b_elided.set(self.engine.events_elided)
                self._b_quiet.set(self.engine.quiet_regions)
                self._b_pending_hwm.set(self.engine.pending_high_water)
                self._b_rounds_collapsed.set(self.engine.rounds_collapsed)
                self._b_round_saved.set(self.engine.round_events_saved)
            if self.dispatch is not None:
                self._b_inline.set(self.dispatch.server_msgs_inline)
                self._b_drained.set(self.dispatch.server_msgs_drained)
            if self.network is not None:
                self._b_fused.set(self.network.fused_deliveries)
            return
        self.scrape(now)


def oldest_buffered_age(server, now: float) -> float:
    """Seconds the oldest buffered DPR on ``server`` has waited (0 if none)."""
    oldest = None
    for requests in server.callbacks.values():
        for req in requests:
            if oldest is None or req.enqueue_time < oldest:
                oldest = req.enqueue_time
    return 0.0 if oldest is None else max(0.0, now - oldest)
