"""Label-aware metrics registry: counters, gauges, histograms.

The observability substrate every runner reports into.  Three metric
kinds cover the quantities the paper's evaluation is made of:

- :class:`Counter` — monotonically increasing totals (pulls, DPRs,
  frontier advances);
- :class:`Gauge` — last-value-wins levels that optionally keep a time
  series (per-shard DPR queue depth, frontier value, NIC utilization),
  timestamped by the registry's clock (simulated or wall seconds);
- :class:`Histogram` — exponential-bucket distributions (DPR wait time,
  per-iteration latency, lock wait);
- :class:`Sketch` — mergeable log-bucket quantile sketches
  (:mod:`repro.obs.quantiles`) whose per-worker/per-shard states combine
  exactly across pool processes for fleet-wide p50/p95/p99.

Every metric is label-aware: ``counter.inc(shard=3)`` and
``counter.inc(shard=4)`` maintain independent children.  Hot paths
pre-bind labels once via ``metric.labels(shard=3)`` and then pay only a
method call per event.

Two registries matter in practice: the **process-global** registry
(:func:`global_registry`) for process-wide totals, and a **per-run**
registry owned by an :class:`~repro.obs.Observability` bundle.  The
**null backend** (:func:`null_registry`) implements the same interface
with no-ops and never stores a key, so instrumented code costs next to
nothing when observability is off.
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.quantiles import QuantileSketch, merge_all

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    return ",".join(f"{k}={v}" for k, v in key)


def exponential_buckets(start: float, factor: float, count: int) -> List[float]:
    """``count`` upper bounds growing geometrically from ``start``."""
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [start * factor**i for i in range(count)]


class _Metric:
    """Shared plumbing: name, help text, the registry's lock."""

    kind = "metric"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock

    def labels(self, **labels: object) -> "_Bound":
        """Pre-bind a label set; the returned handle has no kwargs cost."""
        return _Bound(self, _label_key(labels))


class _Bound:
    """A metric child bound to one label set (hot-path handle)."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: _Metric, key: LabelKey):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, amount)

    def set(self, value: float) -> None:
        self._metric._set(self._key, value)

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)


class Counter(_Metric):
    """Monotonically increasing total, one value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        super().__init__(name, help, lock)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        self._inc(_label_key(labels), amount)

    def _inc(self, key: LabelKey, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (by {amount})")
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "help": self.help,
            "values": {_label_str(k): v for k, v in sorted(self._values.items())},
        }


class Gauge(_Metric):
    """Last-value-wins level; optionally keeps a (t, value) series.

    Series storage is a per-label ring buffer (``series_max_points``
    newest points, ``None`` = unbounded), so long simulations do not grow
    memory linearly with events.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        clock,
        keep_series: bool = True,
        series_max_points: Optional[int] = None,
    ):
        super().__init__(name, help, lock)
        if series_max_points is not None and series_max_points < 1:
            raise ValueError(
                f"series_max_points must be >= 1 or None, got {series_max_points}"
            )
        self._clock = clock
        self._keep_series = keep_series
        self._series_max = series_max_points
        self._values: Dict[LabelKey, float] = {}
        self._series: Dict[LabelKey, Tuple[Deque[float], Deque[float]]] = {}
        self._evicted: Dict[LabelKey, int] = {}

    def set(self, value: float, **labels: object) -> None:
        self._set(_label_key(labels), value)

    def _set(self, key: LabelKey, value: float) -> None:
        with self._lock:
            self._values[key] = float(value)
            if self._keep_series:
                pair = self._series.get(key)
                if pair is None:
                    m = self._series_max
                    pair = self._series[key] = (deque(maxlen=m), deque(maxlen=m))
                ts, vs = pair
                if ts.maxlen is not None and len(ts) == ts.maxlen:
                    # The ring buffer is about to drop its oldest point;
                    # count it so truncation is visible in reports.
                    self._evicted[key] = self._evicted.get(key, 0) + 1
                ts.append(float(self._clock()))
                vs.append(float(value))

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def series(self, **labels: object) -> Tuple[List[float], List[float]]:
        """The recorded (timestamps, values) series for one label set."""
        ts, vs = self._series.get(_label_key(labels), ([], []))
        return list(ts), list(vs)

    def evicted(self, **labels: object) -> int:
        """Points the ring buffer dropped for this label set."""
        return self._evicted.get(_label_key(labels), 0)

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._values)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "help": self.help,
            "values": {_label_str(k): v for k, v in sorted(self._values.items())},
        }
        if self._keep_series:
            out["series"] = {
                _label_str(k): {"t": list(ts), "v": list(vs)}
                for k, (ts, vs) in sorted(self._series.items())
            }
            if self._evicted:
                out["evicted"] = {
                    _label_str(k): n for k, n in sorted(self._evicted.items())
                }
        return out


class _HistState:
    __slots__ = ("counts", "count", "sum", "max")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1 overflow bucket
        self.count = 0
        self.sum = 0.0
        self.max = 0.0


class Histogram(_Metric):
    """Bucketed distribution (upper-bound buckets, plus overflow)."""

    kind = "histogram"

    #: Default exponential bucketing: 100 µs .. ~419 s.
    DEFAULT_BUCKETS = tuple(exponential_buckets(1e-4, 4.0, 12))

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, lock)
        bounds = list(buckets if buckets is not None else self.DEFAULT_BUCKETS)
        if not bounds or sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.buckets = bounds
        self._states: Dict[LabelKey, _HistState] = {}

    def observe(self, value: float, **labels: object) -> None:
        self._observe(_label_key(labels), value)

    def _observe(self, key: LabelKey, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistState(len(self.buckets))
            state.counts[idx] += 1
            state.count += 1
            state.sum += value
            state.max = max(state.max, value)

    def count(self, **labels: object) -> int:
        state = self._states.get(_label_key(labels))
        return state.count if state else 0

    def sum(self, **labels: object) -> float:
        state = self._states.get(_label_key(labels))
        return state.sum if state else 0.0

    def mean(self, **labels: object) -> float:
        state = self._states.get(_label_key(labels))
        return state.sum / state.count if state and state.count else 0.0

    def bucket_counts(self, **labels: object) -> List[int]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        state = self._states.get(_label_key(labels))
        return list(state.counts) if state else [0] * (len(self.buckets) + 1)

    def quantile(self, q: float, **labels: object) -> float:
        """Estimate of the ``q`` quantile, interpolated within buckets.

        Linear interpolation between a bucket's bounds (the first bucket
        interpolates up from 0, the overflow bucket up to the observed
        max); the result is clamped to the observed max.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        state = self._states.get(_label_key(labels))
        if state is None or state.count == 0:
            return 0.0
        target = q * state.count
        cum = 0
        lower = 0.0
        for i, c in enumerate(state.counts):
            upper = self.buckets[i] if i < len(self.buckets) else state.max
            if c:
                if cum + c >= target:
                    frac = (target - cum) / c
                    value = lower + frac * (upper - lower) if upper > lower else upper
                    return min(value, state.max)
                cum += c
            lower = upper if i < len(self.buckets) else lower
        return state.max

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._states)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "series": {
                _label_str(k): {
                    "counts": list(s.counts),
                    "count": s.count,
                    "sum": s.sum,
                    "max": s.max,
                }
                for k, s in sorted(self._states.items())
            },
        }


class Sketch(_Metric):
    """Mergeable quantile sketch per label set (exact cross-process merge).

    Backed by :class:`repro.obs.quantiles.QuantileSketch`: integer
    log-spaced bucket counts with a relative-accuracy guarantee, so
    per-worker or per-shard states written by different pool processes
    combine exactly (order-independent, byte-deterministic) before
    p50/p95/p99 queries.
    """

    kind = "sketch"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        relative_accuracy: Optional[float] = None,
    ):
        super().__init__(name, help, lock)
        self.relative_accuracy = (
            relative_accuracy
            if relative_accuracy is not None
            else QuantileSketch.DEFAULT_RELATIVE_ACCURACY
        )
        # Validate eagerly so a bad accuracy fails at registration time.
        QuantileSketch(self.relative_accuracy)
        self._states: Dict[LabelKey, QuantileSketch] = {}

    def observe(self, value: float, **labels: object) -> None:
        self._observe(_label_key(labels), value)

    def _observe(self, key: LabelKey, value: float) -> None:
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = QuantileSketch(self.relative_accuracy)
            state.add(value)

    def count(self, **labels: object) -> int:
        state = self._states.get(_label_key(labels))
        return state.count if state else 0

    def quantile(self, q: float, **labels: object) -> float:
        state = self._states.get(_label_key(labels))
        return state.quantile(q) if state is not None else 0.0

    def sketch(self, **labels: object) -> Optional[QuantileSketch]:
        """The underlying sketch for one label set (None if unseen)."""
        return self._states.get(_label_key(labels))

    def merged(self) -> Optional[QuantileSketch]:
        """All label sets merged into one sketch (None when empty)."""
        return merge_all(self._states[k] for k in sorted(self._states))

    def label_sets(self) -> List[LabelKey]:
        return sorted(self._states)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "help": self.help,
            "relative_accuracy": self.relative_accuracy,
            "series": {
                _label_str(k): s.to_dict() for k, s in sorted(self._states.items())
            },
        }


class MetricsRegistry:
    """Named metrics with get-or-create semantics and one shared clock.

    The clock timestamps gauge series points; runners install their own
    (simulated seconds for the co-simulation, wall seconds for the
    thread runner) via :meth:`set_clock`.
    """

    #: Default gauge series cap: newest points kept per label set.  Big
    #: enough for any plot we render, small enough that a week-long sim
    #: cannot grow memory linearly with events.
    DEFAULT_SERIES_MAX_POINTS = 65_536

    def __init__(
        self,
        name: str = "",
        keep_series: bool = True,
        series_max_points: Optional[int] = DEFAULT_SERIES_MAX_POINTS,
    ):
        self.name = name
        self.keep_series = keep_series
        self.series_max_points = series_max_points
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._clock = lambda: 0.0

    def set_clock(self, clock) -> None:
        self._clock = clock

    def _read_clock(self) -> float:
        return self._clock()

    def _get_or_create(self, name: str, cls, factory) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = factory()
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"not {cls.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help, self._lock)
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(
            name,
            Gauge,
            lambda: Gauge(
                name,
                help,
                self._lock,
                self._read_clock,
                self.keep_series,
                self.series_max_points,
            ),
        )

    def histogram(
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, help, self._lock, buckets)
        )

    def sketch(
        self, name: str, help: str = "", relative_accuracy: Optional[float] = None
    ) -> Sketch:
        return self._get_or_create(
            name, Sketch, lambda: Sketch(name, help, self._lock, relative_accuracy)
        )

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> _Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(
                f"no metric {name!r} in registry {self.name!r}; "
                f"registered: {self.names()}"
            ) from None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "metrics": {n: m.to_dict() for n, m in sorted(self._metrics.items())},
        }


# ---------------------------------------------------------------------------
# Null backend: same interface, records nothing, stores no keys.
# ---------------------------------------------------------------------------


class _NullBound:
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_BOUND = _NullBound()


class _NullMetric:
    """No-op counter/gauge/histogram all in one."""

    __slots__ = ()
    kind = "null"
    name = "null"
    help = ""
    buckets: List[float] = []

    def labels(self, **labels: object) -> _NullBound:
        return _NULL_BOUND

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def series(self, **labels: object) -> Tuple[List[float], List[float]]:
        return [], []

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def mean(self, **labels: object) -> float:
        return 0.0

    def bucket_counts(self, **labels: object) -> List[int]:
        return []

    def quantile(self, q: float, **labels: object) -> float:
        return 0.0

    def evicted(self, **labels: object) -> int:
        return 0

    def sketch(self, **labels: object) -> None:
        return None

    def merged(self) -> None:
        return None

    def label_sets(self) -> List[LabelKey]:
        return []

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "help": "", "values": {}}


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """The disabled backend: every lookup returns the same no-op metric."""

    def __init__(self) -> None:
        super().__init__(name="null", keep_series=False)

    def counter(self, name: str, help: str = "") -> _NullMetric:  # type: ignore[override]
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:  # type: ignore[override]
        return _NULL_METRIC

    def histogram(  # type: ignore[override]
        self, name: str, help: str = "", buckets: Optional[Sequence[float]] = None
    ) -> _NullMetric:
        return _NULL_METRIC

    def sketch(  # type: ignore[override]
        self, name: str, help: str = "", relative_accuracy: Optional[float] = None
    ) -> _NullMetric:
        return _NULL_METRIC

    def set_clock(self, clock) -> None:
        pass

    def names(self) -> List[str]:
        return []

    def to_dict(self) -> Dict[str, object]:
        return {"name": "null", "metrics": {}}


_GLOBAL = MetricsRegistry("global")
_NULL = NullRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (lives for the interpreter's lifetime)."""
    return _GLOBAL


def null_registry() -> NullRegistry:
    """The shared no-op registry used when observability is disabled."""
    return _NULL
