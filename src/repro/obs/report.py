"""Human-readable observability summary (what the benches print).

:func:`render_report` turns a metrics registry (and optionally the last
run's trace) into a compact text report: counter totals, gauge last
values with series lengths (flagging ring-buffer evictions), histogram
and sketch percentile rows (p50/p95/p99), and a per-actor
compute/communication breakdown.
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sketch,
    _label_str,
)


def _fmt(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def render_report(
    registry: MetricsRegistry,
    trace=None,
    title: str = "observability report",
) -> str:
    """A text summary of everything the registry (and trace) recorded."""
    lines: List[str] = [f"== {title} =="]
    names = registry.names()
    if not names:
        lines.append("(no metrics recorded — observability disabled?)")
    counters = [registry.get(n) for n in names if isinstance(registry.get(n), Counter)]
    gauges = [registry.get(n) for n in names if isinstance(registry.get(n), Gauge)]
    hists = [registry.get(n) for n in names if isinstance(registry.get(n), Histogram)]
    sketches = [registry.get(n) for n in names if isinstance(registry.get(n), Sketch)]

    if counters:
        lines.append("-- counters --")
        for c in counters:
            parts = [
                f"{_label_str(k) or 'total'}={_fmt(v)}"
                for k, v in sorted(c._values.items())
            ]
            lines.append(f"{c.name}: " + "  ".join(parts))
    if gauges:
        lines.append("-- gauges (last value; series points) --")
        for g in gauges:
            for key in g.label_sets():
                labels = dict(key)
                ts, vs = g.series(**labels)
                last = vs[-1] if vs else g.value(**labels)
                evicted = g.evicted(**labels)
                note = f", {evicted} evicted" if evicted else ""
                lines.append(
                    f"{g.name}{{{_label_str(key)}}}: {_fmt(last)} "
                    f"({len(ts)} points{note})"
                )
    if hists:
        lines.append("-- histograms (count / mean / p50 / p95 / p99 / max) --")
        for h in hists:
            for key in h.label_sets():
                labels = dict(key)
                lines.append(
                    f"{h.name}{{{_label_str(key)}}}: "
                    f"n={h.count(**labels)} mean={h.mean(**labels):.6g} "
                    f"p50={h.quantile(0.5, **labels):.6g} "
                    f"p95={h.quantile(0.95, **labels):.6g} "
                    f"p99={h.quantile(0.99, **labels):.6g} "
                    f"max={h._states[key].max:.6g}"
                )
    if sketches:
        lines.append("-- sketches (count / p50 / p95 / p99) --")
        for s in sketches:
            for key in s.label_sets():
                labels = dict(key)
                lines.append(
                    f"{s.name}{{{_label_str(key)}}}: "
                    f"n={s.count(**labels)} "
                    f"p50={s.quantile(0.5, **labels):.6g} "
                    f"p95={s.quantile(0.95, **labels):.6g} "
                    f"p99={s.quantile(0.99, **labels):.6g}"
                )
            merged = s.merged()
            if merged is not None and len(s.label_sets()) > 1:
                lines.append(
                    f"{s.name}{{merged}}: n={merged.count} "
                    f"p50={merged.quantile(0.5):.6g} "
                    f"p95={merged.quantile(0.95):.6g} "
                    f"p99={merged.quantile(0.99):.6g}"
                )
    if trace is not None:
        lines.extend(_trace_section(trace))
    return "\n".join(lines)


def _trace_section(trace) -> List[str]:
    actors = trace.actors()
    if not actors:
        return []
    lines = ["-- trace breakdown (seconds by span kind) --"]
    for actor in actors:
        parts = [f"{k}={v:.4g}" for k, v in trace.breakdown(actor).items() if v > 0]
        if parts:
            lines.append(f"{actor}: " + "  ".join(parts))
    lines.append(
        f"trace: {len(trace.spans)} spans kept, end_time={trace.end_time:.4g}s"
    )
    return lines


def print_report(registry: MetricsRegistry, trace=None, title: Optional[str] = None) -> None:
    print(render_report(registry, trace, title or "observability report"))
