"""Mergeable streaming quantile sketches (fixed-precision log buckets).

A :class:`QuantileSketch` answers p50/p95/p99 queries over a stream of
non-negative latencies with a bounded *relative* error, in O(buckets)
memory, and — the property the sweep executor needs — with an **exact
merge**: every value lands in one integer log-spaced bucket
(DDSketch-style), so combining two sketches is bucket-wise integer
addition.  Merging is commutative and associative, which makes the
serialized form byte-deterministic no matter how per-worker or per-shard
sketches are combined across pool processes.

The sketch deliberately stores no accumulated float sum: ``sum()`` and
``mean()`` are derived from the integer bucket counts (iterated in
sorted index order), so not even those estimates depend on insertion or
merge order.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional


class QuantileSketch:
    """Log-bucket quantile sketch with relative-accuracy guarantees.

    Values are assigned to bucket ``i = ceil(log_gamma(v))`` with
    ``gamma = (1 + a) / (1 - a)`` for relative accuracy ``a``; the bucket
    midpoint ``2 * gamma**i / (gamma + 1)`` is then within a factor
    ``(1 ± a)`` of every value in the bucket.  Exact zeros get their own
    counter.  Negative values are rejected (latencies only).
    """

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "counts",
        "zero_count",
        "count",
        "min",
        "max",
    )

    DEFAULT_RELATIVE_ACCURACY = 0.01

    def __init__(self, relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = float(relative_accuracy)
        self._gamma = (1.0 + self.relative_accuracy) / (1.0 - self.relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self.counts: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    # -- ingest -----------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one observation (must be >= 0)."""
        value = float(value)
        if value < 0.0 or value != value:  # rejects negatives and NaN
            raise ValueError(f"sketch values must be finite and >= 0, got {value}")
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
            return
        idx = math.ceil(math.log(value) / self._log_gamma)
        self.counts[idx] = self.counts.get(idx, 0) + 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (exact; order-independent)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        self.count += other.count
        self.zero_count += other.zero_count
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for idx, c in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + c
        return self

    # -- queries ----------------------------------------------------------

    def _midpoint(self, idx: int) -> float:
        # Geometric midpoint of the bucket (gamma**(i-1), gamma**i].
        return 2.0 * self._gamma**idx / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The estimated ``q`` quantile (0 for an empty sketch)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * (self.count - 1)
        cum = self.zero_count
        if cum > rank:
            return 0.0
        for idx in sorted(self.counts):
            cum += self.counts[idx]
            if cum > rank:
                v = self._midpoint(idx)
                if v < self.min:
                    return self.min
                if v > self.max:
                    return self.max
                return v
        return self.max

    def sum(self) -> float:
        """Approximate total (bucket midpoints; order-independent)."""
        total = 0.0
        for idx in sorted(self.counts):
            total += self.counts[idx] * self._midpoint(idx)
        return total

    def mean(self) -> float:
        """Approximate mean derived from :meth:`sum`."""
        return self.sum() / self.count if self.count else 0.0

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; bucket keys sorted for byte determinism."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "count": self.count,
            "zero_count": self.zero_count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(i): self.counts[i] for i in sorted(self.counts)},
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sk = cls(float(doc.get("relative_accuracy", cls.DEFAULT_RELATIVE_ACCURACY)))
        sk.count = int(doc.get("count", 0))
        sk.zero_count = int(doc.get("zero_count", 0))
        if sk.count:
            sk.min = float(doc["min"])  # type: ignore[arg-type]
            sk.max = float(doc["max"])  # type: ignore[arg-type]
        for key, c in dict(doc.get("buckets", {})).items():  # type: ignore[arg-type]
            sk.counts[int(key)] = sk.counts.get(int(key), 0) + int(c)
        return sk


def merge_all(sketches: Iterable[QuantileSketch]) -> Optional[QuantileSketch]:
    """Merge any number of sketches into a fresh one (None if empty)."""
    merged: Optional[QuantileSketch] = None
    for sk in sketches:
        if merged is None:
            merged = QuantileSketch(sk.relative_accuracy)
        merged.merge(sk)
    return merged


def sketches_from_metrics_doc(
    doc: Mapping[str, object],
) -> Dict[str, Dict[str, QuantileSketch]]:
    """Extract ``{metric: {label_str: sketch}}`` from a metrics-dump dict.

    Accepts the output of ``MetricsRegistry.to_dict()`` (what
    ``dump_metrics`` writes); non-sketch metrics are skipped.
    """
    out: Dict[str, Dict[str, QuantileSketch]] = {}
    for name, metric in dict(doc.get("metrics", {})).items():  # type: ignore[arg-type]
        if metric.get("kind") != "sketch":
            continue
        out[name] = {
            labels: QuantileSketch.from_dict(state)
            for labels, state in dict(metric.get("series", {})).items()
        }
    return out


def merge_metric_docs(
    docs: Iterable[Mapping[str, object]],
) -> Dict[str, Dict[str, QuantileSketch]]:
    """Merge the sketch metrics of many metrics dumps (e.g. sweep arms).

    Per-arm sketches with the same metric name and label set are merged
    exactly; the result is suitable for cross-worker p50/p95/p99 queries.
    """
    merged: Dict[str, Dict[str, QuantileSketch]] = {}
    for doc in docs:
        for name, series in sketches_from_metrics_doc(doc).items():
            into = merged.setdefault(name, {})
            for labels, sk in series.items():
                if labels in into:
                    into[labels].merge(sk)
                else:
                    into[labels] = sk
    return merged


def percentile_rows(
    merged: Dict[str, Dict[str, QuantileSketch]],
    quantiles: Iterable[float] = (0.5, 0.95, 0.99),
) -> List[List[object]]:
    """Flatten merged sketches into table rows (metric, labels, n, q...)."""
    qs = list(quantiles)
    rows: List[List[object]] = []
    for name in sorted(merged):
        for labels in sorted(merged[name]):
            sk = merged[name][labels]
            rows.append([name, labels or "-", sk.count] + [sk.quantile(q) for q in qs])
    return rows
