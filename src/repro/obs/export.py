"""Chrome/Perfetto trace-event export + metrics JSON dumping.

Converts :class:`~repro.sim.trace.TraceRecorder` spans into the Trace
Event Format both ``chrome://tracing`` and https://ui.perfetto.dev load:
one named track per worker/server actor, ``"ph": "X"`` duration events
for spans, and ``"ph": "i"`` instant events for the protocol moments the
paper's evaluation hinges on (DPR buffering, lazy-pull release, PSSP
pass/pause decisions, ``V_train`` frontier advances).

When a causal trace is supplied, the export also emits Perfetto **flow
events** (``"ph": "s"``/``"f"`` pairs) that draw push→apply→reply arrows
from each message's TX start on the sender's track to its RX completion
on the receiver's track, and embeds the raw causal spans under the
``causalSpans`` top-level key (ignored by viewers, round-tripped by
``python -m repro.obs``).

All simulated/wall times are seconds; the trace format wants
microseconds, hence ``_US``.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.causal import CAUSAL_EXPORT_KEY, causal_to_dicts

_US = 1e6  # seconds -> trace-format microseconds

#: Environment override for :class:`InstantLog`'s in-memory cap.
INSTANT_SPILL_CAP_ENV = "REPRO_INSTANT_SPILL_CAP"
DEFAULT_INSTANT_SPILL_CAP = 200_000

_SPILL_READ_CHUNK = 1 << 20  # bytes per disk read while replaying


@dataclass(frozen=True, slots=True)
class Instant:
    """One point event on an actor's track."""

    name: str
    t: float
    actor: str = ""
    args: Dict[str, object] = field(default_factory=dict)


class InstantLog:
    """Accumulates instant events for one run, spilling to disk at scale.

    Up to ``spill_cap`` instants are buffered in memory (the common
    case: every small/medium run).  Past the cap the buffer is appended
    to an anonymous JSONL temp file and cleared, so a 100k-worker run's
    multi-million-event protocol stream costs O(cap) resident memory
    instead of O(events).  Iteration replays the spilled prefix from
    disk in fixed-size chunks (via ``os.pread``, so nested or repeated
    iterations never disturb the append position) followed by the
    in-memory tail — consumers like the protocol sanitizer stream it
    without ever materializing the full log.

    Instant ``args`` must stay JSON-serializable (they already must be
    for trace export); non-finite floats round-trip via Python's
    ``Infinity``/``NaN`` JSON extension.  ``spill_cap`` defaults from
    ``REPRO_INSTANT_SPILL_CAP`` when unset.
    """

    def __init__(self, spill_cap: Optional[int] = None) -> None:
        if spill_cap is None:
            spill_cap = int(
                os.environ.get(INSTANT_SPILL_CAP_ENV, DEFAULT_INSTANT_SPILL_CAP)
            )
        self.spill_cap = max(1, int(spill_cap))
        self.events: List[Instant] = []
        self._spill_file = None
        self._spill_bytes = 0
        self._n_spilled = 0

    def __len__(self) -> int:
        return self._n_spilled + len(self.events)

    @property
    def spilled_events(self) -> int:
        """How many instants live on disk rather than in memory."""
        return self._n_spilled

    def _spill(self) -> None:
        if self._spill_file is None:
            self._spill_file = tempfile.TemporaryFile(mode="w+b")
        lines = [
            json.dumps([e.name, e.t, e.actor, e.args]).encode("utf-8")
            for e in self.events
        ]
        payload = b"\n".join(lines) + b"\n"
        self._spill_file.write(payload)
        self._spill_bytes += len(payload)
        self._n_spilled += len(self.events)
        self.events.clear()

    def __iter__(self):
        if self._spill_file is not None:
            self._spill_file.flush()
            fd = self._spill_file.fileno()
            end = self._spill_bytes
            offset = 0
            leftover = b""
            while offset < end:
                chunk = os.pread(fd, min(_SPILL_READ_CHUNK, end - offset), offset)
                if not chunk:
                    break
                offset += len(chunk)
                data = leftover + chunk
                complete, _, leftover = data.rpartition(b"\n")
                if complete:
                    for line in complete.split(b"\n"):
                        name, t, actor, args = json.loads(line)
                        yield Instant(name, float(t), actor, args)
        yield from self.events

    def record(self, name: str, t: float, actor: str = "", **args: object) -> None:
        self.events.append(Instant(name, float(t), actor, args))
        if len(self.events) >= self.spill_cap:
            self._spill()

    def by_name(self, name: str) -> List[Instant]:
        return [e for e in self if e.name == name]


class NullInstantLog(InstantLog):
    """No-op instant log for the disabled backend."""

    def record(self, name: str, t: float, actor: str = "", **args: object) -> None:
        pass


def causal_flow_events(
    causal, tids: Dict[str, int], pid: int = 1
) -> List[Dict[str, object]]:
    """Flow-event arrows linking each message's sender to its receiver.

    Each delivered message leaves a ``tx_queue -> wire -> rx`` chain in
    the causal trace; the arrow starts when the wire transfer begins on
    the sender's track and finishes when RX completes on the receiver's
    track, sharing the rx span's id.
    """
    by_id = {s.id: s for s in causal.spans}
    events: List[Dict[str, object]] = []
    for rx in causal.spans:
        if rx.category != "rx":
            continue
        wire = by_id.get(rx.parent)
        if wire is None or wire.category != "wire":
            continue
        txq = by_id.get(wire.parent)
        src_actor = txq.actor if txq is not None else ""
        if src_actor not in tids or rx.actor not in tids:
            continue
        name = rx.tag or "message"
        events.append(
            {
                "name": name,
                "cat": "causal",
                "ph": "s",
                "id": rx.id,
                "ts": wire.t0 * _US,
                "pid": pid,
                "tid": tids[src_actor],
            }
        )
        events.append(
            {
                "name": name,
                "cat": "causal",
                "ph": "f",
                "bp": "e",
                "id": rx.id,
                "ts": rx.t1 * _US,
                "pid": pid,
                "tid": tids[rx.actor],
            }
        )
    return events


def trace_to_events(
    trace,
    instants: Iterable[Instant] = (),
    pid: int = 1,
    process_name: str = "",
    causal=None,
) -> List[Dict[str, object]]:
    """Flatten a TraceRecorder (+ instants) into trace-event dicts.

    One thread track per actor; actors are discovered from both spans and
    instant events, so server actors that only emit instants still get a
    named track.  With a causal trace, flow-event arrows are appended
    (see :func:`causal_flow_events`).
    """
    instants = list(instants)
    actors = sorted({s.actor for s in trace.spans} | {e.actor for e in instants if e.actor})
    tids = {actor: i for i, actor in enumerate(actors)}
    events: List[Dict[str, object]] = []
    if process_name:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        )
    for actor, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": actor},
            }
        )
    for s in trace.spans:
        args: Dict[str, object] = {"iteration": s.iteration}
        if s.note:
            args["note"] = s.note
        events.append(
            {
                "name": s.kind.value,
                "cat": "span",
                "ph": "X",
                "ts": s.t0 * _US,
                "dur": max(0.0, s.t1 - s.t0) * _US,
                "pid": pid,
                "tid": tids[s.actor],
                "args": args,
            }
        )
    for e in instants:
        events.append(
            {
                "name": e.name,
                "cat": "instant",
                "ph": "i",
                "ts": e.t * _US,
                # thread scope when the actor has a track, else process scope
                "s": "t" if e.actor in tids else "p",
                "pid": pid,
                "tid": tids.get(e.actor, 0),
                "args": dict(e.args),
            }
        )
    if causal is not None:
        events.extend(causal_flow_events(causal, tids, pid=pid))
    return events


def dump_trace(
    path: Union[str, Path],
    trace,
    instants: Iterable[Instant] = (),
    process_name: str = "",
    causal=None,
) -> Path:
    """Write one run's trace as a Perfetto-loadable JSON file."""
    if not getattr(trace, "keep_spans", True):
        raise ValueError(
            "trace was recorded with keep_spans=False; re-run with spans kept "
            "(enabling observability forces this)"
        )
    path = Path(path)
    doc = {
        "traceEvents": trace_to_events(
            trace, instants, process_name=process_name, causal=causal
        ),
        "displayTimeUnit": "ms",
    }
    if causal is not None and len(causal.spans):
        doc[CAUSAL_EXPORT_KEY] = causal_to_dicts(causal)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc))
    return path


def dump_metrics(path: Union[str, Path], registry) -> Path:
    """Write a registry (counters, gauge series, histograms) as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(registry.to_dict(), indent=2))
    return path


def default_metrics_path(trace_path: Union[str, Path]) -> Path:
    """The metrics JSON written alongside ``--trace-out FILE``."""
    p = Path(trace_path)
    return p.with_name(p.stem + ".metrics.json")


def load_trace(path: Union[str, Path]) -> Dict[str, object]:
    """Round-trip helper (tests, notebooks): parse a dumped trace file."""
    return json.loads(Path(path).read_text())


def actor_tracks(doc: Dict[str, object]) -> Dict[str, int]:
    """Map actor name -> tid from a loaded trace document."""
    out: Dict[str, int] = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            out[ev["args"]["name"]] = ev["tid"]
    return out


def events_of_phase(doc: Dict[str, object], ph: str, name: Optional[str] = None):
    """All events of one phase letter (optionally filtered by name)."""
    return [
        ev
        for ev in doc.get("traceEvents", [])
        if ev.get("ph") == ph and (name is None or ev.get("name") == name)
    ]
