"""Causal request tracing and critical-path blame attribution.

Where the trace recorder answers *what happened when*, this module
answers *why an iteration took as long as it did*.  Every message the
runner sends carries a **cause id** — the index of the causal span that
produced it — so a completed iteration leaves behind a DAG of spans:

    compute -> tx_queue -> wire -> rx -> [server_queue] -> server_apply
                                     \\-> server_queue(DPR) -> reply ... -> sync_wait

The analyzer walks each iteration's terminal ``sync_wait`` span back to
its root, extracts the **critical path** (the chain of causes that
actually gated the worker's resume), and attributes each second of the
iteration to a blame group:

- ``compute``   — the worker's own gradient computation;
- ``network``   — TX queueing, wire time, and RX occupancy;
- ``sync_wait`` — protocol wait in the server's DPR buffer; blamed on
  the *straggler* worker whose push released the request;
- ``server``    — server apply cost and inbox backlog.

Blame fractions are computed with a forward cursor over the path, so per
iteration they sum to 1.0 by construction.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.utils.tables import format_table

#: Known span categories (checked by repro.analysis CS04).
CATEGORIES = (
    "compute",
    "tx_queue",
    "wire",
    "rx",
    "server_queue",
    "server_apply",
    "sync_wait",
)

#: Span category -> blame group.  ``server_queue`` spans that name a
#: releasing worker (``blocked_on >= 0``) are protocol wait on a
#: straggler and move to the ``sync_wait`` group at blame time.
BLAME_GROUPS = {
    "compute": "compute",
    "tx_queue": "network",
    "wire": "network",
    "rx": "network",
    "server_queue": "server",
    "server_apply": "server",
    "sync_wait": "sync_wait",
}

#: Render/report order for the blame groups.
BLAME_ORDER = ("compute", "network", "sync_wait", "server")

#: Top-level key causal spans live under in exported trace JSON (ignored
#: by Perfetto/chrome://tracing, which only read ``traceEvents``).
CAUSAL_EXPORT_KEY = "causalSpans"


@dataclass(slots=True)
class CausalSpan:
    """One node of the causal DAG.

    ``parent`` is the id of the span that caused this one (-1 for
    roots).  ``blocked_on`` names the worker whose push released a
    DPR-buffered pull (-1 when not applicable).
    """

    id: int
    parent: int
    actor: str
    category: str
    t0: float
    t1: float
    worker: int = -1
    iteration: int = -1
    shard: int = -1
    tag: str = ""
    blocked_on: int = -1


class CausalTrace:
    """Append-only causal span store; acyclic by construction."""

    __slots__ = ("spans",)

    enabled = True

    def __init__(self) -> None:
        self.spans: List[CausalSpan] = []

    def __len__(self) -> int:
        return len(self.spans)

    def record(
        self,
        parent: int,
        actor: str,
        category: str,
        t0: float,
        t1: float,
        worker: int = -1,
        iteration: int = -1,
        shard: int = -1,
        tag: str = "",
        blocked_on: int = -1,
    ) -> int:
        """Append a span and return its id (usable as a later parent)."""
        sid = len(self.spans)
        if parent >= sid:
            raise ValueError(f"causal parent {parent} must precede span {sid}")
        self.spans.append(
            CausalSpan(
                sid, parent, actor, category, float(t0), float(t1),
                worker, iteration, shard, tag, blocked_on,
            )
        )
        return sid


class NullCausalTrace(CausalTrace):
    """Disabled backend: records nothing, hands out -1 ids."""

    __slots__ = ()

    enabled = False

    def record(self, *args: object, **kwargs: object) -> int:
        return -1


NULL_CAUSAL = NullCausalTrace()


# ---------------------------------------------------------------------------
# Serialization (trace-file round trip)
# ---------------------------------------------------------------------------


def causal_to_dicts(trace: CausalTrace) -> List[Dict[str, object]]:
    """JSON-safe list form of every span, in id order."""
    return [asdict(span) for span in trace.spans]


def causal_from_dicts(rows: Iterable[Mapping[str, object]]) -> CausalTrace:
    """Rebuild a :class:`CausalTrace` from :func:`causal_to_dicts` output.

    Loaded spans are *not* revalidated here — feed the result through
    ``repro.analysis.check_causal_spans`` to vet untrusted files.
    """
    trace = CausalTrace()
    for row in rows:
        trace.spans.append(CausalSpan(**dict(row)))  # type: ignore[arg-type]
    return trace


def causal_from_trace_doc(doc: Mapping[str, object]) -> CausalTrace:
    """Extract the causal spans from a loaded trace-export document."""
    return causal_from_dicts(doc.get(CAUSAL_EXPORT_KEY, ()))  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Critical path + blame
# ---------------------------------------------------------------------------


@dataclass
class IterationBlame:
    """Blame attribution for one (worker, iteration) critical path."""

    worker: int
    iteration: int
    start: float
    end: float
    total: float
    seconds: Dict[str, float]
    fractions: Dict[str, float]
    actor_seconds: Dict[str, float]
    straggler_seconds: Dict[str, float]
    path: List[CausalSpan]


def _blame_group(span: CausalSpan) -> str:
    if span.category == "server_queue" and span.blocked_on >= 0:
        return "sync_wait"
    return BLAME_GROUPS.get(span.category, span.category)


def _blame_actor(span: CausalSpan) -> str:
    if span.category == "server_queue" and span.blocked_on >= 0:
        return f"worker{span.blocked_on}"
    return span.actor


def critical_path(
    by_id: Mapping[int, CausalSpan], terminal: CausalSpan
) -> List[CausalSpan]:
    """The root→terminal cause chain that gated ``terminal``."""
    chain: List[CausalSpan] = []
    span: Optional[CausalSpan] = terminal
    while span is not None:
        chain.append(span)
        span = by_id.get(span.parent) if span.parent >= 0 else None
    chain.reverse()
    return chain


def iteration_blames(spans: Sequence[CausalSpan]) -> List[IterationBlame]:
    """One :class:`IterationBlame` per completed (worker, iteration).

    Walks each terminal ``sync_wait`` span's cause chain root→terminal
    with a forward cursor: every span is charged only the wall time by
    which it extended the path beyond everything already accounted for,
    so the per-iteration fractions sum to 1.0 by construction.
    """
    by_id = {span.id: span for span in spans}
    terminals = sorted(
        (s for s in spans if s.category == "sync_wait"),
        key=lambda s: (s.worker, s.iteration, s.id),
    )
    blames: List[IterationBlame] = []
    for terminal in terminals:
        chain = critical_path(by_id, terminal)
        cursor = chain[0].t0
        start = cursor
        seconds: Dict[str, float] = {}
        actor_seconds: Dict[str, float] = {}
        straggler_seconds: Dict[str, float] = {}
        for span in chain:
            seg = span.t1 - cursor
            if seg <= 0.0:
                continue
            cursor = span.t1
            group = _blame_group(span)
            seconds[group] = seconds.get(group, 0.0) + seg
            actor = _blame_actor(span)
            actor_seconds[actor] = actor_seconds.get(actor, 0.0) + seg
            if group == "sync_wait" and span.blocked_on >= 0:
                straggler_seconds[actor] = straggler_seconds.get(actor, 0.0) + seg
        total = 0.0
        for group in sorted(seconds):
            total += seconds[group]
        fractions = (
            {g: s / total for g, s in seconds.items()} if total > 0.0 else {}
        )
        blames.append(
            IterationBlame(
                worker=terminal.worker,
                iteration=terminal.iteration,
                start=start,
                end=terminal.t1,
                total=total,
                seconds=seconds,
                fractions=fractions,
                actor_seconds=actor_seconds,
                straggler_seconds=straggler_seconds,
                path=chain,
            )
        )
    return blames


def aggregate_blame(blames: Sequence[IterationBlame]) -> Dict[str, float]:
    """Overall blame fractions, weighted by per-iteration seconds."""
    seconds: Dict[str, float] = {}
    for blame in blames:
        for group, s in blame.seconds.items():
            seconds[group] = seconds.get(group, 0.0) + s
    total = 0.0
    for group in sorted(seconds):
        total += seconds[group]
    if total <= 0.0:
        return {}
    return {group: s / total for group, s in seconds.items()}


def straggler_table(blames: Sequence[IterationBlame]) -> List[tuple]:
    """``(actor, seconds)`` pairs of sync-wait blame, largest first."""
    seconds: Dict[str, float] = {}
    for blame in blames:
        for actor, s in blame.straggler_seconds.items():
            seconds[actor] = seconds.get(actor, 0.0) + s
    return sorted(seconds.items(), key=lambda kv: (-kv[1], kv[0]))


def render_blame_table(
    blames: Sequence[IterationBlame],
    title: str = "",
    models: Optional[Sequence[str]] = None,
    max_rows: int = 20,
) -> str:
    """Human-readable blame report: aggregate, stragglers, per-iteration."""
    lines: List[str] = []
    header = "== critical-path blame"
    if title:
        header += f": {title}"
    if models:
        header += f" [sync={','.join(dict.fromkeys(models))}]"
    lines.append(header + " ==")
    if not blames:
        lines.append("(no completed iterations traced)")
        return "\n".join(lines)
    total = sum(b.total for b in blames)
    lines.append(f"iterations={len(blames)} critical-path total={total:.4f}s")
    agg = aggregate_blame(blames)
    lines.append(
        "aggregate: "
        + "  ".join(f"{g}={agg.get(g, 0.0):.3f}" for g in BLAME_ORDER)
    )
    stragglers = straggler_table(blames)
    if stragglers:
        sync_total = sum(s for _, s in stragglers)
        lines.append("-- stragglers (sync-wait seconds by blocking worker) --")
        for actor, s in stragglers[:5]:
            lines.append(f"{actor}: {s:.4f}s ({s / sync_total:.0%} of sync-wait)")
    rows = [
        [
            f"worker{b.worker}",
            b.iteration,
            b.total,
        ]
        + [b.fractions.get(g, 0.0) for g in BLAME_ORDER]
        for b in blames[:max_rows]
    ]
    lines.append(
        format_table(
            ["worker", "iter", "total_s", *BLAME_ORDER],
            rows,
            title="per-iteration blame fractions (sum to 1.0)",
        )
    )
    if len(blames) > max_rows:
        lines.append(f"(+{len(blames) - max_rows} more iterations not shown)")
    return "\n".join(lines)


def folded_stacks(spans: Sequence[CausalSpan]) -> List[str]:
    """Critical paths as folded stack lines (``frame;frame value_us``).

    The output is the flamegraph.pl / speedscope "folded" format: one
    line per unique stack with the critical-path microseconds it owns.
    Frames are the causal categories, rooted at the owning worker.
    """
    agg: Dict[str, float] = {}
    for blame in iteration_blames(spans):
        cursor = blame.path[0].t0
        frames: List[str] = [f"worker{blame.worker}"]
        for span in blame.path:
            frames.append(span.category)
            seg = span.t1 - cursor
            if seg <= 0.0:
                continue
            cursor = span.t1
            stack = ";".join(frames)
            agg[stack] = agg.get(stack, 0.0) + seg
    return [f"{stack} {int(round(us * 1e6))}" for stack, us in sorted(agg.items())]
