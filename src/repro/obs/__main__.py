"""``python -m repro.obs`` — render blame tables, percentiles, flames.

Consumes the artifacts the benches write (``--trace-out`` trace JSON
with embedded causal spans, ``--metrics-out`` / per-arm metrics JSON)
and renders them offline:

- ``--blame``: per-sync-model critical-path blame tables (compute /
  network / sync-wait / server fractions that sum to 1.0 per iteration)
  plus straggler attribution, one table per trace file;
- ``--percentiles``: p50/p95/p99 from the mergeable quantile sketches,
  merged exactly across every metrics file given (per-arm sweeps);
- ``--flame``: folded-stack lines (flamegraph.pl / speedscope format)
  of the critical paths.

Directories are expanded to the matching ``*.json`` files inside, so a
sweep's per-arm artifact directory can be passed directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.causal import (
    causal_from_trace_doc,
    folded_stacks,
    iteration_blames,
    render_blame_table,
)
from repro.obs.quantiles import merge_metric_docs, percentile_rows
from repro.utils.tables import format_table


def _expand(paths: Sequence[str]) -> List[Path]:
    """Files as given; directories expand to their ``*.json`` contents."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.json")))
        else:
            out.append(p)
    return out


def _load(path: Path) -> Optional[Dict[str, object]]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[skip {path}: {exc}]", file=sys.stderr)
        return None


def _trace_models(doc: Dict[str, object]) -> List[str]:
    """Sync model names from the trace's ``run_config`` instant event."""
    for ev in doc.get("traceEvents", []):  # type: ignore[union-attr]
        if ev.get("ph") == "i" and ev.get("name") == "run_config":
            models = ev.get("args", {}).get("models")
            if models:
                return [str(m) for m in models]
    return []


def _blame(docs: Dict[Path, Dict[str, object]], max_rows: int) -> int:
    shown = 0
    for path, doc in docs.items():
        causal = causal_from_trace_doc(doc)
        if not causal.spans:
            continue
        blames = iteration_blames(causal.spans)
        print(
            render_blame_table(
                blames,
                title=path.name,
                models=_trace_models(doc),
                max_rows=max_rows,
            )
        )
        shown += 1
    if not shown:
        print("no causal spans found (re-run with --trace-out and tracing on)")
        return 2
    return 0


def _percentiles(docs: Dict[Path, Dict[str, object]]) -> int:
    # Metrics dumps are registry.to_dict() files; trace dumps have no
    # "metrics" key and simply contribute nothing.
    merged = merge_metric_docs(docs.values())
    rows = percentile_rows(merged)
    if not rows:
        print("no quantile sketches found in the given metrics files")
        return 2
    print(
        format_table(
            ["metric", "labels", "n", "p50", "p95", "p99"],
            rows,
            title=f"merged latency percentiles ({len(docs)} file(s))",
        )
    )
    return 0


def _flame(docs: Dict[Path, Dict[str, object]]) -> int:
    lines: List[str] = []
    for doc in docs.values():
        causal = causal_from_trace_doc(doc)
        if causal.spans:
            lines.extend(folded_stacks(causal.spans))
    if not lines:
        print("no causal spans found (re-run with --trace-out and tracing on)")
        return 2
    for line in lines:
        print(line)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="render blame tables, percentiles, and flame views "
        "from dumped observability artifacts",
    )
    parser.add_argument(
        "paths", nargs="+",
        help="trace/metrics JSON files, or directories of them",
    )
    parser.add_argument(
        "--blame", action="store_true",
        help="critical-path blame tables per trace (default action)",
    )
    parser.add_argument(
        "--percentiles", action="store_true",
        help="merge quantile sketches across metrics files; print p50/p95/p99",
    )
    parser.add_argument(
        "--flame", action="store_true",
        help="folded-stack flame view of the critical paths",
    )
    parser.add_argument(
        "--max-rows", type=int, default=20,
        help="per-iteration rows shown per blame table (default 20)",
    )
    args = parser.parse_args(argv)

    docs: Dict[Path, Dict[str, object]] = {}
    for path in _expand(args.paths):
        doc = _load(path)
        if doc is not None:
            docs[path] = doc
    if not docs:
        print("no readable JSON artifacts among the given paths", file=sys.stderr)
        return 2

    if not (args.blame or args.percentiles or args.flame):
        args.blame = True
    rc = 0
    if args.blame:
        rc = max(rc, _blame(docs, args.max_rows))
    if args.percentiles:
        rc = max(rc, _percentiles(docs))
    if args.flame:
        rc = max(rc, _flame(docs))
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
