"""Unified observability: metrics registry, trace export, snapshots.

One :class:`Observability` bundle carries everything a run records:

- a label-aware :class:`~repro.obs.registry.MetricsRegistry` (counters,
  gauges with time series, exponential-bucket histograms);
- per-run captures — the run's ``TraceRecorder``, an
  :class:`~repro.obs.export.InstantLog` of protocol point events (DPR
  buffered/released, PSSP pass/pause, frontier advances), and a
  :class:`~repro.obs.causal.CausalTrace` of cause-linked spans for
  critical-path blame attribution;
- exporters: :func:`~repro.obs.export.dump_trace` writes Chrome/Perfetto
  trace-event JSON, :func:`~repro.obs.export.dump_metrics` the metrics,
  and :func:`~repro.obs.report.render_report` a human-readable summary.

Runners resolve the bundle as ``config.obs or current_observability()``;
the default is the shared **disabled** bundle whose null registry and
null instant log make every instrumentation call a no-op, so the hot
path pays nothing unless observability was requested (e.g. via
``python -m repro.bench --trace-out``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.obs.causal import NULL_CAUSAL, CausalSpan, CausalTrace, NullCausalTrace
from repro.obs.export import (
    Instant,
    InstantLog,
    NullInstantLog,
    default_metrics_path,
    dump_metrics,
    dump_trace,
)
from repro.obs.quantiles import QuantileSketch
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    Sketch,
    exponential_buckets,
    global_registry,
    null_registry,
)

__all__ = [
    "CausalSpan",
    "CausalTrace",
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "InstantLog",
    "MetricsRegistry",
    "NULL_CAUSAL",
    "NullCausalTrace",
    "NullInstantLog",
    "NullRegistry",
    "Observability",
    "QuantileSketch",
    "RunCapture",
    "Sketch",
    "current_observability",
    "default_metrics_path",
    "dump_metrics",
    "dump_trace",
    "exponential_buckets",
    "global_registry",
    "null_registry",
    "observed",
    "set_current_observability",
]


class RunCapture:
    """One run's trace + instant events, labelled for export.

    ``complete`` starts False and is set by the runner once the run
    finished cleanly (all workers done, no unanswered pulls).  The
    protocol sanitizer (:mod:`repro.analysis`) only applies its
    end-of-stream liveness checks — DPR starvation, lost wakeups — to
    complete captures; an aborted or deadlocked run is checked for
    safety violations only.
    """

    def __init__(self, label: str, trace=None, causal: bool = True) -> None:
        self.label = label
        self.trace = trace
        self.instants = InstantLog()
        #: ``causal=False`` captures instants/spans without the causal
        #: span DAG (None here): cheaper, and it keeps runs eligible for
        #: the runner's closed-form round fast-forward, which replays
        #: protocol instants exactly but cannot reproduce per-message
        #: causal span ids.  Consumers treat a missing DAG as "not
        #: captured" (export/blame sections are skipped).
        self.causal = CausalTrace() if causal else None
        self.complete = False


class Observability:
    """A live observability bundle: registry + per-run captures."""

    enabled = True

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, causal: bool = True
    ):
        self.registry = registry if registry is not None else MetricsRegistry("run")
        self.runs: List[RunCapture] = []
        self._default_instants = InstantLog()
        #: Whether run captures build the causal span DAG (see
        #: :class:`RunCapture`); ``causal=False`` trades blame/flow export
        #: for lower overhead and round-collapse eligibility.
        self.capture_causal = causal

    def begin_run(self, label: str, trace=None) -> RunCapture:
        """Start capturing a run; subsequent instants land in its log."""
        cap = RunCapture(label, trace, causal=self.capture_causal)
        self.runs.append(cap)
        return cap

    @property
    def instants(self) -> InstantLog:
        """The current run's instant log (a default one before any run)."""
        return self.runs[-1].instants if self.runs else self._default_instants

    @property
    def default_instants(self) -> InstantLog:
        """Instants recorded outside any run capture (direct server use)."""
        return self._default_instants

    @property
    def causal(self) -> CausalTrace:
        """The current run's causal span trace (null before any run)."""
        return self.runs[-1].causal if self.runs else NULL_CAUSAL

    @property
    def last_run(self) -> Optional[RunCapture]:
        return self.runs[-1] if self.runs else None


class _DisabledObservability(Observability):
    """The shared no-op bundle (``enabled`` False, null backends)."""

    enabled = False

    def __init__(self) -> None:
        self.registry = null_registry()
        self.runs = []
        self._default_instants = NullInstantLog()

    def begin_run(self, label: str, trace=None) -> RunCapture:
        cap = RunCapture(label, trace)
        cap.instants = self._default_instants
        cap.causal = NULL_CAUSAL
        return cap  # not retained: nothing is being captured


NULL_OBS = _DisabledObservability()

_current: Observability = NULL_OBS


def current_observability() -> Observability:
    """The ambient bundle runners default to (disabled unless set)."""
    return _current


def set_current_observability(obs: Optional[Observability]) -> Observability:
    """Install ``obs`` (None resets to disabled); returns the previous one."""
    global _current
    previous = _current
    _current = obs if obs is not None else NULL_OBS
    return previous


@contextmanager
def observed(obs: Observability):
    """Scope ``obs`` as the ambient bundle for a ``with`` block."""
    previous = set_current_observability(obs)
    try:
        yield obs
    finally:
        set_current_observability(previous)
