"""Standard training tasks for the experiment harness.

The paper's four evaluation workloads are AlexNet/ResNet-56 on
CIFAR-10/100.  Per DESIGN.md: the *wire and compute footprint* of those
models comes from the shape-accurate Workload specs, while the gradient
math runs on fast proxies whose accuracy responds to staleness the same
way.  The factories here produce matched (task, workload) pairs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.driver import StepContext
from repro.core.keyspace import ModelSpec, TensorSpec
from repro.ml.data import gaussian_blobs, synthetic_cifar10, synthetic_cifar100
from repro.ml.models_zoo import (
    Workload,
    alexnet_cifar_workload,
    mini_alexnet,
    proxy_classifier,
    resnet56_cifar_workload,
    resnet_cifar,
)
from repro.ml.optim import SGD
from repro.ml.training import TrainingTask
from repro.utils.rng import derive_rng


def blobs_task(
    n_workers: int,
    n_classes: int = 10,
    dim: int = 32,
    hidden: Sequence[int] = (32,),
    n_train: int = 4000,
    n_test: int = 800,
    batch_size: int = 32,
    lr: float = 0.1,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainingTask:
    """Fast MLP-on-blobs task — the default proxy for AlexNet/CIFAR runs."""
    ds = gaussian_blobs(
        n_classes=n_classes, dim=dim, n_train=n_train, n_test=n_test, seed=seed
    )
    return TrainingTask(
        lambda: proxy_classifier(ds, hidden=hidden, seed=seed + 1),
        ds,
        n_workers=n_workers,
        batch_size=batch_size,
        optimizer_factory=lambda net: SGD(lr=lr, momentum=momentum),
        seed=seed + 2,
    )


def cifar_proxy_task(
    n_workers: int,
    n_classes: int = 10,
    n_train: int = 1000,
    n_test: int = 300,
    size: int = 16,
    batch_size: int = 16,
    lr: float = 0.05,
    seed: int = 0,
    conv: bool = False,
) -> TrainingTask:
    """Image-classification proxy: synthetic CIFAR images, MLP or conv net.

    ``conv=True`` trains :func:`repro.ml.models_zoo.mini_alexnet` (slower,
    closer to the paper's models); the default MLP keeps high-iteration
    benches fast.
    """
    if n_classes == 100:
        ds = synthetic_cifar100(n_train=n_train, n_test=n_test, seed=seed, size=size)
    else:
        ds = synthetic_cifar10(n_train=n_train, n_test=n_test, seed=seed, size=size)
    if conv:
        build = lambda: mini_alexnet(
            n_classes=ds.n_classes, rng=derive_rng(seed, "init", "conv"), size=size
        )
    else:
        build = lambda: proxy_classifier(ds, hidden=(48,), seed=seed + 1)
    return TrainingTask(
        build,
        ds,
        n_workers=n_workers,
        batch_size=batch_size,
        optimizer_factory=lambda net: SGD(lr=lr, momentum=0.9),
        seed=seed + 2,
    )


def resnet_proxy_task(
    n_workers: int,
    n_classes: int = 10,
    depth: int = 8,
    n_train: int = 400,
    n_test: int = 120,
    size: int = 12,
    batch_size: int = 8,
    lr: float = 0.05,
    seed: int = 0,
) -> TrainingTask:
    """A genuinely-residual trainable proxy for the ResNet-56 rows."""
    ds = synthetic_cifar10(n_train=n_train, n_test=n_test, seed=seed, size=size)
    if n_classes == 100:
        ds = synthetic_cifar100(n_train=n_train, n_test=n_test, seed=seed, size=size)
    return TrainingTask(
        lambda: resnet_cifar(
            depth, n_classes=ds.n_classes, rng=derive_rng(seed, "init", "resnet"),
            width=8, use_bn=False,
        ),
        ds,
        n_workers=n_workers,
        batch_size=batch_size,
        optimizer_factory=lambda net: SGD(lr=lr, momentum=0.9),
        seed=seed + 2,
    )


def null_task_spec(elements: int = 8) -> ModelSpec:
    """Tiny model spec for pure synchronization-dynamics runs."""
    return ModelSpec.from_tensors("null", [TensorSpec("w", (elements,))])


def null_step(ctx: StepContext) -> np.ndarray:
    """A no-op update — used when only DPR/timing dynamics matter."""
    return np.zeros_like(ctx.params)


def workload_for(name: str) -> Workload:
    """The paper-model wire/compute footprint by name."""
    name = name.lower()
    if name in ("alexnet", "alexnet-cifar"):
        return alexnet_cifar_workload()
    if name in ("resnet56", "resnet-56", "resnet56-cifar"):
        return resnet56_cifar_workload()
    raise ValueError(f"unknown workload {name!r}")
