"""Scale presets and output helpers for the experiment harness."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs import Observability, default_metrics_path, dump_metrics, dump_trace
from repro.obs.report import render_report
from repro.utils.records import RunRecord, SeriesRecord
from repro.utils.tables import format_table


@dataclass(frozen=True)
class Scale:
    """How big to run an experiment.

    ``QUICK`` keeps every bench under a few seconds for CI; ``PAPER``
    approaches the paper's iteration counts and cluster sizes (minutes).
    Relative comparisons (who wins, by roughly what factor) hold at both.
    """

    name: str
    iters: int  # training iterations per run
    sim_iters: int  # iterations for timing-only simulations
    worker_counts: Sequence[int]  # Figure 6/7 sweep
    big_workers: int  # Figure 10's cluster size
    huge_workers: int  # Figure 11's cluster size
    dataset_train: int
    dataset_test: int
    eval_every: int
    dpr_iters: int  # Figure 9 / DPR-counting runs

    def __post_init__(self) -> None:
        if min(self.iters, self.sim_iters, self.dpr_iters) < 1:
            raise ValueError("iteration counts must be >= 1")


TINY = Scale(
    name="tiny",
    iters=40,
    sim_iters=6,
    worker_counts=(2, 4),
    big_workers=6,
    huge_workers=8,
    dataset_train=300,
    dataset_test=80,
    eval_every=20,
    dpr_iters=60,
)

QUICK = Scale(
    name="quick",
    iters=150,
    sim_iters=25,
    worker_counts=(2, 4, 8, 16),
    big_workers=16,
    huge_workers=32,
    dataset_train=2000,
    dataset_test=500,
    eval_every=50,
    dpr_iters=300,
)

PAPER = Scale(
    name="paper",
    iters=1500,
    sim_iters=120,
    worker_counts=(2, 4, 8, 16, 32, 64),
    big_workers=64,
    huge_workers=128,
    dataset_train=8000,
    dataset_test=2000,
    eval_every=100,
    dpr_iters=2000,
)


#: Named presets the CLI and ``REPRO_SCALE`` resolve through.
SCALES: Dict[str, Scale] = {"tiny": TINY, "quick": QUICK, "paper": PAPER}


def resolve_scale(default: Scale = QUICK) -> Scale:
    """Pick the scale from ``REPRO_SCALE`` (tiny|quick|paper), else ``default``."""
    name = os.environ.get("REPRO_SCALE", "").lower()
    return SCALES.get(name, default)


def _json_scalar(value: object) -> object:
    """Coerce one row value to a JSON-native scalar, losslessly.

    Bools/ints/floats/strings/None pass through (NumPy scalars become
    their Python equivalents); anything else falls back to ``str`` —
    keep row values native if you want ``from_dict(to_dict(x)) == x``.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return str(value)


@dataclass
class ExperimentResult:
    """Printable + serializable outcome of one figure/table experiment.

    Round-trippable: ``ExperimentResult.from_dict(x.to_dict()) == x`` and
    ``from_json(x.to_json()) == x`` as long as row values are JSON-native
    scalars (``add_row`` coerces them on the way in).  The run cache and
    the sweep executor's worker processes both transport results this
    way, so the guarantee is what makes ``--jobs N`` and warm-cache runs
    byte-identical to a serial pass.
    """

    experiment: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    records: List[RunRecord] = field(default_factory=list)
    series: List[SeriesRecord] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append([_json_scalar(v) for v in values])

    def record(self, name: str, **metrics: float) -> RunRecord:
        rec = RunRecord(name=name, metrics={k: float(v) for k, v in metrics.items()})
        self.records.append(rec)
        return rec

    def find(self, name: str) -> RunRecord:
        for rec in self.records:
            if rec.name == name:
                return rec
        raise KeyError(f"no record {name!r} in {self.experiment}")

    def find_series(self, name: str) -> SeriesRecord:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(f"no series {name!r} in {self.experiment}")

    def render(self) -> str:
        out = [format_table(self.headers, self.rows, title=f"== {self.experiment} ==")]
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)

    def show(self) -> None:
        print(self.render())

    def merge_fragment(self, fragment: "ExperimentResult") -> None:
        """Absorb a sweep arm's rows/records/series/notes, in order."""
        self.rows.extend(fragment.rows)
        self.records.extend(fragment.records)
        self.series.extend(fragment.series)
        self.notes.extend(fragment.notes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "headers": list(self.headers),
            "rows": [[_json_scalar(v) for v in row] for row in self.rows],
            "records": [r.to_dict() for r in self.records],
            "series": [s.to_dict() for s in self.series],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ExperimentResult":
        return cls(
            experiment=str(d["experiment"]),
            headers=[str(h) for h in d.get("headers", [])],
            rows=[list(row) for row in d.get("rows", [])],
            records=[RunRecord.from_dict(r) for r in d.get("records", [])],
            series=[SeriesRecord.from_dict(s) for s in d.get("series", [])],
            notes=[str(n) for n in d.get("notes", [])],
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))

    def save(self, directory: Optional[str] = None) -> Path:
        directory = directory or os.environ.get("REPRO_RESULTS_DIR", "results")
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        slug = "".join(
            ch if ch.isalnum() or ch in "._" else "-"
            for ch in self.experiment.lower().replace(" ", "_")
        ).strip("-")
        out = path / f"{slug}.json"
        out.write_text(json.dumps(self.to_dict(), indent=2))
        return out


def emit_observability(
    obs: Observability,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> List[Path]:
    """Write the observability artifacts collected during a bench run.

    Exports the *last* captured run as a Perfetto trace (``trace_out``,
    with causal spans and flow arrows embedded), the full metrics
    registry as JSON (``metrics_out``, defaulting to
    ``<trace stem>.metrics.json`` next to the trace), and prints the
    human-readable report plus the critical-path blame table when the
    run carried a causal trace.  Returns the paths written.
    """
    written: List[Path] = []
    run = obs.last_run
    causal = getattr(run, "causal", None) if run is not None else None
    if trace_out:
        if run is None:
            raise ValueError("no run was captured; nothing to write to --trace-out")
        dump_trace(
            trace_out, run.trace, run.instants,
            process_name=run.label, causal=causal,
        )
        written.append(Path(trace_out))
        if metrics_out is None:
            metrics_out = str(default_metrics_path(trace_out))
    if metrics_out:
        dump_metrics(metrics_out, obs.registry)
        written.append(Path(metrics_out))
    print(render_report(obs.registry, trace=run.trace if run else None))
    if causal is not None and getattr(causal, "spans", None):
        from repro.obs.causal import iteration_blames, render_blame_table

        print(render_blame_table(iteration_blames(causal.spans), title=run.label))
    for path in written:
        print(f"[observability: wrote {path}]")
    return written
