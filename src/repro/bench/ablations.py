"""Ablations beyond the paper's figures (DESIGN.md §design choices).

1. straggler-distribution sensitivity — do the paper's conclusions hold
   under different compute-time regimes?
2. EPS chunk size / rebalance cost — slicing quality vs movement.
3. heterogeneous per-shard models (Figure 2's server-1-SSP /
   server-2-PSSP / server-M-drop-stragglers deployment).
4. push filters (Gaia significance / top-k) — wire bytes vs accuracy.
5. PSSP vs SpecSync — pause probabilistically vs abort-and-refresh
   (the related-work comparison of §V-B, not evaluated in the paper).
6. network-model sensitivity — do the overlap/EPS wins survive different
   latency/bandwidth/fabric regimes?
"""

from __future__ import annotations


import numpy as np

from repro.bench.harness import ExperimentResult, Scale
from repro.bench.workloads import null_step, null_task_spec, workload_for
from repro.core.api import ParameterServerSystem
from repro.core.driver import VirtualClockDriver
from repro.core.keyspace import ElasticSlicer
from repro.core.models import asp, bsp, drop_stragglers, pssp, ssp
from repro.core.server import ExecutionMode
from repro.sim.stragglers import (
    DeterministicCompute,
    ExponentialTailCompute,
    HeterogeneousCompute,
    LogNormalCompute,
    ParetoTailCompute,
    TransientStragglerCompute,
)


def ablation_stragglers(scale: Scale, seed: int = 0) -> ExperimentResult:
    """BSP/SSP/ASP/PSSP durations under five straggler regimes — checks
    that the paper's ordering (ASP ≤ PSSP ≤ SSP ≤ BSP in time) is not an
    artifact of one compute-time distribution."""
    n = 16
    spec = null_task_spec()
    regimes = [
        ("deterministic", DeterministicCompute()),
        ("lognormal", LogNormalCompute(0.15)),
        ("exp-tail", ExponentialTailCompute(0.05, 3.0, 0.05)),
        ("pareto", ParetoTailCompute(2.5, 0.3)),
        ("transient", TransientStragglerCompute(n, slow_factor=3.0, period=40, duration=8)),
        ("heterogeneous", HeterogeneousCompute(n, spread=0.3)),
    ]
    models = [("bsp", bsp()), ("ssp(3)", ssp(3)), ("pssp(3,0.3)", pssp(3, 0.3)), ("asp", asp())]
    result = ExperimentResult(
        "Ablation: straggler-distribution sensitivity",
        headers=["regime", "model", "duration_s", "dprs", "mean_staleness"],
    )
    for regime_name, compute in regimes:
        durations = {}
        for model_name, sync in models:
            system = ParameterServerSystem(
                spec, np.zeros(spec.total_elements), n, 1, sync,
                ExecutionMode.LAZY, seed=seed,
            )
            r = VirtualClockDriver(
                system, null_step, max_iter=scale.dpr_iters // 2,
                compute_model=compute, seed=seed + 1,
            ).run()
            durations[model_name] = r.duration
            result.add_row(regime_name, model_name, round(r.duration, 1),
                           r.metrics.dprs, round(r.metrics.mean_staleness(), 2))
            result.record(f"{regime_name}_{model_name}", duration=r.duration,
                          dprs=r.metrics.dprs)
    result.notes.append("expected ordering within each regime: asp <= pssp <= ssp <= bsp")
    return result


def ablation_eps_chunks(scale: Scale, seed: int = 0) -> ExperimentResult:
    """EPS chunk-size sweep: balance quality and rebalance movement when
    the server count changes 8 → 6."""
    wl = workload_for("alexnet")
    result = ExperimentResult(
        "Ablation: EPS chunk size vs balance and rebalance movement",
        headers=["chunk_elems", "imbalance_8", "imbalance_6", "moved_MB", "pieces"],
    )
    for chunk in (1 << 20, 1 << 18, 1 << 16, 1 << 14, 1 << 12):
        slicer = ElasticSlicer(chunk_elements=chunk)
        a8 = slicer.slice(wl.spec, 8)
        a6 = slicer.rebalance(a8, 6)
        a6.validate_partition(wl.spec)
        moved = a8.moved_bytes(a6) / 1e6
        pieces = sum(len(a8.pieces[m]) for m in range(8))
        result.add_row(chunk, round(a8.imbalance(), 3), round(a6.imbalance(), 3),
                       round(moved, 3), pieces)
        result.record(f"chunk{chunk}", imbalance8=a8.imbalance(),
                      imbalance6=a6.imbalance(), moved_mb=moved)
    result.notes.append("smaller chunks -> better balance, more pieces to manage")
    return result


def ablation_push_filters(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Gaia-style significance / top-k / random push filters on the wire:
    bytes saved vs accuracy kept (an extension the paper's §V-B discusses
    via Gaia but does not evaluate)."""
    from repro.bench.workloads import blobs_task
    from repro.core.filters import RandomSparsifier, SignificanceFilter, TopKFilter
    from repro.sim.cluster import cpu_cluster
    from repro.sim.runner import SimConfig, run_fluentps
    from repro.utils.rng import derive_rng

    n = 8
    filters = [
        ("none", None),
        ("significance(0.01)", lambda: SignificanceFilter(0.01)),
        ("significance(0.05)", lambda: SignificanceFilter(0.05)),
        ("topk(0.25)", lambda: TopKFilter(0.25)),
        ("topk(0.05)", lambda: TopKFilter(0.05)),
        ("random(0.25)", lambda: RandomSparsifier(0.25, derive_rng(seed, "sparse"))),
    ]
    result = ExperimentResult(
        "Ablation: push filters — wire bytes vs accuracy",
        headers=["filter", "wire_MB", "bytes_saved_%", "final_acc", "duration_s"],
    )
    baseline_bytes = None
    for name, factory in filters:
        task = blobs_task(n, n_train=scale.dataset_train, n_test=scale.dataset_test,
                          seed=seed)
        cfg = SimConfig(
            cluster=cpu_cluster(n, 1), max_iter=scale.iters, sync=ssp(2),
            task=task, seed=seed + 1, base_compute_time=0.4,
            push_filter_factory=factory,
        )
        r = run_fluentps(cfg)
        acc = task.eval_fn(r.final_params)
        if baseline_bytes is None:
            baseline_bytes = r.bytes_on_wire
        saved = 100.0 * (1 - r.bytes_on_wire / baseline_bytes)
        result.add_row(name, round(r.bytes_on_wire / 1e6, 2), round(saved, 1),
                       round(acc, 4), round(r.duration, 1))
        result.record(name, wire_bytes=r.bytes_on_wire, saved_pct=saved,
                      final_acc=acc, duration=r.duration)
    result.notes.append(
        "Gaia's claim transfers: most update mass is insignificant per push; "
        "accumulate-and-send preserves accuracy at a fraction of the bytes"
    )
    return result


def ablation_network_sensitivity(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Figure 6's conclusion under four network regimes.

    The co-simulation's NIC model is an approximation; this checks that
    "FluentPS+EPS beats PS-Lite, comm dominates PS-Lite at scale" is not
    an artifact of one latency/bandwidth/fabric setting."""
    from repro.baselines.pslite import run_pslite
    from repro.bench.workloads import workload_for
    from repro.core.models import bsp as bsp_model
    from repro.sim.cluster import gpu_cluster_p2
    from repro.sim.runner import SimConfig, run_fluentps
    from repro.sim.stragglers import gpu_cluster_compute

    n = 16
    wl = workload_for("resnet56")
    regimes = [
        ("default", dict()),
        ("high-latency", dict(latency_s=2e-3)),
        ("half-bandwidth", dict(nic_gbps=0.4)),
        ("double-bandwidth", dict(nic_gbps=1.6)),
    ]
    result = ExperimentResult(
        "Ablation: network-regime sensitivity of the overlap/EPS win",
        headers=["regime", "system", "total_s", "comm_s", "speedup"],
    )
    for name, kwargs in regimes:
        cluster = gpu_cluster_p2(n, 8, **kwargs)
        base = dict(
            cluster=cluster, max_iter=scale.sim_iters, sync=bsp_model(),
            workload=wl, batch_per_worker=max(1, 4096 // n),
            compute_model=gpu_cluster_compute(), seed=seed,
        )
        r_ps = run_pslite(SimConfig(**base))
        r_fl = run_fluentps(SimConfig(**base, slicer=ElasticSlicer()))
        for system, r in (("pslite", r_ps), ("fluentps+eps", r_fl)):
            result.add_row(name, system, round(r.duration, 2),
                           round(r.mean_comm_time, 2),
                           round(r_ps.duration / r.duration, 2))
        result.record(name, pslite=r_ps.duration, fluentps=r_fl.duration,
                      speedup=r_ps.duration / r_fl.duration)
    result.notes.append("the overlap/EPS speedup must hold (>1) in every regime")
    return result


def ablation_specsync(scale: Scale, seed: int = 0) -> ExperimentResult:
    """PSSP vs SpecSync vs ASP on one training job.

    SpecSync keeps parameters fresh by *aborting* stale in-progress
    computations (wasting the work plus a refresh round-trip); PSSP keeps
    staleness bounded by occasionally *pausing* fast workers.  The paper
    argues PSSP achieves the freshness benefit "but avoid[s] the
    computation aborts in SpecSync" — this experiment quantifies it.
    """
    from repro.baselines.specsync import SpecSyncConfig, SpecSyncRunner
    from repro.bench.workloads import blobs_task
    from repro.core.models import asp as asp_model
    from repro.core.models import pssp as pssp_model
    from repro.sim.cluster import cpu_cluster
    from repro.sim.runner import SimConfig, run_fluentps
    from repro.sim.stragglers import cpu_cluster_compute

    n = max(8, scale.big_workers // 2)

    def cfg(sync) -> SimConfig:
        return SimConfig(
            cluster=cpu_cluster(n, 1), max_iter=scale.iters, sync=sync,
            task=blobs_task(n, n_train=scale.dataset_train,
                            n_test=scale.dataset_test, seed=seed),
            seed=seed + 1, base_compute_time=0.4,
            compute_model=cpu_cluster_compute(n),
        )

    evaluator = blobs_task(n, n_train=scale.dataset_train,
                           n_test=scale.dataset_test, seed=seed)
    result = ExperimentResult(
        "Ablation: PSSP vs SpecSync (pause vs abort)",
        headers=["system", "duration_s", "final_acc", "aborts", "wasted_compute_s"],
    )
    spec_runner = SpecSyncRunner(SpecSyncConfig(sim=cfg(asp_model()), abort_threshold=n // 2))
    r_spec = spec_runner.run()
    rows = [
        ("specsync", r_spec, spec_runner.aborts, spec_runner.wasted_compute),
        ("pssp(3,0.3)", run_fluentps(cfg(pssp_model(3, 0.3))), 0, 0.0),
        ("asp", run_fluentps(cfg(asp_model())), 0, 0.0),
    ]
    for name, r, aborts, wasted in rows:
        acc = evaluator.eval_fn(r.final_params)
        result.add_row(name, round(r.duration, 1), round(acc, 4), aborts, round(wasted, 1))
        result.record(name, duration=r.duration, final_acc=acc,
                      aborts=float(aborts), wasted=wasted)
    result.notes.append(
        "PSSP reaches SpecSync-class accuracy without aborting any computation"
    )
    return result


def ablation_per_shard_models(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Figure 2's deployment: different models on different servers of the
    same job (SSP / PSSP / drop-stragglers), vs uniform SSP."""
    n, m = 12, 3
    spec = null_task_spec(elements=96)
    mixed = [ssp(3), pssp(3, 0.3), drop_stragglers(n, n_t=9)]
    uniform = ssp(3)
    result = ExperimentResult(
        "Ablation: heterogeneous per-shard synchronization models",
        headers=["deployment", "duration_s", "dprs", "mean_staleness"],
    )
    for name, sync in (("uniform ssp(3)", uniform), ("mixed ssp/pssp/drop", mixed)):
        system = ParameterServerSystem(
            spec, np.zeros(spec.total_elements), n, m, sync,
            ExecutionMode.LAZY, seed=seed,
        )
        r = VirtualClockDriver(
            system, null_step, max_iter=scale.dpr_iters // 2,
            compute_model=HeterogeneousCompute(n, spread=0.3), seed=seed + 1,
        ).run()
        result.add_row(name, round(r.duration, 1), r.metrics.dprs,
                       round(r.metrics.mean_staleness(), 2))
        result.record(name, duration=r.duration, dprs=r.metrics.dprs)
    result.notes.append(
        "each server runs its own condition instances; mixed deployments are "
        "first-class (the paper's Figure 2)"
    )
    return result
