"""Ablations beyond the paper's figures (DESIGN.md §design choices).

1. straggler-distribution sensitivity — do the paper's conclusions hold
   under different compute-time regimes?
2. EPS chunk size / rebalance cost — slicing quality vs movement.
3. heterogeneous per-shard models (Figure 2's server-1-SSP /
   server-2-PSSP / server-M-drop-stragglers deployment).
4. push filters (Gaia significance / top-k) — wire bytes vs accuracy.
5. PSSP vs SpecSync — pause probabilistically vs abort-and-refresh
   (the related-work comparison of §V-B, not evaluated in the paper).
6. network-model sensitivity — do the overlap/EPS wins survive different
   latency/bandwidth/fabric regimes?

Every ablation is a sweep: each outer-loop iteration is an independent
module-level *arm* submitted through the
:class:`~repro.bench.pool.SweepExecutor` (inline when no pool is given),
with a per-arm seed from :func:`~repro.bench.pool.derive_task_seed`.
"""

from __future__ import annotations


from typing import Optional

import numpy as np

from repro.bench.harness import ExperimentResult, Scale
from repro.bench.pool import RunTask, SweepExecutor, derive_task_seed, run_sweep
from repro.bench.workloads import null_step, null_task_spec, workload_for
from repro.core.api import ParameterServerSystem
from repro.core.driver import VirtualClockDriver
from repro.core.keyspace import ElasticSlicer
from repro.core.models import asp, bsp, drop_stragglers, pssp, ssp
from repro.core.server import ExecutionMode
from repro.sim.stragglers import (
    DeterministicCompute,
    ExponentialTailCompute,
    HeterogeneousCompute,
    LogNormalCompute,
    ParetoTailCompute,
    TransientStragglerCompute,
)


# ---------------------------------------------------------------------------
# 1. straggler-distribution sensitivity
# ---------------------------------------------------------------------------

#: Compute-time regimes swept by the straggler ablation (name → factory).
STRAGGLER_REGIMES = {
    "deterministic": lambda n: DeterministicCompute(),
    "lognormal": lambda n: LogNormalCompute(0.15),
    "exp-tail": lambda n: ExponentialTailCompute(0.05, 3.0, 0.05),
    "pareto": lambda n: ParetoTailCompute(2.5, 0.3),
    "transient": lambda n: TransientStragglerCompute(
        n, slow_factor=3.0, period=40, duration=8
    ),
    "heterogeneous": lambda n: HeterogeneousCompute(n, spread=0.3),
}


def _straggler_arm(scale: Scale, regime: str, seed: int) -> ExperimentResult:
    """One compute-time regime, all four synchronization models."""
    frag = ExperimentResult(f"ablation-stragglers/{regime}", headers=[])
    n = 16
    spec = null_task_spec()
    compute = STRAGGLER_REGIMES[regime](n)
    models = [("bsp", bsp()), ("ssp(3)", ssp(3)), ("pssp(3,0.3)", pssp(3, 0.3)),
              ("asp", asp())]
    for model_name, sync in models:
        system = ParameterServerSystem(
            spec, np.zeros(spec.total_elements), n, 1, sync,
            ExecutionMode.LAZY, seed=seed,
        )
        r = VirtualClockDriver(
            system, null_step, max_iter=scale.dpr_iters // 2,
            compute_model=compute, seed=seed + 1,
        ).run()
        frag.add_row(regime, model_name, round(r.duration, 1),
                     r.metrics.dprs, round(r.metrics.mean_staleness(), 2))
        frag.record(f"{regime}_{model_name}", duration=r.duration,
                    dprs=r.metrics.dprs)
    return frag


def ablation_stragglers(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """BSP/SSP/ASP/PSSP durations under five straggler regimes — checks
    that the paper's ordering (ASP ≤ PSSP ≤ SSP ≤ BSP in time) is not an
    artifact of one compute-time distribution."""
    result = ExperimentResult(
        "Ablation: straggler-distribution sensitivity",
        headers=["regime", "model", "duration_s", "dprs", "mean_staleness"],
    )
    tasks = [
        RunTask(
            fn=_straggler_arm,
            kwargs=dict(
                scale=scale, regime=regime,
                seed=derive_task_seed("ablation-stragglers", regime, seed),
            ),
            key=f"ablation-stragglers/{regime}",
        )
        for regime in STRAGGLER_REGIMES
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append("expected ordering within each regime: asp <= pssp <= ssp <= bsp")
    return result


# ---------------------------------------------------------------------------
# 2. EPS chunk size / rebalance cost
# ---------------------------------------------------------------------------


def _eps_chunk_arm(scale: Scale, chunk: int, seed: int) -> ExperimentResult:
    """One EPS chunk size: balance quality and 8 → 6 rebalance movement."""
    frag = ExperimentResult(f"ablation-eps/chunk{chunk}", headers=[])
    wl = workload_for("alexnet")
    slicer = ElasticSlicer(chunk_elements=chunk)
    a8 = slicer.slice(wl.spec, 8)
    a6 = slicer.rebalance(a8, 6)
    a6.validate_partition(wl.spec)
    moved = a8.moved_bytes(a6) / 1e6
    pieces = sum(len(a8.pieces[m]) for m in range(8))
    frag.add_row(chunk, round(a8.imbalance(), 3), round(a6.imbalance(), 3),
                 round(moved, 3), pieces)
    frag.record(f"chunk{chunk}", imbalance8=a8.imbalance(),
                imbalance6=a6.imbalance(), moved_mb=moved)
    return frag


def ablation_eps_chunks(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """EPS chunk-size sweep: balance quality and rebalance movement when
    the server count changes 8 → 6."""
    result = ExperimentResult(
        "Ablation: EPS chunk size vs balance and rebalance movement",
        headers=["chunk_elems", "imbalance_8", "imbalance_6", "moved_MB", "pieces"],
    )
    tasks = [
        RunTask(
            fn=_eps_chunk_arm,
            kwargs=dict(
                scale=scale, chunk=chunk,
                seed=derive_task_seed("ablation-eps", f"chunk{chunk}", seed),
            ),
            key=f"ablation-eps/chunk{chunk}",
        )
        for chunk in (1 << 20, 1 << 18, 1 << 16, 1 << 14, 1 << 12)
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append("smaller chunks -> better balance, more pieces to manage")
    return result


# ---------------------------------------------------------------------------
# 4. push filters — wire bytes vs accuracy
# ---------------------------------------------------------------------------

#: Filter sweep order; specs are (kind, param) rebuilt inside the arm.
FILTER_SPECS = (
    ("none", None, None),
    ("significance(0.01)", "significance", 0.01),
    ("significance(0.05)", "significance", 0.05),
    ("topk(0.25)", "topk", 0.25),
    ("topk(0.05)", "topk", 0.05),
    ("random(0.25)", "random", 0.25),
)


def _push_filter_arm(scale: Scale, name: str, kind: Optional[str],
                     param: Optional[float], seed: int) -> ExperimentResult:
    """One push-filter variant on the same 8-worker SSP(2) training run."""
    from repro.bench.workloads import blobs_task
    from repro.core.filters import RandomSparsifier, SignificanceFilter, TopKFilter
    from repro.sim.cluster import cpu_cluster
    from repro.sim.runner import SimConfig, run_fluentps
    from repro.utils.rng import derive_rng

    frag = ExperimentResult(f"ablation-filters/{name}", headers=[])
    if kind is None:
        factory = None
    elif kind == "significance":
        factory = lambda: SignificanceFilter(param)
    elif kind == "topk":
        factory = lambda: TopKFilter(param)
    elif kind == "random":
        factory = lambda: RandomSparsifier(param, derive_rng(seed, "sparse"))
    else:
        raise ValueError(f"unknown filter kind {kind!r}")
    n = 8
    task = blobs_task(n, n_train=scale.dataset_train, n_test=scale.dataset_test,
                      seed=seed)
    cfg = SimConfig(
        cluster=cpu_cluster(n, 1), max_iter=scale.iters, sync=ssp(2),
        task=task, seed=seed + 1, base_compute_time=0.4,
        push_filter_factory=factory,
    )
    r = run_fluentps(cfg)
    acc = task.eval_fn(r.final_params)
    frag.record(name, wire_bytes=r.bytes_on_wire, final_acc=acc,
                duration=r.duration)
    return frag


def ablation_push_filters(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """Gaia-style significance / top-k / random push filters on the wire:
    bytes saved vs accuracy kept (an extension the paper's §V-B discusses
    via Gaia but does not evaluate).

    Arms report raw metrics; rows (and the bytes-saved percentage against
    the unfiltered baseline) are assembled here so the comparison stays
    identical no matter where each arm ran.
    """
    result = ExperimentResult(
        "Ablation: push filters — wire bytes vs accuracy",
        headers=["filter", "wire_MB", "bytes_saved_%", "final_acc", "duration_s"],
    )
    tasks = [
        RunTask(
            fn=_push_filter_arm,
            kwargs=dict(
                scale=scale, name=name, kind=kind, param=param,
                # Paired: bytes saved is measured against the unfiltered
                # baseline, so every filter runs the same training job.
                seed=derive_task_seed("ablation-filters", "ssp2-blobs", seed),
            ),
            key=f"ablation-filters/{name}",
        )
        for name, kind, param in FILTER_SPECS
    ]
    baseline_bytes = None
    for frag in run_sweep(tasks, pool):
        rec = frag.records[0]
        wire, acc = rec.metrics["wire_bytes"], rec.metrics["final_acc"]
        if baseline_bytes is None:
            baseline_bytes = wire
        saved = 100.0 * (1 - wire / baseline_bytes)
        rec.metrics["saved_pct"] = saved
        result.add_row(rec.name, round(wire / 1e6, 2), round(saved, 1),
                       round(acc, 4), round(rec.metrics["duration"], 1))
        result.records.extend(frag.records)
        result.series.extend(frag.series)
    result.notes.append(
        "Gaia's claim transfers: most update mass is insignificant per push; "
        "accumulate-and-send preserves accuracy at a fraction of the bytes"
    )
    return result


# ---------------------------------------------------------------------------
# 6. network-model sensitivity
# ---------------------------------------------------------------------------

#: Network regimes swept (name → gpu_cluster_p2 overrides).
NETWORK_REGIMES = (
    ("default", {}),
    ("high-latency", {"latency_s": 2e-3}),
    ("half-bandwidth", {"nic_gbps": 0.4}),
    ("double-bandwidth", {"nic_gbps": 1.6}),
)


def _network_regime_arm(scale: Scale, regime: str, overrides: dict,
                        seed: int) -> ExperimentResult:
    """One network regime: PS-Lite vs FluentPS+EPS under BSP."""
    from repro.baselines.pslite import run_pslite
    from repro.core.models import bsp as bsp_model
    from repro.sim.cluster import gpu_cluster_p2
    from repro.sim.runner import SimConfig, run_fluentps
    from repro.sim.stragglers import gpu_cluster_compute

    frag = ExperimentResult(f"ablation-network/{regime}", headers=[])
    n = 16
    wl = workload_for("resnet56")
    cluster = gpu_cluster_p2(n, 8, **overrides)
    base = dict(
        cluster=cluster, max_iter=scale.sim_iters, sync=bsp_model(),
        workload=wl, batch_per_worker=max(1, 4096 // n),
        compute_model=gpu_cluster_compute(), seed=seed,
    )
    r_ps = run_pslite(SimConfig(**base))
    r_fl = run_fluentps(SimConfig(**base, slicer=ElasticSlicer()))
    for system, r in (("pslite", r_ps), ("fluentps+eps", r_fl)):
        frag.add_row(regime, system, round(r.duration, 2),
                     round(r.mean_comm_time, 2),
                     round(r_ps.duration / r.duration, 2))
    frag.record(regime, pslite=r_ps.duration, fluentps=r_fl.duration,
                speedup=r_ps.duration / r_fl.duration)
    return frag


def ablation_network_sensitivity(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """Figure 6's conclusion under four network regimes.

    The co-simulation's NIC model is an approximation; this checks that
    "FluentPS+EPS beats PS-Lite, comm dominates PS-Lite at scale" is not
    an artifact of one latency/bandwidth/fabric setting."""
    result = ExperimentResult(
        "Ablation: network-regime sensitivity of the overlap/EPS win",
        headers=["regime", "system", "total_s", "comm_s", "speedup"],
    )
    tasks = [
        RunTask(
            fn=_network_regime_arm,
            kwargs=dict(
                scale=scale, regime=regime, overrides=overrides,
                seed=derive_task_seed("ablation-network", regime, seed),
            ),
            key=f"ablation-network/{regime}",
        )
        for regime, overrides in NETWORK_REGIMES
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append("the overlap/EPS speedup must hold (>1) in every regime")
    return result


# ---------------------------------------------------------------------------
# 5. PSSP vs SpecSync
# ---------------------------------------------------------------------------


def _specsync_arm(scale: Scale, variant: str, seed: int) -> ExperimentResult:
    """One system of the pause-vs-abort comparison."""
    from repro.baselines.specsync import SpecSyncConfig, SpecSyncRunner
    from repro.bench.workloads import blobs_task
    from repro.core.models import asp as asp_model
    from repro.core.models import pssp as pssp_model
    from repro.sim.cluster import cpu_cluster
    from repro.sim.runner import SimConfig, run_fluentps
    from repro.sim.stragglers import cpu_cluster_compute

    frag = ExperimentResult(f"ablation-specsync/{variant}", headers=[])
    n = max(8, scale.big_workers // 2)

    def cfg(sync) -> SimConfig:
        return SimConfig(
            cluster=cpu_cluster(n, 1), max_iter=scale.iters, sync=sync,
            task=blobs_task(n, n_train=scale.dataset_train,
                            n_test=scale.dataset_test, seed=seed),
            seed=seed + 1, base_compute_time=0.4,
            compute_model=cpu_cluster_compute(n),
        )

    evaluator = blobs_task(n, n_train=scale.dataset_train,
                           n_test=scale.dataset_test, seed=seed)
    if variant == "specsync":
        runner = SpecSyncRunner(
            SpecSyncConfig(sim=cfg(asp_model()), abort_threshold=n // 2)
        )
        r = runner.run()
        aborts, wasted = runner.aborts, runner.wasted_compute
    elif variant == "pssp(3,0.3)":
        r = run_fluentps(cfg(pssp_model(3, 0.3)))
        aborts, wasted = 0, 0.0
    elif variant == "asp":
        r = run_fluentps(cfg(asp_model()))
        aborts, wasted = 0, 0.0
    else:
        raise ValueError(f"unknown specsync variant {variant!r}")
    acc = evaluator.eval_fn(r.final_params)
    frag.add_row(variant, round(r.duration, 1), round(acc, 4), aborts,
                 round(wasted, 1))
    frag.record(variant, duration=r.duration, final_acc=acc,
                aborts=float(aborts), wasted=wasted)
    return frag


def ablation_specsync(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """PSSP vs SpecSync vs ASP on one training job.

    SpecSync keeps parameters fresh by *aborting* stale in-progress
    computations (wasting the work plus a refresh round-trip); PSSP keeps
    staleness bounded by occasionally *pausing* fast workers.  The paper
    argues PSSP achieves the freshness benefit "but avoid[s] the
    computation aborts in SpecSync" — this experiment quantifies it.
    """
    result = ExperimentResult(
        "Ablation: PSSP vs SpecSync (pause vs abort)",
        headers=["system", "duration_s", "final_acc", "aborts", "wasted_compute_s"],
    )
    tasks = [
        RunTask(
            fn=_specsync_arm,
            kwargs=dict(
                scale=scale, variant=variant,
                # Paired: the three systems are compared head-to-head on
                # one training job, so they share the same draws.
                seed=derive_task_seed("ablation-specsync", "blobs", seed),
            ),
            key=f"ablation-specsync/{variant}",
        )
        for variant in ("specsync", "pssp(3,0.3)", "asp")
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "PSSP reaches SpecSync-class accuracy without aborting any computation"
    )
    return result


# ---------------------------------------------------------------------------
# 3. heterogeneous per-shard models
# ---------------------------------------------------------------------------


def _per_shard_arm(scale: Scale, deployment: str, seed: int) -> ExperimentResult:
    """One Figure-2 deployment: uniform SSP or mixed per-shard models."""
    frag = ExperimentResult(f"ablation-shards/{deployment}", headers=[])
    n, m = 12, 3
    spec = null_task_spec(elements=96)
    if deployment == "uniform ssp(3)":
        sync = ssp(3)
    elif deployment == "mixed ssp/pssp/drop":
        sync = [ssp(3), pssp(3, 0.3), drop_stragglers(n, n_t=9)]
    else:
        raise ValueError(f"unknown deployment {deployment!r}")
    system = ParameterServerSystem(
        spec, np.zeros(spec.total_elements), n, m, sync,
        ExecutionMode.LAZY, seed=seed,
    )
    r = VirtualClockDriver(
        system, null_step, max_iter=scale.dpr_iters // 2,
        compute_model=HeterogeneousCompute(n, spread=0.3), seed=seed + 1,
    ).run()
    frag.add_row(deployment, round(r.duration, 1), r.metrics.dprs,
                 round(r.metrics.mean_staleness(), 2))
    frag.record(deployment, duration=r.duration, dprs=r.metrics.dprs)
    return frag


def ablation_per_shard_models(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """Figure 2's deployment: different models on different servers of the
    same job (SSP / PSSP / drop-stragglers), vs uniform SSP."""
    result = ExperimentResult(
        "Ablation: heterogeneous per-shard synchronization models",
        headers=["deployment", "duration_s", "dprs", "mean_staleness"],
    )
    tasks = [
        RunTask(
            fn=_per_shard_arm,
            kwargs=dict(
                scale=scale, deployment=deployment,
                # Paired: uniform vs mixed are compared on the same
                # heterogeneous-compute draws.
                seed=derive_task_seed("ablation-shards", "fig2", seed),
            ),
            key=f"ablation-shards/{deployment}",
        )
        for deployment in ("uniform ssp(3)", "mixed ssp/pssp/drop")
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "each server runs its own condition instances; mixed deployments are "
        "first-class (the paper's Figure 2)"
    )
    return result
