"""Topology × scale grid: where each sync model's scaling breaks.

The paper's claims (low-frequency sync, PSSP ≈ SSP quality at lower
overhead) only get interesting at cluster scale, so this experiment runs
the timing-only co-simulation over a grid of cluster preset × worker
count × sync model and reports, per cell, both the simulated outcome
(sim-seconds per iteration, DPR load) and the simulator's own cost
(host wall clock, events/second, fast-forward and calendar counters).

The worker axis stretches to 100 000 simulated workers at paper scale —
three orders of magnitude past the old 128-worker macro ceiling — which
is what the engine's calendar queue, mesoscale fast-forward, and
protocol-quiet elision exist for (docs/PERFORMANCE.md, "Mesoscale
fast-forward and the calendar queue" and "Protocol-quiet elision and
parallel shard drains").  Each cell also reports what the run cost the
host: peak RSS and the engine's pending-event high-water mark document
what the box actually has to hold per population.

Reading the grid: a sync model's scaling "breaks" where its
``sim_s_per_iter`` stops being flat in N.  BSP degrades first (the full
barrier makes every iteration as slow as the slowest of N workers), SSP
holds until the staleness window no longer hides the straggler tail, and
PSSP tracks SSP while issuing fewer DPRs per answered pull.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

from repro.bench.harness import ExperimentResult, Scale
from repro.bench.pool import RunTask, SweepExecutor, derive_task_seed, run_sweep
from repro.core.models import SyncModel, bsp, pssp, ssp
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.sim.cluster import ClusterSpec, cpu_cluster, gpu_cluster_p2
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.stragglers import cpu_cluster_compute, gpu_cluster_compute

#: Worker counts per scale preset.  Tiny keeps the grid test-sized;
#: quick (CI) reaches 1k workers; paper runs the full 128 → 1k → 10k
#: sweep the mesoscale engine work targets.
GRID_WORKERS = {
    "tiny": (8, 32),
    "quick": (128, 1_000),
    "paper": (128, 1_000, 10_000, 100_000),
}

#: Cluster topology presets (the paper's two test clusters).
GRID_PRESETS: Tuple[str, ...] = ("cpu", "gpu_p2")

#: Sync-model axis: the barrier, the paper's baseline, and its headline.
GRID_SYNCS: Tuple[str, ...] = ("bsp", "ssp3", "pssp")


def grid_worker_counts(scale: Scale) -> Sequence[int]:
    return GRID_WORKERS.get(scale.name, GRID_WORKERS["quick"])


def _make_sync(name: str) -> SyncModel:
    if name == "bsp":
        return bsp()
    if name == "ssp3":
        return ssp(3)
    if name == "pssp":
        return pssp(2, 0.5)
    raise ValueError(f"unknown sync preset {name!r}")


def _make_cluster(preset: str, n: int) -> ClusterSpec:
    if preset == "cpu":
        return cpu_cluster(n, n_servers=8)
    if preset == "gpu_p2":
        return gpu_cluster_p2(n, n_servers=8)
    raise ValueError(f"unknown cluster preset {preset!r}")


def _grid_arm(preset: str, n: int, sync_name: str, seed: int) -> ExperimentResult:
    """One grid cell: a timing-only run at (preset, N workers, sync)."""
    # One iteration at mesoscale already carries ~2N messages per server;
    # smaller cells take a few iterations so per-iteration numbers are
    # not dominated by the cold first barrier.
    iters = 1 if n >= 1_000 else 4
    compute = cpu_cluster_compute(n) if preset == "cpu" else gpu_cluster_compute()
    cfg = SimConfig(
        cluster=_make_cluster(preset, n),
        max_iter=iters,
        sync=_make_sync(sync_name),
        workload=alexnet_cifar_workload(),
        compute_model=compute,
        seed=seed,
    )
    runner = FluentPSSimRunner(cfg)
    t0 = time.perf_counter()
    res = runner.run()
    wall = time.perf_counter() - t0
    eng = runner.engine
    key = f"scale-grid/{preset}/N{n}/{sync_name}"
    frag = ExperimentResult(key, headers=[])
    per_iter = res.duration / iters
    events_per_sec = eng.events_processed / max(wall, 1e-9)
    from repro.bench.perf import _peak_rss_mb

    frag.add_row(
        preset,
        n,
        sync_name,
        round(wall, 3),
        round(per_iter, 4),
        int(eng.events_processed),
        int(events_per_sec),
        int(eng.events_skipped),
        int(eng.events_elided),
        int(eng.quiet_regions),
        int(eng.rounds_collapsed),
        int(eng.round_events_saved),
        int(eng.pending_high_water),
        round(_peak_rss_mb(), 1),
        int(res.metrics.dprs),
    )
    frag.record(
        key,
        wall_s=wall,
        sim_s=res.duration,
        sim_s_per_iter=per_iter,
        events=float(eng.events_processed),
        events_per_sec=events_per_sec,
        events_skipped=float(eng.events_skipped),
        windows_collapsed=float(eng.windows_collapsed),
        calendar_sweeps=float(eng.calendar_sweeps),
        events_elided=float(eng.events_elided),
        quiet_regions=float(eng.quiet_regions),
        rounds_collapsed=float(eng.rounds_collapsed),
        round_events_saved=float(eng.round_events_saved),
        fused_deliveries=float(runner.net.fused_deliveries),
        server_msgs_inline=float(runner.server_msgs_inline),
        server_msgs_drained=float(runner.server_msgs_drained),
        pending_event_hwm=float(eng.pending_high_water),
        # Process-lifetime peak, so per-cell this is an upper bound
        # ("the cell fit in at most this much") — exact when cells run
        # in their own pool workers, monotone when run inline.
        peak_rss_mb=_peak_rss_mb(),
        messages_on_wire=float(res.messages_on_wire),
        dprs=float(res.metrics.dprs),
    )
    return frag


def scale_grid(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """Cluster preset × worker count × sync model scaling grid."""
    result = ExperimentResult(
        "Topology x scale grid: sync-model scaling to 10k workers",
        headers=[
            "preset",
            "workers",
            "sync",
            "wall_s",
            "sim_s_per_iter",
            "events",
            "events_per_sec",
            "events_skipped",
            "events_elided",
            "quiet_regions",
            "rounds_collapsed",
            "round_events_saved",
            "pending_hwm",
            "peak_rss_mb",
            "dprs",
        ],
    )
    tasks = [
        RunTask(
            fn=_grid_arm,
            kwargs=dict(
                preset=preset,
                n=n,
                sync_name=sync,
                seed=derive_task_seed("scale-grid", f"{preset}/N{n}/{sync}", seed),
            ),
            key=f"scale-grid/{preset}-N{n}-{sync}",
        )
        for preset in GRID_PRESETS
        for n in grid_worker_counts(scale)
        for sync in GRID_SYNCS
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "scaling breaks where sim_s_per_iter stops being flat in workers: "
        "BSP first (full barrier), SSP when staleness no longer hides the "
        "straggler tail, PSSP last (and with fewer DPRs than SSP)"
    )
    return result
