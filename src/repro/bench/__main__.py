"""Run every paper experiment and print/persist the results.

Usage:
    python -m repro.bench                 # all experiments, QUICK scale
    python -m repro.bench --scale paper   # near paper scale (slow)
    python -m repro.bench --only fig6 fig9
    python -m repro.bench --jobs 4        # fan sweep arms across processes
    python -m repro.bench --list

Sweep arms go through :mod:`repro.bench.pool`: ``--jobs N`` runs them on
a process pool and the run cache under ``<save-dir>/.cache`` memoizes
finished arms across invocations (``--no-cache`` to disable).  Output is
byte-identical at any job count.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional

from repro.bench.ablations import (
    ablation_eps_chunks,
    ablation_network_sensitivity,
    ablation_per_shard_models,
    ablation_push_filters,
    ablation_specsync,
    ablation_stragglers,
)
from repro.bench.figures import (
    fig1_pmls_scaling,
    fig3_tradeoff_trace,
    fig5_timeline,
    fig6_overlap,
    fig7_scalability,
    fig8_lazy_vs_soft,
    fig9_dpr_pairs,
    fig10_models,
    fig11_models,
)
from repro.bench.harness import SCALES, Scale, emit_observability
from repro.bench.pool import RunCache, SweepExecutor, WorkerFailure
from repro.bench.scale_grid import scale_grid
from repro.bench.tables import table1_model_matrix, table3_conditions, table4_grid
from repro.bench.theory_bench import theory_bounds
from repro.obs import MetricsRegistry, Observability, observed
from repro.utils.tables import format_table

#: Every experiment behind a uniform (scale, seed, pool) call shape.
#: Non-sweep experiments (table1, fig3, fig5, theory) ignore the pool.
EXPERIMENTS: Dict[str, Callable[[Scale, int, Optional[SweepExecutor]], object]] = {
    "table1": lambda scale, seed, pool: table1_model_matrix(),
    "fig1": lambda scale, seed, pool: fig1_pmls_scaling(scale, seed=seed, pool=pool),
    "fig3": lambda scale, seed, pool: fig3_tradeoff_trace(),
    "fig5": lambda scale, seed, pool: fig5_timeline(scale, seed=seed),
    "fig6": lambda scale, seed, pool: fig6_overlap(scale, seed=seed, pool=pool),
    "fig7": lambda scale, seed, pool: fig7_scalability(scale, seed=seed, pool=pool),
    "fig8": lambda scale, seed, pool: fig8_lazy_vs_soft(scale, seed=seed, pool=pool),
    "fig9": lambda scale, seed, pool: fig9_dpr_pairs(scale, seed=seed, pool=pool),
    "fig10": lambda scale, seed, pool: fig10_models(scale, seed=seed, pool=pool),
    "fig11": lambda scale, seed, pool: fig11_models(scale, seed=seed, pool=pool),
    "table3": lambda scale, seed, pool: table3_conditions(scale, seed=seed, pool=pool),
    "table4": lambda scale, seed, pool: table4_grid(scale, seed=seed, pool=pool),
    "theory": lambda scale, seed, pool: theory_bounds(scale, seed=seed),
    "ablation-stragglers": lambda scale, seed, pool: ablation_stragglers(
        scale, seed=seed, pool=pool
    ),
    "ablation-eps": lambda scale, seed, pool: ablation_eps_chunks(
        scale, seed=seed, pool=pool
    ),
    "ablation-shards": lambda scale, seed, pool: ablation_per_shard_models(
        scale, seed=seed, pool=pool
    ),
    "ablation-filters": lambda scale, seed, pool: ablation_push_filters(
        scale, seed=seed, pool=pool
    ),
    "ablation-specsync": lambda scale, seed, pool: ablation_specsync(
        scale, seed=seed, pool=pool
    ),
    "ablation-network": lambda scale, seed, pool: ablation_network_sensitivity(
        scale, seed=seed, pool=pool
    ),
    "scale-grid": lambda scale, seed, pool: scale_grid(scale, seed=seed, pool=pool),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="FluentPS reproduction: run the paper's experiments.",
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="quick")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; every sweep arm derives its own "
                             "seed from (experiment, variant, --seed)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for sweep arms (default 1: "
                             "run inline; output is identical either way)")
    parser.add_argument("--only", nargs="*", metavar="ID",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--save-dir", default=None,
                        help="directory for JSON results (default: results/)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the run cache (always recompute arms)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="run-cache location (default: <save-dir>/.cache)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome/Perfetto trace of the last run "
                             "(open at https://ui.perfetto.dev)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the metrics registry as JSON (default: "
                             "<trace stem>.metrics.json when --trace-out is set)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the repro.analysis protocol sanitizer over "
                             "every observed run (inside each worker process "
                             "when --jobs > 1); non-zero exit on violations")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    scale = SCALES[args.scale]
    wanted = args.only or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; use --list")
    # With a pooled sweep the parent process never sees worker-side runs,
    # so trace/metrics capture moves into the workers: each arm dumps its
    # own artifacts into a sibling ".arms" directory.
    obs_dir = None
    if (args.trace_out or args.metrics_out) and args.jobs > 1:
        from pathlib import Path

        stem = Path(args.trace_out or args.metrics_out)
        obs_dir = str(stem.with_name(stem.stem + ".arms"))
        print(f"[--jobs {args.jobs}: per-arm traces/metrics will land in "
              f"{obs_dir}/ — inspect with `python -m repro.obs {obs_dir}`]")

    obs = None
    if args.trace_out or args.metrics_out or args.sanitize:
        obs = Observability(MetricsRegistry("bench"))

    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir
        if cache_dir is None:
            import os

            cache_dir = os.path.join(args.save_dir or "results", ".cache")
        cache = RunCache(cache_dir)
    pool = SweepExecutor(
        jobs=args.jobs,
        cache=cache,
        # Inline arms run under the parent's observability, which the
        # end-of-run sanitizer pass already covers; workers need their own.
        sanitize=args.sanitize and args.jobs > 1,
        obs_dir=obs_dir,
    )

    timings = []  # (name, wall_s, per-experiment PoolStats, ok)
    failures = []

    def run_all() -> None:
        for name in wanted:
            t0 = time.time()
            before = pool.stats.snapshot()
            try:
                result = EXPERIMENTS[name](scale, args.seed, pool)
            except WorkerFailure as exc:
                failures.append(name)
                print(f"[{name}: FAILED — {exc}]")
                if exc.remote_traceback:
                    print(exc.remote_traceback.rstrip())
                timings.append(
                    (name, time.time() - t0, pool.stats.since(before), False)
                )
                print()
                continue
            result.show()
            stats = pool.stats.since(before)
            timings.append((name, time.time() - t0, stats, True))
            try:
                path = result.save(directory=args.save_dir)
                print(f"[{name}: {time.time() - t0:.1f}s, saved {path}]\n")
            except OSError:
                print(f"[{name}: {time.time() - t0:.1f}s]\n")

    try:
        if obs is not None:
            with observed(obs):
                run_all()
        else:
            run_all()
    finally:
        pool.close()

    rows = [
        (name, round(wall, 2), s.tasks, s.cache_hits, s.cache_misses,
         "ok" if ok else "FAILED")
        for name, wall, s, ok in timings
    ]
    print(format_table(
        ["experiment", "wall_s", "tasks", "cache_hits", "cache_misses", "status"],
        rows,
        title=f"== timing summary (jobs={args.jobs}, scale={scale.name}) ==",
    ))
    s = pool.stats
    print(f"[pool: jobs={args.jobs} tasks={s.tasks} "
          f"cache_hits={s.cache_hits} cache_misses={s.cache_misses}]")

    if obs is not None:
        if args.trace_out or args.metrics_out:
            trace_out = args.trace_out
            if trace_out and obs.last_run is None:
                # All traced runs happened inside pooled workers; their
                # artifacts are already on disk under obs_dir.
                print("[no run captured in the parent process; see the "
                      f"per-arm traces under {obs_dir}/]" if obs_dir else
                      "[no run captured; nothing to write to --trace-out]")
                trace_out = None
            emit_observability(
                obs, trace_out=trace_out, metrics_out=args.metrics_out
            )
        if args.sanitize:
            from repro.analysis import sanitize_observability

            report = sanitize_observability(obs)
            print(report.describe())
            if not report.ok:
                return 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
