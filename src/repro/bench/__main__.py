"""Run every paper experiment and print/persist the results.

Usage:
    python -m repro.bench                 # all experiments, QUICK scale
    python -m repro.bench --scale paper   # near paper scale (slow)
    python -m repro.bench --only fig6 fig9
    python -m repro.bench --list
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.bench.ablations import (
    ablation_eps_chunks,
    ablation_network_sensitivity,
    ablation_per_shard_models,
    ablation_push_filters,
    ablation_specsync,
    ablation_stragglers,
)
from repro.bench.figures import (
    fig1_pmls_scaling,
    fig3_tradeoff_trace,
    fig5_timeline,
    fig6_overlap,
    fig7_scalability,
    fig8_lazy_vs_soft,
    fig9_dpr_pairs,
    fig10_models,
    fig11_models,
)
from repro.bench.harness import PAPER, QUICK, Scale, emit_observability
from repro.bench.tables import table1_model_matrix, table3_conditions, table4_grid
from repro.bench.theory_bench import theory_bounds
from repro.obs import MetricsRegistry, Observability, observed

EXPERIMENTS: Dict[str, Callable[[Scale], object]] = {
    "table1": lambda scale: table1_model_matrix(),
    "fig1": fig1_pmls_scaling,
    "fig3": lambda scale: fig3_tradeoff_trace(),
    "fig5": fig5_timeline,
    "fig6": fig6_overlap,
    "fig7": fig7_scalability,
    "fig8": fig8_lazy_vs_soft,
    "fig9": fig9_dpr_pairs,
    "fig10": fig10_models,
    "fig11": fig11_models,
    "table3": table3_conditions,
    "table4": table4_grid,
    "theory": theory_bounds,
    "ablation-stragglers": ablation_stragglers,
    "ablation-eps": ablation_eps_chunks,
    "ablation-shards": ablation_per_shard_models,
    "ablation-filters": ablation_push_filters,
    "ablation-specsync": ablation_specsync,
    "ablation-network": ablation_network_sensitivity,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="FluentPS reproduction: run the paper's experiments.",
    )
    parser.add_argument("--scale", choices=["quick", "paper"], default="quick")
    parser.add_argument("--only", nargs="*", metavar="ID",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument("--save-dir", default=None,
                        help="directory for JSON results (default: results/)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write a Chrome/Perfetto trace of the last run "
                             "(open at https://ui.perfetto.dev)")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the metrics registry as JSON (default: "
                             "<trace stem>.metrics.json when --trace-out is set)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run the repro.analysis protocol sanitizer over "
                             "every observed run; non-zero exit on violations")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0

    scale = PAPER if args.scale == "paper" else QUICK
    wanted = args.only or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}; use --list")

    obs = None
    if args.trace_out or args.metrics_out or args.sanitize:
        obs = Observability(MetricsRegistry("bench"))

    def run_all() -> None:
        for name in wanted:
            t0 = time.time()
            result = EXPERIMENTS[name](scale)
            result.show()
            try:
                path = result.save(directory=args.save_dir)
                print(f"[{name}: {time.time() - t0:.1f}s, saved {path}]\n")
            except OSError:
                print(f"[{name}: {time.time() - t0:.1f}s]\n")

    if obs is not None:
        with observed(obs):
            run_all()
        if args.trace_out or args.metrics_out:
            emit_observability(
                obs, trace_out=args.trace_out, metrics_out=args.metrics_out
            )
        if args.sanitize:
            from repro.analysis import sanitize_observability

            report = sanitize_observability(obs)
            print(report.describe())
            if not report.ok:
                return 1
    else:
        run_all()
    return 0


if __name__ == "__main__":
    sys.exit(main())
