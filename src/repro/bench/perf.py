"""Tracked performance microbenchmarks for the simulation hot paths.

Every paper-scale result this repo produces — the Fig. 7 scalability
sweep, the 64/128-worker model matrices, the PSSP ablation grid — is a
function of how fast :mod:`repro.sim` pushes events.  This module pins
that speed down as numbers a PR can be held to:

- **engine** — discrete-event throughput: processes yielding timeouts,
  the pattern every worker/server/transfer loop reduces to;
- **network** — incast messages/second: N senders draining through one
  receiver NIC (the §II-B bottleneck path);
- **sanitizer** — protocol-replay events/second through the
  :mod:`repro.analysis` vector-clock checker;
- **ml** — proxy-model training steps/second (the gradient math a
  co-simulated run interleaves with the event loop);
- **null telemetry** — the per-event cost of instrumentation when the
  null observability backend is active, reported as a percentage of one
  engine event's cost (the "zero-cost when off" contract);
- **macro** — one Fig-7-shaped timing-only run at 128 workers, wall
  clock plus sustained events/second;
- **sweep** — wall clock of a small experiment sweep (fig7 + fig9)
  through the :mod:`repro.bench.pool` executor at ``--jobs N`` vs
  ``--jobs 1``, cache disabled — the number the parallel harness is
  held to.

Usage::

    python -m repro.bench.perf --out BENCH_perf.json          # full scale
    python -m repro.bench.perf --quick                        # CI smoke
    python -m repro.bench.perf --quick --baseline BENCH_perf.json

With ``--baseline`` the run compares its engine events/sec against the
committed numbers and exits non-zero on a regression larger than
``--max-regress`` (default 30%).  ``BENCH_perf.json`` keeps a ``history``
list so the trajectory across PRs stays visible.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.driver import StepContext
from repro.core.models import ssp
from repro.core.server import ShardServer
from repro.obs import NULL_OBS, MetricsRegistry, Observability, observed
from repro.sim.cluster import cpu_cluster
from repro.sim.engine import Engine
from repro.sim.network import Network, NicSpec
from repro.sim.stragglers import cpu_cluster_compute

#: Schema version of the emitted JSON document.
SCHEMA = 1


@dataclass
class BenchResult:
    """One benchmark's headline rate plus supporting detail."""

    name: str
    value: float
    unit: str
    detail: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"value": self.value, "unit": self.unit}
        if self.detail:
            out["detail"] = {k: float(v) for k, v in sorted(self.detail.items())}
        return out


@dataclass(frozen=True)
class PerfScale:
    """Workload sizes for one suite run (quick keeps CI under ~30 s)."""

    name: str
    engine_procs: int
    engine_iters: int
    net_senders: int
    net_msgs: int
    sanitizer_iters: int
    ml_steps: int
    telemetry_ops: int
    macro_workers: int
    macro_iters: int
    macro10k_workers: int
    macro10k_iters: int
    macro10k_repeats: int
    macro100k_workers: int
    macro100k_iters: int
    macro100k_repeats: int
    repeats: int


QUICK = PerfScale(
    name="quick",
    engine_procs=32,
    engine_iters=400,
    net_senders=16,
    net_msgs=40,
    sanitizer_iters=60,
    ml_steps=60,
    telemetry_ops=50_000,
    macro_workers=64,
    macro_iters=4,
    macro10k_workers=1_000,
    macro10k_iters=1,
    macro10k_repeats=2,
    macro100k_workers=5_000,
    macro100k_iters=1,
    macro100k_repeats=1,
    repeats=2,
)

FULL = PerfScale(
    name="full",
    engine_procs=64,
    engine_iters=2_000,
    net_senders=32,
    net_msgs=150,
    sanitizer_iters=400,
    ml_steps=300,
    telemetry_ops=400_000,
    macro_workers=128,
    macro_iters=8,
    macro10k_workers=10_000,
    macro10k_iters=1,
    macro10k_repeats=2,
    macro100k_workers=100_000,
    macro100k_iters=1,
    macro100k_repeats=1,
    repeats=5,
)


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS in MiB (0.0 where unavailable).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the unit is
    normalized here.  The counter is monotone over the process lifetime,
    so for a macro run it reports "the run fit in at most this much" —
    an upper bound, which is the honest direction for a capacity number.
    """
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return 0.0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _best(run_once: Callable[[], Tuple[float, float]], repeats: int) -> Tuple[float, float]:
    """Run ``run_once`` ``repeats`` times; return (best units/sec, best secs).

    ``run_once`` returns ``(units_of_work, elapsed_seconds)``.  Best-of-N
    damps scheduler noise the way timeit does.
    """
    best_rate, best_secs = 0.0, float("inf")
    for _ in range(max(1, repeats)):
        units, secs = run_once()
        secs = max(secs, 1e-9)
        rate = units / secs
        if rate > best_rate:
            best_rate, best_secs = rate, secs
    return best_rate, best_secs


# ---------------------------------------------------------------------------
# engine: process-yield-timeout event throughput
# ---------------------------------------------------------------------------


def bench_engine(scale: PerfScale) -> BenchResult:
    """Events/second through the canonical process loop: each process
    yields a bare delay (the zero-allocation timeout spelling used by the
    simulator's hot paths; before the fast path this was ``yield
    Timeout(delay)``, which the engine still accepts)."""

    def run_once() -> Tuple[float, float]:
        eng = Engine()

        def proc(delay: float):
            for _ in range(scale.engine_iters):
                yield delay

        for p in range(scale.engine_procs):
            eng.spawn(proc(1.0 + p * 1e-3), name=f"p{p}")
        t0 = time.perf_counter()
        eng.run()
        dt = time.perf_counter() - t0
        return float(eng.events_processed), dt

    rate, secs = _best(run_once, scale.repeats)
    return BenchResult(
        "engine_events_per_sec",
        rate,
        "events/s",
        {"events": scale.engine_procs * scale.engine_iters, "best_run_s": secs},
    )


# ---------------------------------------------------------------------------
# network: incast messages/second
# ---------------------------------------------------------------------------


def bench_network(scale: PerfScale) -> BenchResult:
    """Messages/second with N senders draining through one receiver NIC."""
    size = 64 * 1024

    counters: Dict[str, float] = {}

    def run_once() -> Tuple[float, float]:
        eng = Engine()
        net = Network(eng, latency_s=50e-6)
        nic = NicSpec(bandwidth_Bps=125e6)
        sink = net.add_node("sink", nic)
        for s in range(scale.net_senders):
            net.add_node(f"w{s}", nic)

        def sender(s: int):
            for _ in range(scale.net_msgs):
                yield net.send(f"w{s}", "sink", size, tag="push")

        for s in range(scale.net_senders):
            eng.spawn(sender(s), name=f"send{s}")
        t0 = time.perf_counter()
        eng.run()
        dt = time.perf_counter() - t0
        assert sink.messages_received == scale.net_senders * scale.net_msgs
        counters["fast_path_transfers"] = net.fast_path_transfers
        counters["fallback_transfers"] = net.fallback_transfers
        return float(net.total_messages), dt

    rate, secs = _best(run_once, scale.repeats)
    return BenchResult(
        "network_messages_per_sec",
        rate,
        "messages/s",
        {
            "messages": scale.net_senders * scale.net_msgs,
            "best_run_s": secs,
            **counters,
        },
    )


# ---------------------------------------------------------------------------
# sanitizer: protocol replay events/second
# ---------------------------------------------------------------------------


def _protocol_stream(iters: int, n_workers: int = 8):
    """A captured SSP push/pull event stream for replay benchmarking."""
    from repro.analysis import events_from_instants

    obs = Observability(MetricsRegistry("perf"))
    with observed(obs):
        clock = {"t": 0.0}

        def tick() -> float:
            clock["t"] += 1e-4
            return clock["t"]

        server = ShardServer(
            shard_id=0, n_workers=n_workers, model=ssp(2), obs=obs, clock=tick
        )
        replies = []
        for i in range(iters):
            for w in range(n_workers):
                server.handle_push(w, i)
                server.handle_pull(w, i, respond=replies.append)
    return events_from_instants(obs.instants)


def bench_sanitizer(scale: PerfScale) -> BenchResult:
    """Replay events/second through the vector-clock protocol checker."""
    from repro.analysis import sanitize_events

    events = _protocol_stream(scale.sanitizer_iters)

    def run_once() -> Tuple[float, float]:
        t0 = time.perf_counter()
        report = sanitize_events(events)
        dt = time.perf_counter() - t0
        assert report.ok, "perf stream must be violation-free"
        return float(len(events)), dt

    rate, secs = _best(run_once, scale.repeats)
    return BenchResult(
        "sanitizer_events_per_sec",
        rate,
        "events/s",
        {"events": len(events), "best_run_s": secs},
    )


# ---------------------------------------------------------------------------
# ml: proxy training steps/second
# ---------------------------------------------------------------------------


def bench_ml(scale: PerfScale) -> BenchResult:
    """Gradient-step throughput of the blobs proxy task (one worker)."""
    from repro.bench.workloads import blobs_task

    task = blobs_task(n_workers=1, n_train=1024, n_test=128, seed=7)
    rng = np.random.default_rng(11)

    def run_once() -> Tuple[float, float]:
        params = task.init_params.copy()
        t0 = time.perf_counter()
        for i in range(scale.ml_steps):
            update = task.step_fn(
                StepContext(worker=0, iteration=i, params=params, rng=rng)
            )
            params += update
        dt = time.perf_counter() - t0
        return float(scale.ml_steps), dt

    rate, secs = _best(run_once, scale.repeats)
    return BenchResult(
        "ml_steps_per_sec", rate, "steps/s", {"steps": scale.ml_steps, "best_run_s": secs}
    )


# ---------------------------------------------------------------------------
# null telemetry: instrumentation cost with observability off
# ---------------------------------------------------------------------------


class _TelemetryStandIn:
    """Mirrors the runtime's per-event null-telemetry guards for the cost
    probe: ShardServer's cached ``_obs_on`` bool and the ``causal is None``
    check the network's wire paths make before recording causal spans."""

    __slots__ = ("_obs_on", "_causal")

    def __init__(self) -> None:
        self._obs_on = NULL_OBS.enabled
        self._causal = None


def bench_null_telemetry(scale: PerfScale, engine_rate: float) -> BenchResult:
    """Per-event null-backend telemetry cost as % of one engine event.

    Emulates exactly the per-event instrumentation the runtime pays with
    observability disabled: the server's cached-bool ``_obs_on`` guard
    plus the network's ``causal is None`` guard, behind which every
    emission — instant-log record, causal-span record, and pre-bound
    metric updates alike — is skipped before any label formatting
    happens.  The headline number is that cost divided by the engine's
    per-event cost — the acceptance bar is <= 5%.
    """
    if NULL_OBS.enabled:
        raise AssertionError("null bundle must be disabled")
    srv = _TelemetryStandIn()
    n = scale.telemetry_ops

    def run_once() -> Tuple[float, float]:
        t0 = time.perf_counter()
        for _ in range(n):
            if srv._obs_on:
                raise AssertionError("stand-in must be disabled")
            if srv._causal is not None:
                raise AssertionError("stand-in must have no causal trace")
        dt = time.perf_counter() - t0
        return float(n), dt

    def run_empty() -> Tuple[float, float]:
        t0 = time.perf_counter()
        for _ in range(n):
            pass
        dt = time.perf_counter() - t0
        return float(n), dt

    rate, _secs = _best(run_once, scale.repeats)
    empty_rate, _ = _best(run_empty, scale.repeats)
    # Net telemetry time per event: instrumented loop minus loop overhead.
    per_op = max(0.0, 1.0 / rate - 1.0 / empty_rate)
    per_event = 1.0 / max(engine_rate, 1e-9)
    overhead_pct = 100.0 * per_op / per_event
    return BenchResult(
        "null_telemetry_overhead_pct",
        overhead_pct,
        "% of engine event cost",
        {"telemetry_ns_per_event": per_op * 1e9, "engine_ns_per_event": per_event * 1e9},
    )


# ---------------------------------------------------------------------------
# macro: Fig-7-shaped timing-only run at 128 workers
# ---------------------------------------------------------------------------


def _bench_macro_run(name: str, workers: int, iters: int, repeats: int) -> BenchResult:
    """Best-of-N wall clock of one Fig-7-shaped timing-only co-simulation
    at ``workers`` × ``iters`` (fresh runner each run, like the micro
    benchmarks: a single macro run is noisy on a loaded machine)."""
    from repro.ml.models_zoo import alexnet_cifar_workload
    from repro.sim.runner import FluentPSSimRunner, SimConfig

    wall = float("inf")
    events = 0
    result = None
    counters: Dict[str, float] = {}
    for _ in range(max(1, repeats)):
        cfg = SimConfig(
            cluster=cpu_cluster(workers, n_servers=8),
            max_iter=iters,
            sync=ssp(3),
            workload=alexnet_cifar_workload(),
            compute_model=cpu_cluster_compute(workers),
            seed=3,
        )
        runner = FluentPSSimRunner(cfg)
        t0 = time.perf_counter()
        run_result = runner.run()
        run_wall = time.perf_counter() - t0
        if run_wall < wall:
            wall = run_wall
            events = runner.engine.events_processed
            result = run_result
            counters = {
                "fast_path_transfers": runner.net.fast_path_transfers,
                "fallback_transfers": runner.net.fallback_transfers,
                "snapshot_copies": sum(s.snapshot_copies for s in runner.servers),
                "snapshot_copies_avoided": sum(
                    s.snapshot_copies_avoided for s in runner.servers
                ),
                "events_skipped": runner.engine.events_skipped,
                "windows_collapsed": runner.engine.windows_collapsed,
                "calendar_sweeps": runner.engine.calendar_sweeps,
                "server_msgs_inline": runner.server_msgs_inline,
                "server_msgs_drained": runner.server_msgs_drained,
                "events_elided": runner.engine.events_elided,
                "quiet_regions": runner.engine.quiet_regions,
                "fused_deliveries": runner.net.fused_deliveries,
                "pending_event_hwm": runner.engine.pending_high_water,
                "rounds_collapsed": runner.engine.rounds_collapsed,
                "round_events_saved": runner.engine.round_events_saved,
            }
    return BenchResult(
        name,
        wall,
        "s",
        {
            "workers": workers,
            "iterations": iters,
            "events": events,
            "events_per_sec": events / max(wall, 1e-9),
            # Scale-independent throughput proxy that stays meaningful
            # when the closed-form round fast-forward leaves few (or
            # zero) events to process: the events the run *represents*
            # per wall second, processed plus analytically saved.
            "effective_events_per_sec": (
                events + counters.get("round_events_saved", 0.0)
            )
            / max(wall, 1e-9),
            "sim_duration_s": result.duration,
            "messages_on_wire": result.messages_on_wire,
            "peak_rss_mb": _peak_rss_mb(),
            **counters,
        },
    )


def bench_macro(scale: PerfScale) -> BenchResult:
    """Wall clock of one Fig-7-shaped timing-only run at 128 workers."""
    return _bench_macro_run(
        "macro_fig7_wall_s", scale.macro_workers, scale.macro_iters, scale.repeats
    )


def bench_macro_10k(scale: PerfScale) -> BenchResult:
    """Wall clock of the mesoscale run: same fig7 shape, 10k workers.

    One iteration is enough — at 10k workers a single iteration already
    pushes ~10x the 128-worker macro's message count, and the quantity
    under test is per-event engine cost (calendar queue + fast-forward),
    not steady-state convergence.  The acceptance bar ties this to the
    128-worker macro: < 10x its wall time despite 78x the workers.
    """
    return _bench_macro_run(
        "macro_10k_wall_s",
        scale.macro10k_workers,
        scale.macro10k_iters,
        scale.macro10k_repeats,
    )


def bench_macro_100k(scale: PerfScale) -> BenchResult:
    """Wall clock of the 100k-worker macro: the largest population the
    grid documents (PSP/consistency-model claims only reveal their shape
    at this scale — see ISSUE 9 / ROADMAP).  Single repeat: the quantity
    under test is whether the box holds a 100k-worker event population at
    all (peak RSS and the pending-event high-water mark ride along in the
    detail), and the < 60 s acceptance bar has a wide enough margin that
    best-of-N buys nothing.
    """
    return _bench_macro_run(
        "macro_100k_wall_s",
        scale.macro100k_workers,
        scale.macro100k_iters,
        scale.macro100k_repeats,
    )


def bench_macro_100k_sanitized(scale: PerfScale) -> BenchResult:
    """The 100k-worker run with observability + protocol sanitation.

    Exercises the streaming instant log end to end: the run emits its
    multi-million-event protocol stream into a disk-spilling
    :class:`~repro.obs.export.InstantLog` (``causal=False`` keeps the
    closed-form round fast-forward eligible, ``span_capture=False``
    drops the per-span list a sanitize run never reads), then the
    vector-clock sanitizer replays the spilled stream from disk in
    chunks.  The quantity under test is peak RSS — the full-scale
    acceptance bar is < 1 GiB (:data:`SANITIZED_RSS_MAX_MB`) where the
    pre-streaming implementation held 3.5M event dicts in RAM — so a
    single repeat suffices and the wall time stays ungated.
    """
    from repro.analysis.sanitizer import sanitize_observability
    from repro.ml.models_zoo import alexnet_cifar_workload
    from repro.sim.runner import FluentPSSimRunner, SimConfig

    workers = scale.macro100k_workers
    obs = Observability(MetricsRegistry("perf-sanitized"), causal=False)
    cfg = SimConfig(
        cluster=cpu_cluster(workers, n_servers=8),
        max_iter=scale.macro100k_iters,
        sync=ssp(3),
        workload=alexnet_cifar_workload(),
        compute_model=cpu_cluster_compute(workers),
        seed=3,
        obs=obs,
        span_capture=False,
    )
    runner = FluentPSSimRunner(cfg)
    t0 = time.perf_counter()
    runner.run()
    run_wall = time.perf_counter() - t0
    cap = obs.last_run
    t0 = time.perf_counter()
    report = sanitize_observability(obs)
    sanitize_wall = time.perf_counter() - t0
    assert report.ok, "sanitized macro run must be violation-free"
    return BenchResult(
        "macro_100k_sanitized_wall_s",
        run_wall + sanitize_wall,
        "s",
        {
            "workers": workers,
            "iterations": scale.macro100k_iters,
            "run_wall_s": run_wall,
            "sanitize_wall_s": sanitize_wall,
            "events_checked": report.n_events,
            "instants": len(cap.instants),
            "instants_spilled": cap.instants.spilled_events,
            "rounds_collapsed": runner.engine.rounds_collapsed,
            "round_events_saved": runner.engine.round_events_saved,
            "peak_rss_mb": _peak_rss_mb(),
        },
    )


# ---------------------------------------------------------------------------
# sweep: parallel harness wall clock vs serial
# ---------------------------------------------------------------------------


def bench_sweep(scale: PerfScale) -> BenchResult:
    """Wall clock of a fig7+fig9 sweep through the pool executor.

    Runs the same experiment set once at ``jobs=1`` (inline) and once at
    ``jobs=min(4, cpus)`` with the cache disabled, and reports the
    parallel wall time with the serial time and speedup as detail.  On a
    single-core machine the speedup hovers around (or below, from pool
    overhead) 1x — ``cpus`` in the detail says which regime the number
    came from.
    """
    import os

    from repro.bench import figures
    from repro.bench.harness import QUICK as BENCH_QUICK
    from repro.bench.harness import TINY as BENCH_TINY
    from repro.bench.pool import SweepExecutor

    bench_scale = BENCH_QUICK if scale.name == "full" else BENCH_TINY
    jobs = min(4, os.cpu_count() or 1)

    def run_at(n_jobs: int) -> float:
        with SweepExecutor(jobs=n_jobs) as pool:
            t0 = time.perf_counter()
            figures.fig7_scalability(bench_scale, pool=pool)
            figures.fig9_dpr_pairs(bench_scale, pool=pool)
            return time.perf_counter() - t0

    serial = min(run_at(1) for _ in range(max(1, scale.repeats)))
    parallel = min(run_at(jobs) for _ in range(max(1, scale.repeats)))
    return BenchResult(
        "sweep_wall_s",
        parallel,
        "s",
        {
            "jobs": jobs,
            "jobs1_wall_s": serial,
            "speedup": serial / max(parallel, 1e-9),
            "cpus": os.cpu_count() or 1,
        },
    )


# ---------------------------------------------------------------------------
# suite driver
# ---------------------------------------------------------------------------


def run_suite(scale: PerfScale) -> Dict[str, object]:
    """Run every benchmark at ``scale``; returns the JSON document body."""
    results: List[BenchResult] = []
    engine = bench_engine(scale)
    results.append(engine)
    results.append(bench_network(scale))
    results.append(bench_sanitizer(scale))
    results.append(bench_ml(scale))
    results.append(bench_null_telemetry(scale, engine.value))
    results.append(bench_macro(scale))
    results.append(bench_macro_10k(scale))
    results.append(bench_macro_100k(scale))
    results.append(bench_macro_100k_sanitized(scale))
    results.append(bench_sweep(scale))
    return {
        "schema": SCHEMA,
        "scale": scale.name,
        "python": platform.python_version(),
        "benchmarks": {r.name: r.to_dict() for r in results},
    }


def _bench_value(doc: Dict[str, object], name: str) -> Optional[float]:
    bench = doc.get("benchmarks", {}).get(name)
    return None if bench is None else float(bench["value"])


def _detail_value(doc: Dict[str, object], name: str, key: str) -> Optional[float]:
    bench = doc.get("benchmarks", {}).get(name)
    if bench is None:
        return None
    v = bench.get("detail", {}).get(key)
    return None if v is None else float(v)


#: (name, higher_is_better) pairs the baseline comparison gates on.  The
#: engine and network rates are hot-path numbers stable enough to gate;
#: ``macro_fig7_wall_s`` (lower is better) guards the end-to-end
#: co-simulation — it is the noisiest of the three, which is why the
#: default allowance is a generous 30%.  The NumPy/ML numbers stay
#: ungated: they track BLAS builds, not this repo's code.
GATED_BENCHMARKS: List[Tuple[str, bool]] = [
    ("engine_events_per_sec", True),
    ("network_messages_per_sec", True),
    ("macro_fig7_wall_s", False),
    ("macro_10k_wall_s", False),
    ("macro_100k_wall_s", False),
]

#: Wall-time benchmarks that fall back to the scale-independent
#: ``events_per_sec`` detail when current and baseline documents were
#: produced at different scales (CI runs ``--quick``, the committed
#: record is full scale).
CROSS_SCALE_BENCHMARKS = {
    "macro_fig7_wall_s",
    "macro_10k_wall_s",
    "macro_100k_wall_s",
}

#: (benchmark, detail key) pairs gated like wall times (lower is
#: better, +30% ceiling): memory regressions fail CI, not just
#: slowdowns.  Details are only comparable at equal scales — the gate is
#: noted as skipped (never silently dropped) across scales, and likewise
#: when a baseline detail is absent or zero (e.g. ``pending_event_hwm``
#: after a fully collapsed run schedules no per-worker events at all).
GATED_DETAILS: List[Tuple[str, str]] = [
    ("macro_100k_wall_s", "peak_rss_mb"),
    ("macro_100k_wall_s", "pending_event_hwm"),
    ("macro_100k_sanitized_wall_s", "peak_rss_mb"),
]

#: Absolute ceiling for ``null_telemetry_overhead_pct``.  A relative
#: gate is meaningless for a number that should sit near zero (a 30%
#: regression of 0.1% is still nothing), so the disabled-path contract
#: is enforced as an absolute bound instead.
NULL_TELEMETRY_MAX_PCT = 5.0

#: Absolute peak-RSS ceiling (MiB) for the full-scale sanitized 100k
#: macro run: the streaming instant log's contract is that a 100k-worker
#: observability + sanitize pass fits in under 1 GiB, where holding the
#: ~3.5M-event protocol stream in memory cost ~1.4 GiB.  Quick-scale
#: documents are not held to it (their run is 20x smaller, the bound
#: would be vacuous).
SANITIZED_RSS_MAX_MB = 1024.0


def check_regression(
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regress: float = 0.30,
    notes: Optional[List[str]] = None,
) -> List[str]:
    """Compare against a committed baseline document.

    Returns failure messages for every entry in :data:`GATED_BENCHMARKS`
    that regressed more than ``max_regress``: a rate that dropped below
    ``(1 - max_regress) * baseline``, or a wall time that grew past
    ``(1 + max_regress) * baseline``.  The null-telemetry overhead is
    additionally held to the absolute :data:`NULL_TELEMETRY_MAX_PCT`
    ceiling regardless of the baseline, the full-scale sanitized macro
    run to the absolute :data:`SANITIZED_RSS_MAX_MB` memory ceiling, and
    the :data:`GATED_DETAILS` memory/backlog details to the same +30%
    rule as the wall times (same-scale documents only).

    Wall-time benchmarks are only directly comparable at equal scales
    (CI runs ``--quick``, the committed record is full scale), so when
    the two documents disagree on ``scale`` the gates in
    :data:`CROSS_SCALE_BENCHMARKS` compare the scale-independent
    ``events_per_sec`` detail instead of the wall time.  A benchmark
    that cannot be compared at all (detail missing from either side) is
    reported by name into ``notes`` rather than silently skipped.
    """
    same_scale = current.get("scale") == baseline.get("scale")
    failures: List[str] = []
    if notes is None:
        notes = []
    cur_null = _bench_value(current, "null_telemetry_overhead_pct")
    if cur_null is not None and cur_null > NULL_TELEMETRY_MAX_PCT:
        failures.append(
            f"null_telemetry_overhead_pct: {cur_null:.2f}% exceeds the "
            f"absolute {NULL_TELEMETRY_MAX_PCT:.0f}% disabled-path ceiling"
        )
    cur_rss = _detail_value(current, "macro_100k_sanitized_wall_s", "peak_rss_mb")
    if (
        current.get("scale") == "full"
        and cur_rss is not None
        and cur_rss > SANITIZED_RSS_MAX_MB
    ):
        failures.append(
            f"macro_100k_sanitized_wall_s: peak_rss_mb {cur_rss:,.0f} exceeds "
            f"the absolute {SANITIZED_RSS_MAX_MB:,.0f} MiB streaming-log ceiling"
        )
    for name, key in GATED_DETAILS:
        if not same_scale:
            notes.append(
                f"{name}.{key}: detail gate skipped — documents are at "
                f"different scales"
            )
            continue
        base = _detail_value(baseline, name, key)
        cur = _detail_value(current, name, key)
        if base is None or base <= 0 or cur is None:
            missing = "baseline" if base is None or base <= 0 else "current"
            notes.append(
                f"{name}.{key}: detail gate skipped — no usable value in "
                f"the {missing} document"
            )
            continue
        growth = (cur - base) / base
        if growth > max_regress:
            failures.append(
                f"{name}.{key}: {cur:,.4g} is {growth:.0%} above baseline "
                f"{base:,.4g} (limit {max_regress:.0%})"
            )
    for name, higher_is_better in GATED_BENCHMARKS:
        if name in CROSS_SCALE_BENCHMARKS and not same_scale:
            # Prefer the collapse-aware throughput proxy; fall back to
            # raw events_per_sec for baselines that predate it.
            key = "effective_events_per_sec"
            base = _detail_value(baseline, name, key)
            cur = _detail_value(current, name, key)
            if base is None or cur is None:
                key = "events_per_sec"
                base = _detail_value(baseline, name, key)
                cur = _detail_value(current, name, key)
            if base is None or cur is None or base <= 0:
                missing = "baseline" if base is None or base <= 0 else "current"
                notes.append(
                    f"{name}: cross-scale gate skipped — no {key} "
                    f"detail in the {missing} document"
                )
                continue
            drop = (base - cur) / base
            if drop > max_regress:
                failures.append(
                    f"{name} ({key}, cross-scale): {cur:,.0f} is "
                    f"{drop:.0%} below baseline {base:,.0f} "
                    f"(limit {max_regress:.0%})"
                )
            continue
        base, cur = _bench_value(baseline, name), _bench_value(current, name)
        if base is None or cur is None or base <= 0:
            missing = "baseline" if base is None or base <= 0 else "current"
            notes.append(
                f"{name}: gate skipped — benchmark missing from the "
                f"{missing} document"
            )
            continue
        if higher_is_better:
            drop = (base - cur) / base
            if drop > max_regress:
                failures.append(
                    f"{name}: {cur:,.0f} is {drop:.0%} below baseline "
                    f"{base:,.0f} (limit {max_regress:.0%})"
                )
        else:
            growth = (cur - base) / base
            if growth > max_regress:
                failures.append(
                    f"{name}: {cur:,.4g} is {growth:.0%} above baseline "
                    f"{base:,.4g} (limit {max_regress:.0%})"
                )
    return failures


def render(doc: Dict[str, object]) -> str:
    """Human-readable one-line-per-benchmark summary."""
    lines = [f"== repro.bench.perf ({doc['scale']}, py{doc['python']}) =="]
    for name, bench in doc["benchmarks"].items():
        lines.append(f"{name:32s} {bench['value']:>14,.1f} {bench['unit']}")
        detail = bench.get("detail", {})
        if detail:
            bits = ", ".join(f"{k}={v:,.4g}" for k, v in detail.items())
            lines.append(f"{'':32s}   ({bits})")
    return "\n".join(lines)


def _rolled_history(out: Path) -> List[Dict[str, object]]:
    """The history for a new document at ``out``: the previous document's
    history plus the previous document itself (its own history stripped),
    so every ``--out`` run extends the perf trajectory by one entry."""
    if not out.exists():
        return []
    try:
        prev = json.loads(out.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(prev, dict) or "benchmarks" not in prev:
        return []
    history = prev.get("history", [])
    if not isinstance(history, list):
        history = []
    entry = {k: v for k, v in prev.items() if k != "history"}
    return history + [entry]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf",
        description="Run the tracked hot-path performance benchmarks.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized runs (default: full scale)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write results JSON (e.g. BENCH_perf.json)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="committed baseline to compare against")
    parser.add_argument("--max-regress", type=float, default=0.30,
                        help="fail when engine events/sec drops more than "
                             "this fraction below the baseline (default 0.30)")
    args = parser.parse_args(argv)

    scale = QUICK if args.quick else FULL
    # The baseline is read BEFORE --out writes: refreshing the committed
    # record in place (--baseline X --out X) must gate against the previous
    # document, not the one this run just wrote.
    baseline = None
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())

    doc = run_suite(scale)
    print(render(doc))

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        doc["history"] = _rolled_history(out)
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"[perf: wrote {out}]")

    if baseline is not None:
        notes: List[str] = []
        failures = check_regression(doc, baseline, args.max_regress, notes=notes)
        for name, _higher in GATED_BENCHMARKS:
            base_v = _bench_value(baseline, name)
            cur_v = _bench_value(doc, name)
            if base_v and cur_v:
                print(
                    f"[perf: {name} {cur_v:,.4g} vs baseline "
                    f"{base_v:,.4g} ({cur_v / base_v:.2f}x)]"
                )
        for msg in notes:
            print(f"[perf: {msg}]")
        for msg in failures:
            print(f"PERF REGRESSION: {msg}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
