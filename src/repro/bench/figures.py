"""One experiment function per paper figure (see DESIGN.md's index).

Every function takes a :class:`~repro.bench.harness.Scale` and returns an
:class:`~repro.bench.harness.ExperimentResult` whose rows mirror the
figure's series.  The pytest benchmarks call these and assert the paper's
qualitative shape; the examples print them.

Sweep-shaped figures (6/7/8/9/10/11 and fig 1) decompose into
module-level *arm* functions — one independent, JSON-parameterized unit
per outer-loop iteration — submitted through a
:class:`~repro.bench.pool.SweepExecutor`.  Pass ``pool=`` to fan arms
out across processes and memoize them in the run cache; the default
(no pool) runs the arms inline in the same order, producing the same
bytes.  Each arm's seed comes from
:func:`~repro.bench.pool.derive_task_seed`, so results never depend on
submission order or process placement.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.pslite import run_pslite
from repro.baselines.sspable import SSPTableConfig, run_ssptable
from repro.bench.harness import ExperimentResult, Scale
from repro.bench.pool import RunTask, SweepExecutor, derive_task_seed, run_sweep
from repro.bench.workloads import blobs_task, null_step, null_task_spec, workload_for
from repro.core.api import ParameterServerSystem
from repro.core.driver import VirtualClockDriver
from repro.core.keyspace import DefaultSlicer, ElasticSlicer
from repro.core.models import SyncModel, asp, bsp, make_model, pssp, ssp
from repro.core.pssp import equivalent_ssp_threshold
from repro.core.server import ExecutionMode, PullReply, ShardServer
from repro.sim.cluster import cpu_cluster, gpu_cluster_p2
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import (
    TransientStragglerCompute,
    cpu_cluster_compute,
    gpu_cluster_compute,
)
from repro.utils.records import SeriesRecord


# ---------------------------------------------------------------------------
# Figure 1 — PMLS/Bösen AlexNet accuracy vs iterations at different N
# ---------------------------------------------------------------------------


def _fig1_arm(scale: Scale, n: int, seed: int) -> ExperimentResult:
    """One Figure-1 cluster size: SSPtable accuracy at ``n`` workers."""
    frag = ExperimentResult(f"fig1/N{n}", headers=[])
    task = blobs_task(n, n_train=scale.dataset_train, n_test=scale.dataset_test, seed=seed)
    cfg = SimConfig(
        cluster=cpu_cluster(n, n_servers=1),
        max_iter=scale.iters,
        sync=ssp(3),
        task=task,
        seed=seed + 1,
        compute_model=cpu_cluster_compute(n),
        eval_every=scale.eval_every,
    )
    run = run_ssptable(SSPTableConfig(sim=cfg, staleness=3))
    final = run.eval_by_iteration.final()
    best = run.eval_by_iteration.best()
    frag.add_row(n, round(final, 4), round(best, 4))
    frag.record(f"pmls_N{n}", final_acc=final, best_acc=best)
    series = run.eval_by_iteration
    series.name = f"pmls_N{n}"
    frag.series.append(series)
    return frag


def fig1_pmls_scaling(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """Bösen (SSPtable) test accuracy at increasing worker counts — the
    motivating convergence-loss observation (SSP, same staleness)."""
    result = ExperimentResult(
        "Figure 1: PMLS-Caffe (SSPtable) accuracy vs cluster size",
        headers=["workers", "final_acc", "best_acc"],
    )
    tasks = [
        RunTask(
            fn=_fig1_arm,
            kwargs=dict(scale=scale, n=n, seed=derive_task_seed("fig1", f"N{n}", seed)),
            key=f"fig1/N{n}",
        )
        for n in scale.worker_counts
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "paper shape: accuracy degrades sharply once N >= 8 at the same iteration budget"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 3 — soft barrier vs lazy execution trade-off (scripted trace)
# ---------------------------------------------------------------------------


def fig3_tradeoff_trace() -> ExperimentResult:
    """Reproduces Figure 3's scripted scenario: s=3, three workers, W2 the
    straggler; measures when W0's delayed pull is answered and how many
    slow-worker iterations its parameters are missing."""
    result = ExperimentResult(
        "Figure 3: soft barrier vs lazy execution (s=3, 3 workers)",
        headers=["execution", "released_after_W2_pushes", "missing_iterations"],
    )
    for execution in (ExecutionMode.SOFT_BARRIER, ExecutionMode.LAZY):
        server = ShardServer(0, n_workers=3, model=ssp(3), execution=execution)
        replies: List[PullReply] = []
        # W0 and W1 race ahead: they push/pull iterations 0..2 freely, then
        # push iteration 3 and pull for iteration 4.
        for w in (0, 1):
            for i in range(3):
                server.handle_push(w, i)
                server.handle_pull(w, i, replies.append)
            server.handle_push(w, 3)
        before = len(replies)
        server.handle_pull(0, 3, replies.append)  # W0's delayed pull
        assert len(replies) == before, "W0's pull must be delayed"
        # W2 now pushes its backlog one iteration at a time.
        released_after = None
        for i in range(4):
            server.handle_push(2, i)
            if len(replies) > before and released_after is None:
                released_after = i + 1
        w0_reply = replies[-1]
        result.add_row(execution.value, released_after, w0_reply.missing)
        result.record(
            f"{execution.value}",
            released_after=float(released_after),
            missing=float(w0_reply.missing),
        )
    result.notes.append(
        "paper shape: soft releases after 1 slow push with stale params; "
        "lazy waits for full catch-up and returns fully-updated params"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 5 — non-overlap vs overlap synchronization timeline
# ---------------------------------------------------------------------------


def fig5_timeline(scale: Scale, seed: int = 0) -> ExperimentResult:
    """One slow worker among fast ones: overlap lets each shard answer as
    soon as the slow worker's push reaches *it*; non-overlap (PS-Lite)
    serializes push phase → scheduler grant → pull phase."""
    n_workers, n_servers = 4, 4
    wl = workload_for("resnet56")
    compute = TransientStragglerCompute(
        n_workers, slow_factor=3.0, period=8, duration=4, jitter_sigma=0.02
    )
    result = ExperimentResult(
        "Figure 5: non-overlap (PS-Lite) vs overlap (FluentPS) synchronization",
        headers=["system", "duration_s", "mean_comm_s", "mean_compute_s"],
    )
    common = dict(
        cluster=gpu_cluster_p2(n_workers, n_servers),
        max_iter=scale.sim_iters,
        sync=bsp(),
        workload=wl,
        batch_per_worker=256,
        compute_model=compute,
        seed=seed,
        keep_spans=True,
    )
    r_non = run_pslite(SimConfig(**common))
    r_ovl = run_fluentps(SimConfig(**common, slicer=ElasticSlicer()))
    for name, r in (("pslite-nonoverlap", r_non), ("fluentps-overlap", r_ovl)):
        result.add_row(name, round(r.duration, 4), round(r.mean_comm_time, 4),
                       round(r.mean_compute_time, 4))
        result.record(name, duration=r.duration, comm=r.mean_comm_time,
                      compute=r.mean_compute_time)
    result.notes.append(
        f"overlap speedup: {r_non.duration / r_ovl.duration:.2f}x "
        "(paper: pull transfers overlap the remaining push transfers)"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 6 — computation/communication breakdown, BSP, ResNet-56
# ---------------------------------------------------------------------------


def _fig6_arm(scale: Scale, n: int, seed: int) -> ExperimentResult:
    """One Figure-6 cluster size: PS-Lite vs FluentPS vs FluentPS+EPS."""
    frag = ExperimentResult(f"fig6/N{n}", headers=[])
    wl = workload_for("resnet56")
    cluster = gpu_cluster_p2(n, n_servers=8)
    base = dict(
        cluster=cluster,
        max_iter=scale.sim_iters,
        sync=bsp(),
        workload=wl,
        batch_per_worker=max(1, 4096 // n),
        compute_model=gpu_cluster_compute(),
        seed=seed,
    )
    runs = {
        "pslite": run_pslite(SimConfig(**base)),
        "fluentps": run_fluentps(SimConfig(**base, slicer=DefaultSlicer())),
        "fluentps+eps": run_fluentps(SimConfig(**base, slicer=ElasticSlicer())),
    }
    ps_dur = runs["pslite"].duration
    for name, r in runs.items():
        frag.add_row(
            n, name, round(r.mean_compute_time, 3), round(r.mean_comm_time, 3),
            round(r.duration, 3), round(ps_dur / r.duration, 2),
        )
        frag.record(
            f"{name}_N{n}", compute=r.mean_compute_time, comm=r.mean_comm_time,
            duration=r.duration, speedup=ps_dur / r.duration,
        )
    return frag


def fig6_overlap(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """PS-Lite vs FluentPS vs FluentPS+EPS: comp/comm split as N grows
    (BSP, ResNet-56 wire footprint, batch 4096 total)."""
    result = ExperimentResult(
        "Figure 6: computation/communication time, ResNet-56 CIFAR-10 (BSP)",
        headers=["workers", "system", "compute_s", "comm_s", "total_s", "speedup_vs_pslite"],
    )
    worker_counts = [n for n in (8, 16, 32) if n <= max(scale.worker_counts) * 2]
    tasks = [
        RunTask(
            fn=_fig6_arm,
            kwargs=dict(scale=scale, n=n, seed=derive_task_seed("fig6", f"N{n}", seed)),
            key=f"fig6/N{n}",
        )
        for n in worker_counts
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "paper shape: PS-Lite comm grows to dominate; FluentPS up to 4.26x, "
        "EPS a further up-to-1.42x; comm reduced by up to 86%/93.7%"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 7 — scalability: accuracy at fixed iterations vs worker count
# ---------------------------------------------------------------------------


def _fig7_arm(scale: Scale, n: int, seed: int) -> ExperimentResult:
    """One Figure-7 cluster size: FluentPS vs PMLS final accuracy."""
    frag = ExperimentResult(f"fig7/N{n}", headers=[])

    def make_cfg() -> SimConfig:
        task = blobs_task(
            n, n_train=scale.dataset_train, n_test=scale.dataset_test, seed=seed
        )
        return SimConfig(
            cluster=cpu_cluster(n, n_servers=1),
            max_iter=scale.iters,
            sync=ssp(3),
            task=task,
            seed=seed + 1,
            compute_model=cpu_cluster_compute(n),
            eval_every=scale.eval_every,
        )

    r_fl = run_fluentps(make_cfg())
    r_tb = run_ssptable(SSPTableConfig(sim=make_cfg(), staleness=3))
    acc_fl = r_fl.eval_by_iteration.final()
    acc_tb = r_tb.eval_by_iteration.final()
    frag.add_row(n, round(acc_fl, 4), round(acc_tb, 4))
    frag.record(f"N{n}", fluentps=acc_fl, pmls=acc_tb)
    return frag


def fig7_scalability(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """FluentPS vs PMLS (SSPtable) final accuracy as the cluster grows
    (SSP s=3, AlexNet-class task on the CPU cluster)."""
    result = ExperimentResult(
        "Figure 7: test accuracy vs cluster size, SSP s=3",
        headers=["workers", "fluentps_acc", "pmls_acc"],
    )
    tasks = [
        RunTask(
            fn=_fig7_arm,
            kwargs=dict(scale=scale, n=n, seed=derive_task_seed("fig7", f"N{n}", seed)),
            key=f"fig7/N{n}",
        )
        for n in scale.worker_counts
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "paper shape: FluentPS accuracy flat in N; PMLS collapses for N >= 8"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 8 — lazy execution vs soft barrier (accuracy/time, SSP s=2)
# ---------------------------------------------------------------------------


def _fig8_arm(scale: Scale, execution: str, seed: int) -> ExperimentResult:
    """One Figure-8 execution mode (``"soft"`` or ``"lazy"``)."""
    frag = ExperimentResult(f"fig8/{execution}", headers=[])
    mode = ExecutionMode(execution)
    n = min(32, scale.huge_workers)
    wl = workload_for("resnet56")
    task = blobs_task(n, n_train=scale.dataset_train, n_test=scale.dataset_test, seed=seed)
    cfg = SimConfig(
        cluster=gpu_cluster_p2(n, 8),
        max_iter=scale.iters,
        sync=ssp(2),
        execution=mode,
        task=task,
        workload=wl,
        batch_per_worker=128,
        compute_model=gpu_cluster_compute(),
        seed=seed + 1,
        eval_every=scale.eval_every,
    )
    r = run_fluentps(cfg)
    acc = r.eval_by_iteration.final()
    frag.add_row(mode.value, round(r.duration, 2),
                 round(r.dprs_per_100_iterations(), 1), round(acc, 4))
    frag.record(mode.value, duration=r.duration,
                dprs_per_100=r.dprs_per_100_iterations(), final_acc=acc)
    series = r.eval_by_time
    series.name = f"acc_vs_time_{mode.value}"
    frag.series.append(series)
    return frag


def fig8_lazy_vs_soft(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """ResNet-56-footprint training with 32 workers, SSP s=2: lazy
    execution vs soft barrier on wall time, DPRs, and accuracy."""
    result = ExperimentResult(
        "Figure 8: lazy execution vs soft barrier (SSP s=2, 32 workers)",
        headers=["execution", "duration_s", "dprs_per_100it", "final_acc"],
    )
    tasks = [
        RunTask(
            fn=_fig8_arm,
            kwargs=dict(
                scale=scale,
                execution=execution.value,
                # Paired: soft vs lazy are compared head-to-head, so both
                # modes run under identical straggler draws.
                seed=derive_task_seed("fig8", "ssp2", seed),
            ),
            key=f"fig8/{execution.value}",
        )
        for execution in (ExecutionMode.SOFT_BARRIER, ExecutionMode.LAZY)
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    soft = result.find("soft").metrics["duration"]
    lazy = result.find("lazy").metrics["duration"]
    result.notes.append(
        f"lazy speedup: {soft / lazy:.2f}x (paper: 1.21x); lazy also converges "
        "more robustly because answered DPRs miss zero slow-worker gradients"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 9 — DPR counts: matched-regret PSSP vs SSP pairs (A..H)
# ---------------------------------------------------------------------------

FIG9_GROUPS: Tuple[Tuple[str, float, str], ...] = (
    ("A/B", 1 / 2, "B"),
    ("C/D", 1 / 3, "D"),
    ("E/F", 1 / 5, "F"),
    ("G/H", 1 / 10, "H"),
)


def _fig9_arm(scale: Scale, label: str, c: float, execution: str, n: int,
              seed: int) -> ExperimentResult:
    """One Figure-9 (group, execution) cell: PSSP(3, c) vs SSP(s')."""
    frag = ExperimentResult(f"fig9/{label}/{execution}", headers=[])
    mode = ExecutionMode(execution)
    compute = cpu_cluster_compute(n)
    spec = null_task_spec()
    s_prime = int(round(equivalent_ssp_threshold(3, c)))

    def run_model(sync: SyncModel):
        system = ParameterServerSystem(
            spec, np.zeros(spec.total_elements), n, 1, sync, mode, seed=seed
        )
        driver = VirtualClockDriver(
            system, null_step, max_iter=scale.dpr_iters,
            compute_model=compute, seed=seed + 1,
        )
        return driver.run()

    r_pssp = run_model(pssp(3, c))
    r_ssp = run_model(ssp(s_prime))
    for name, r in ((f"pssp(3,{c:.2f})", r_pssp), (f"ssp({s_prime})", r_ssp)):
        frag.add_row(label, mode.value, name,
                     round(r.dprs_per_100_iterations(), 1), round(r.duration, 1))
        # Figure 9's x-axis: DPR count per 100-iteration window.
        windows = r.metrics.dpr_series(scale.dpr_iters, bucket=100)
        series = SeriesRecord(
            f"{name}_{mode.value}_{label.replace('/', '-')}",
            x=[100.0 * (i + 1) for i in range(len(windows))],
            y=[float(v) for v in windows],
            x_label="iteration",
            y_label="dprs_per_100",
        )
        frag.series.append(series)
    frag.record(
        f"{label}_{mode.value}",
        pssp_dprs=r_pssp.dprs_per_100_iterations(),
        ssp_dprs=r_ssp.dprs_per_100_iterations(),
        pssp_duration=r_pssp.duration,
        ssp_duration=r_ssp.duration,
    )
    return frag


def fig9_dpr_pairs(
    scale: Scale, seed: int = 0, n_workers: Optional[int] = None,
    pool: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    """PSSP(s=3, c) vs the regret-matched SSP(s' = s + 1/c − 1), under the
    soft barrier and lazy execution, on a heterogeneous CPU cluster."""
    n = n_workers or scale.big_workers
    result = ExperimentResult(
        "Figure 9: DPRs per 100 iterations, PSSP(s=3, c) vs SSP(s')",
        headers=["group", "execution", "model", "dprs_per_100it", "duration_s"],
    )
    tasks = [
        RunTask(
            fn=_fig9_arm,
            kwargs=dict(
                scale=scale, label=label, c=c, execution=execution.value, n=n,
                seed=derive_task_seed("fig9", f"{label}/{execution.value}", seed),
            ),
            key=f"fig9/{label}/{execution.value}",
        )
        for label, c, _ssp_name in FIG9_GROUPS
        for execution in (ExecutionMode.SOFT_BARRIER, ExecutionMode.LAZY)
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "paper shape (soft barrier): each PSSP member produces far fewer DPRs "
        "than its regret-matched SSP partner — up to 97.1% fewer for G vs H"
    )
    return result


# ---------------------------------------------------------------------------
# Figures 10/11 — accuracy vs time across models at 64 / 128 workers
# ---------------------------------------------------------------------------

#: (model kind, params) specs — JSON-able, rebuilt in arms via make_model.
FIG10_MODEL_SPECS: Tuple[Tuple[str, dict], ...] = (
    ("bsp", {}),
    ("ssp", {"s": 3}),
    ("asp", {}),
    ("pssp", {"s": 3, "c": 0.1}),
    ("pssp", {"s": 3, "c": 0.3}),
    ("pssp", {"s": 3, "c": 0.5}),
)


def _fig10_arm(scale: Scale, n: int, kind: str, params: dict,
               seed: int) -> ExperimentResult:
    """One Figure-10/11 synchronization model at ``n`` workers."""
    sync = make_model(kind, **params)
    frag = ExperimentResult(f"fig10/N{n}/{sync.name}", headers=[])
    wl = workload_for("alexnet")
    # Calibrated effective sync payload: the paper's Table IV times
    # (≈0.46 s/iteration for ASP at 64 workers over one 1 Gbps server)
    # imply ≈128 KB of sync traffic per worker-iteration, far below the
    # dense 7 MB model — consistent with PS-Lite's key-sliced worker
    # caching.  Without this the single server's NIC saturates and washes
    # out the sync-model time differences the figure is about.
    wire_scale = 128e3 / wl.wire_bytes
    task = blobs_task(n, n_train=scale.dataset_train, n_test=scale.dataset_test, seed=seed)
    cfg = SimConfig(
        cluster=cpu_cluster(n, n_servers=1),
        max_iter=scale.iters,
        sync=sync,
        execution=ExecutionMode.SOFT_BARRIER,
        task=task,
        workload=wl,
        wire_scale=wire_scale * wl.wire_bytes / task.spec.total_bytes,
        batch_per_worker=max(1, 6400 // n),
        compute_model=cpu_cluster_compute(n),
        seed=seed + 1,
        eval_every=scale.eval_every,
    )
    r = run_fluentps(cfg)
    acc = r.eval_by_iteration.final()
    frag.add_row(sync.name, round(r.duration, 1), round(acc, 4),
                 round(r.dprs_per_100_iterations(), 1))
    frag.record(sync.name, duration=r.duration, final_acc=acc,
                dprs_per_100=r.dprs_per_100_iterations())
    series = r.eval_by_time
    series.name = sync.name
    frag.series.append(series)
    return frag


def fig10_models(
    scale: Scale, n_workers: Optional[int] = None, seed: int = 0,
    title: str = "Figure 10", pool: Optional[SweepExecutor] = None,
) -> ExperimentResult:
    """Accuracy vs time for BSP/SSP/ASP/PSSP on the CPU cluster.

    Runs under the soft barrier — the execution mode whose Table IV times
    match the paper's Figure 10/11 runs (SSP ≈ 1.38x slower than PSSP).
    """
    n = n_workers or scale.big_workers
    experiment_id = title.lower().replace(" ", "")
    result = ExperimentResult(
        f"{title}: accuracy vs time by synchronization model ({n} workers)",
        headers=["model", "duration_s", "final_acc", "dprs_per_100it"],
    )
    tasks = []
    for kind, params in FIG10_MODEL_SPECS:
        variant = make_model(kind, **params).name
        tasks.append(
            RunTask(
                fn=_fig10_arm,
                kwargs=dict(
                    scale=scale, n=n, kind=kind, params=params,
                    # Paired seeds: the figure compares durations *across*
                    # models, so every model sees the same straggler draws
                    # (common random numbers — the serial loop's behavior).
                    seed=derive_task_seed(experiment_id, f"N{n}", seed),
                ),
                key=f"{experiment_id}/N{n}/{variant}",
            )
        )
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "paper shape: ASP fastest but lowest accuracy; PSSP ≈ SSP accuracy "
        "while finishing ~1.4x sooner; BSP slowest"
    )
    return result


def fig11_models(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """Figure 10 at double the worker count (the paper's 128-container
    Kubernetes deployment)."""
    return fig10_models(scale, n_workers=scale.huge_workers, seed=seed,
                        title="Figure 11", pool=pool)
