"""Theory experiment: regret bounds of Theorems 1-2 vs Monte-Carlo SGD."""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, Scale
from repro.core.pssp import (
    effective_staleness_pmf,
    equivalent_ssp_threshold,
    sample_effective_staleness,
)
from repro.theory.regret import (
    constant_pssp_regret_bound,
    constant_pssp_regret_series,
    dynamic_pssp_regret_bound,
    sgd_regret_experiment,
    ssp_regret_bound,
)


def theory_bounds(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Checks the full chain of Theorem 1: Monte-Carlo regret ≤ exact
    series (Eq 2) ≤ closed-form bound (Eq 3) = SSP bound at s'."""
    N, T = 16, max(2000, scale.iters * 4)
    result = ExperimentResult(
        "Theorems 1-2: PSSP regret bounds",
        headers=["s", "c", "s_prime", "mc_regret", "series_eq2", "bound_eq3", "ssp_bound(s')"],
    )
    rng = np.random.default_rng(seed)
    for s, c in [(3, 0.5), (3, 1 / 3), (3, 0.2), (3, 0.1), (1, 0.5), (5, 0.25)]:
        s_prime = equivalent_ssp_threshold(s, c)
        series = constant_pssp_regret_series(s, c, N, T)
        bound = constant_pssp_regret_bound(s, c, N, T)
        ssp_b = ssp_regret_bound(s_prime, N, T)

        def sampler(r: np.random.Generator, s=s, c=c) -> int:
            # staleness of a PSSP run: below s uniformly, geometric above.
            return int(sample_effective_staleness(s, c, r, size=1)[0])

        mc = sgd_regret_experiment(sampler, T=min(T, 4000), seed=seed + s)
        result.add_row(s, round(c, 3), round(s_prime, 2), round(mc, 4),
                       round(series, 4), round(bound, 4), round(ssp_b, 4))
        result.record(
            f"s{s}_c{c:.3f}", mc=mc, series=series, bound=bound, ssp_bound=ssp_b,
            s_prime=s_prime,
        )
    # dynamic PSSP: bound with alpha vs constant alpha/2
    dyn = dynamic_pssp_regret_bound(3, 0.8, N, T)
    const_half = constant_pssp_regret_bound(3, 0.4, N, T)
    result.notes.append(
        f"dynamic PSSP (alpha=0.8) bound {dyn:.4f} == constant PSSP at "
        f"c=alpha/2 {const_half:.4f} (Theorem 2)"
    )
    # pmf sanity: geometric over-threshold distribution sums to 1
    total = sum(effective_staleness_pmf(3, 0.3, k) for k in range(3, 300))
    result.notes.append(f"effective-staleness pmf mass (s=3, c=0.3): {total:.6f}")
    return result
