"""Parallel sweep executor with a deterministic run cache.

The experiment harness is a pile of embarrassingly parallel sweeps:
every figure/table loops over worker counts, synchronization models, or
straggler regimes, and each arm is an independent seeded simulation.
This module fans those arms out across processes and memoizes them on
disk, without changing a single output byte:

- :class:`RunTask` — one sweep arm: a module-level experiment function
  plus JSON-able kwargs (scale fields, worker count, sync-model spec,
  derived seed).  Tasks pickle cleanly to worker processes and
  fingerprint deterministically for the cache.
- :func:`derive_task_seed` — stable per-arm seed from
  ``(experiment_id, variant, base_seed)``, so the seed an arm sees never
  depends on submission order or process placement; serial and parallel
  execution produce byte-identical results.
- :class:`RunCache` — content-addressed JSON store under
  ``results/.cache/`` keyed by (task fingerprint, code fingerprint): a
  re-run recomputes only arms whose inputs *or* whose code changed.
- :class:`SweepExecutor` — maps tasks across a reusable process pool
  (``jobs=1`` runs inline and preserves the serial code path exactly),
  transports worker tracebacks back to the parent as
  :class:`WorkerFailure`, enforces a per-task timeout, and can replay
  each arm's protocol events through the :mod:`repro.analysis`
  sanitizer *inside* the worker process.

Wall-clock timing stays inside ``repro.bench`` (the ANA001 lint
boundary): nothing here leaks real time into ``repro.sim``/``repro.core``.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentResult
from repro.obs import current_observability

#: Cache schema version — bump to invalidate every cached entry.
CACHE_SCHEMA = 1

#: Default location of the run cache (under the results directory).
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")


# ---------------------------------------------------------------------------
# deterministic per-arm seeds
# ---------------------------------------------------------------------------


def derive_task_seed(experiment_id: str, variant: str, seed: int) -> int:
    """A stable 31-bit seed for one sweep arm.

    Hashes ``(experiment_id, variant, seed)`` so the seed an arm runs
    under is a pure function of *what* it is, never of submission order,
    worker placement, or which other arms exist.  This is what makes
    ``--jobs 1`` and ``--jobs N`` byte-identical.

    Convention: ``variant`` is the *pairing group*, not necessarily the
    arm's unique id.  Sweeps whose arms are compared against each other
    (e.g. every sync model in Figure 10, every P value of a Table IV
    row) pass the shared group so compared arms see identical straggler
    draws — common random numbers, matching the old serial loops.
    """
    payload = f"{experiment_id}\x1f{variant}\x1f{int(seed)}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# tasks and fingerprints
# ---------------------------------------------------------------------------


def _canonical(value: object) -> object:
    """Reduce a kwarg value to a JSON-able canonical form for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "value") and type(value).__module__ != "builtins":
        # Enum members (e.g. ExecutionMode) canonicalize to their value.
        return {"__enum__": type(value).__name__, "value": _canonical(value.value)}
    return {"__repr__": repr(value)}


@dataclass(frozen=True)
class RunTask:
    """One independent sweep arm, ready to ship to a worker process.

    ``fn`` must be a module-level function (pickled by reference) taking
    only JSON-able kwargs and returning an :class:`ExperimentResult`
    fragment; ``key`` is a human-readable id (``"fig7/N8"``) used in
    error messages and cache bookkeeping.
    """

    fn: Callable[..., ExperimentResult]
    kwargs: Dict[str, object] = field(default_factory=dict)
    key: str = ""
    timeout: Optional[float] = None

    def fn_ref(self) -> str:
        return f"{self.fn.__module__}:{self.fn.__qualname__}"

    def fingerprint(self) -> str:
        """Content hash of (function reference, canonical kwargs)."""
        doc = {
            "schema": CACHE_SCHEMA,
            "fn": self.fn_ref(),
            "kwargs": _canonical(self.kwargs),
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def code_fingerprint(package_root: Optional[Path] = None) -> str:
    """Content hash over every ``repro`` source file.

    Any edit to the package invalidates the whole cache — coarse, but it
    guarantees a cached arm is interchangeable with a fresh run of the
    current code.  Computed once per process.
    """
    global _CODE_FINGERPRINT
    if package_root is None:
        if _CODE_FINGERPRINT is not None:
            return _CODE_FINGERPRINT
        import repro

        root = Path(repro.__file__).resolve().parent
    else:
        root = Path(package_root)
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x01")
    digest = h.hexdigest()
    if package_root is None:
        _CODE_FINGERPRINT = digest
    return digest


_CODE_FINGERPRINT: Optional[str] = None


# ---------------------------------------------------------------------------
# the run cache
# ---------------------------------------------------------------------------


class RunCache:
    """Content-addressed store of finished sweep arms.

    Entries live at ``<dir>/<digest[:2]>/<digest>.json`` where the
    digest covers the task fingerprint *and* the code fingerprint; the
    payload is the arm's :meth:`ExperimentResult.to_dict` JSON (the same
    round-trippable form the process pool transports).
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = Path(directory or DEFAULT_CACHE_DIR)

    def key_for(self, task: RunTask) -> str:
        blob = f"{task.fingerprint()}\x1f{code_fingerprint()}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``digest``, or None (corrupt == miss)."""
        path = self._path(digest)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            return None
        payload = doc.get("result")
        return payload if isinstance(payload, dict) else None

    def put(self, digest: str, task: RunTask, result: Dict[str, object]) -> Path:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA,
            "task": {"fn": task.fn_ref(), "key": task.key},
            "result": result,
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=2))
        os.replace(tmp, path)
        return path


# ---------------------------------------------------------------------------
# worker-side execution
# ---------------------------------------------------------------------------


class WorkerFailure(RuntimeError):
    """A sweep arm failed (exception, violation, or timeout) in a worker.

    Carries the remote traceback text so the parent can print exactly
    what went wrong without unpickling exotic exception types.  One
    failed task fails its experiment — never the whole suite.
    """

    def __init__(self, key: str, message: str, remote_traceback: str = ""):
        super().__init__(f"sweep arm {key or '<unnamed>'} failed: {message}")
        self.key = key
        self.remote_traceback = remote_traceback


def _sanitized_call(
    fn: Callable[..., ExperimentResult],
    kwargs: Dict[str, object],
    obs=None,
):
    """Run ``fn`` under a fresh Observability and sanitize its events.

    Mirrors the autouse pytest fixture, which cannot reach into worker
    processes: every protocol event the arm's servers emit is replayed
    through the vector-clock checker before the result is accepted.
    ``obs`` lets the caller share the bundle (e.g. to dump per-arm
    artifacts afterwards).  Returns ``(result, n_events_checked)``.

    The default bundle captures instants without the causal span DAG:
    protocol replay only needs the instant stream, skipping the DAG
    keeps mesoscale arms (100k-worker grid cells) out of causal-span
    RSS, and — unlike a causal-tracing bundle — leaves the arm eligible
    for the runner's closed-form round fast-forward.  Callers that want
    the DAG (e.g. ``obs_dir`` artifact dumps) pass their own ``obs``.
    """
    from repro.analysis.events import events_from_instants
    from repro.analysis.sanitizer import SanitizerReport, sanitize_events, sanitize_run
    from repro.obs import MetricsRegistry, Observability, observed

    if obs is None:
        obs = Observability(MetricsRegistry("pool-sanitizer"), causal=False)
    with observed(obs):
        result = fn(**kwargs)
    report = SanitizerReport(n_streams=0)
    n_events = 0
    for cap in obs.runs:
        n_events += len(cap.instants)
        report.merge(sanitize_run(cap))
    if len(obs.default_instants):
        n_events += len(obs.default_instants)
        report.merge(
            sanitize_events(events_from_instants(obs.default_instants), complete=False)
        )
    if not report.ok:
        raise RuntimeError(
            "protocol sanitizer found violations in this arm's event stream:\n"
            + report.describe()
        )
    return result, n_events


def _arm_slug(key: str) -> str:
    """A filesystem-safe slug for an arm key (``"fig7/N8"`` -> ``fig7_N8``)."""
    slug = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
    return slug or "arm"


def _dump_arm_observability(obs, obs_dir: str, key: str) -> None:
    """Write one arm's trace (with causal spans) and metrics JSON.

    Artifacts land at ``<obs_dir>/<slug>.trace.json`` and
    ``<obs_dir>/<slug>.metrics.json`` — exactly the files
    ``python -m repro.obs`` consumes, so a pooled sweep's per-arm
    telemetry survives the process boundary that the parent's in-memory
    bundle cannot cross.
    """
    import json as _json

    from repro.obs.export import dump_trace

    directory = Path(obs_dir)
    directory.mkdir(parents=True, exist_ok=True)
    slug = _arm_slug(key)
    run = obs.last_run
    if run is not None:
        dump_trace(
            str(directory / f"{slug}.trace.json"),
            run.trace,
            instants=run.instants,
            process_name=run.label,
            causal=getattr(run, "causal", None),
        )
    metrics_path = directory / f"{slug}.metrics.json"
    metrics_path.write_text(_json.dumps(obs.registry.to_dict(), indent=2))


def _execute_remote(
    fn: Callable[..., ExperimentResult],
    kwargs: Dict[str, object],
    key: str,
    sanitize: bool,
    obs_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Worker-process entry point: run one arm, return a plain payload.

    Resets the ambient observability first (a forked child would
    otherwise write into a copy of the parent's bundle), and never lets
    an exception escape — failures travel home as formatted tracebacks.
    With ``obs_dir`` the arm runs under its own fresh Observability and
    its trace/metrics are dumped there before returning (see
    :func:`_dump_arm_observability`).
    """
    from repro.obs import (
        MetricsRegistry,
        Observability,
        observed,
        set_current_observability,
    )

    set_current_observability(None)
    try:
        obs = None
        if obs_dir is not None:
            obs = Observability(MetricsRegistry(f"pool-arm-{_arm_slug(key)}"))
        if sanitize:
            result, n_events = _sanitized_call(fn, kwargs, obs=obs)
        elif obs is not None:
            with observed(obs):
                result = fn(**kwargs)
            n_events = 0
        else:
            result = fn(**kwargs)
            n_events = 0
        if obs is not None:
            _dump_arm_observability(obs, obs_dir, key)
        return {"ok": True, "result": result.to_dict(), "sanitized_events": n_events}
    except BaseException as exc:  # noqa: BLE001 - transported to the parent
        return {
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        }


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------


@dataclass
class PoolStats:
    """Cumulative executor counters (rendered by the bench CLI)."""

    tasks: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    failed: int = 0

    def snapshot(self) -> "PoolStats":
        return PoolStats(**dataclasses.asdict(self))

    def since(self, other: "PoolStats") -> "PoolStats":
        return PoolStats(
            tasks=self.tasks - other.tasks,
            cache_hits=self.cache_hits - other.cache_hits,
            cache_misses=self.cache_misses - other.cache_misses,
            executed=self.executed - other.executed,
            failed=self.failed - other.failed,
        )


class SweepExecutor:
    """Fan sweep arms across processes, memoized by the run cache.

    ``jobs=1`` (the default) executes inline in submission order — the
    exact serial behavior the harness always had.  ``jobs>1`` submits to
    a lazily created, reusable process pool; results are still returned
    in submission order, so merged experiment output is order-stable.

    ``sanitize=True`` replays every arm's protocol events through the
    :mod:`repro.analysis` checker inside the worker (see
    :func:`_sanitized_call`); a violation fails that arm like any other
    worker exception.  ``task_timeout`` bounds how long the parent waits
    for any single arm (the stuck worker process is abandoned, not
    killed — the pool is replaced on the next map call).

    ``obs_dir`` makes pooled workers dump per-arm observability
    artifacts (trace + metrics JSON) into that directory.  Obs options
    never enter task fingerprints, so to keep the run cache honest the
    executor *skips cache reads* for pooled arms while capturing (a
    cached hit would silently produce no artifact) but still writes
    results back — the next non-capturing sweep hits as usual.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[RunCache] = None,
        sanitize: bool = False,
        task_timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        obs_dir: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.sanitize = sanitize
        self.task_timeout = task_timeout
        self.start_method = start_method
        self.obs_dir = obs_dir
        self.stats = PoolStats()
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            method = self.start_method
            if method is None:
                available = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in available else "spawn"
            ctx = multiprocessing.get_context(method)
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=ctx
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------

    def map(self, tasks: Sequence[RunTask]) -> List[ExperimentResult]:
        """Run every task; return results in submission order.

        Cache hits short-circuit execution; misses run (inline or
        pooled), are written back to the cache, and any failure is
        re-raised as :class:`WorkerFailure` *after* every task finished,
        so sibling arms still land in the cache.
        """
        results: List[Optional[ExperimentResult]] = [None] * len(tasks)
        pending: List[int] = []
        digests: List[Optional[str]] = [None] * len(tasks)
        self.stats.tasks += len(tasks)
        # Per-arm artifact capture only happens inside pooled workers;
        # cached arms never execute, so reads are bypassed while it's on.
        capture_arms = self.obs_dir is not None and self.jobs > 1
        for i, task in enumerate(tasks):
            if self.cache is not None:
                digest = digests[i] = self.cache.key_for(task)
                payload = None if capture_arms else self.cache.get(digest)
                if payload is not None:
                    results[i] = ExperimentResult.from_dict(payload)
                    self.stats.cache_hits += 1
                    continue
                self.stats.cache_misses += 1
            pending.append(i)

        first_failure: Optional[WorkerFailure] = None
        if pending:
            if self.jobs == 1:
                executed = [(i, self._run_inline(tasks[i])) for i in pending]
            else:
                executed = self._run_pooled(tasks, pending)
            for i, outcome in executed:
                self.stats.executed += 1
                if isinstance(outcome, WorkerFailure):
                    self.stats.failed += 1
                    if first_failure is None:
                        first_failure = outcome
                    continue
                results[i] = outcome
                if self.cache is not None and digests[i] is not None:
                    self.cache.put(digests[i], tasks[i], outcome.to_dict())

        self._report_to_obs()
        if first_failure is not None:
            raise first_failure
        return [r for r in results if r is not None]

    def _run_inline(self, task: RunTask):
        """Serial path: call the arm directly (ambient obs untouched)."""
        try:
            if self.sanitize:
                result, _ = _sanitized_call(task.fn, task.kwargs)
                return result
            return task.fn(**task.kwargs)
        except Exception as exc:  # noqa: BLE001 - uniform failure transport
            return WorkerFailure(task.key, str(exc), traceback.format_exc())

    def _run_pooled(self, tasks: Sequence[RunTask], pending: List[int]):
        """Submit pending tasks to the process pool; gather in order."""
        pool = self._ensure_pool()
        futures = {
            i: pool.submit(
                _execute_remote, tasks[i].fn, tasks[i].kwargs, tasks[i].key,
                self.sanitize, self.obs_dir,
            )
            for i in pending
        }
        executed = []
        timed_out = False
        for i, fut in futures.items():
            task = tasks[i]
            timeout = task.timeout if task.timeout is not None else self.task_timeout
            try:
                payload = fut.result(timeout=timeout)
            except concurrent.futures.TimeoutError:
                timed_out = True
                executed.append(
                    (i, WorkerFailure(task.key, f"timed out after {timeout}s"))
                )
                continue
            except concurrent.futures.process.BrokenProcessPool as exc:
                self.close()
                executed.append((i, WorkerFailure(task.key, f"worker died: {exc}")))
                continue
            if payload["ok"]:
                executed.append((i, ExperimentResult.from_dict(payload["result"])))
            else:
                err = payload["error"]
                executed.append(
                    (
                        i,
                        WorkerFailure(
                            task.key,
                            f"{err['type']}: {err['message']}",
                            err["traceback"],
                        ),
                    )
                )
        if timed_out:
            # The stuck worker still occupies a pool slot; start fresh.
            self.close()
        return executed

    def _report_to_obs(self) -> None:
        """Mirror cumulative counters into the ambient metrics registry."""
        reg = current_observability().registry
        counter = reg.counter(
            "bench_pool_tasks", "sweep-executor task outcomes by kind"
        )
        s = self.stats
        for outcome, value in (
            ("cache_hit", s.cache_hits),
            ("cache_miss", s.cache_misses),
            ("executed", s.executed),
            ("failed", s.failed),
        ):
            bound = counter.labels(outcome=outcome)
            current = counter.value(outcome=outcome)
            if value > current:
                bound.inc(value - current)


def run_sweep(
    tasks: Sequence[RunTask], pool: Optional[SweepExecutor] = None
) -> List[ExperimentResult]:
    """Execute ``tasks`` through ``pool`` (or inline when None)."""
    if pool is None:
        pool = SweepExecutor(jobs=1)
    return pool.map(tasks)
