"""Experiment functions for the paper's tables (I, III, IV).

Table III and Table IV are sweeps: each model (Table III) and each
(workload, execution, P) cell (Table IV) runs as a module-level *arm*
submitted through the :class:`~repro.bench.pool.SweepExecutor`, with a
per-arm seed from :func:`~repro.bench.pool.derive_task_seed`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bench.harness import ExperimentResult, Scale
from repro.bench.pool import RunTask, SweepExecutor, derive_task_seed, run_sweep
from repro.bench.workloads import blobs_task, null_step, null_task_spec, workload_for
from repro.core.api import ParameterServerSystem
from repro.core.driver import VirtualClockDriver
from repro.core.models import (
    SUPPORTED_MODELS,
    SyncModel,
    asp,
    bsp,
    drop_stragglers,
    dsps,
    dynamic_pssp,
    make_model,
    pssp,
    ssp,
)
from repro.core.pssp import significance_alpha
from repro.core.server import ExecutionMode
from repro.sim.cluster import cpu_cluster, gpu_cluster_p2
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import cpu_cluster_compute, gpu_cluster_compute


def table1_model_matrix() -> ExperimentResult:
    """Table I's FluentPS row: every synchronization model expressed as a
    (pull condition, push condition) pair, instantiated and described."""
    result = ExperimentResult(
        "Table I/III: synchronization models via pull/push conditions",
        headers=["model", "pull_condition", "push_condition"],
    )
    instances: List[SyncModel] = [
        bsp(),
        asp(),
        ssp(3),
        dsps(s0=3),
        drop_stragglers(8, n_t=6),
        pssp(3, 0.5),
        dynamic_pssp(3, 0.8),
        dynamic_pssp(3, significance_alpha()),
    ]
    for model in instances:
        pull = model.make_pull()
        push = model.make_push()
        result.add_row(model.name, pull.describe(), push.describe())
        result.record(model.name, staleness=float(model.staleness)
                      if model.staleness != float("inf") else -1.0)
    result.notes.append(f"factory registry: {', '.join(SUPPORTED_MODELS)}")
    return result


#: Table III sweep: display name → ``make_model`` spec (kind, kwargs).
TABLE3_MODEL_SPECS = (
    ("bsp", "bsp", {}),
    ("ssp(2)", "ssp", {"s": 2}),
    ("asp", "asp", {}),
    ("dsps", "dsps", {"s0": 2, "s_min": 1, "s_max": 8, "window": 32}),
    ("drop_stragglers(6/8)", "drop_stragglers", {"n_t": 6}),
    ("pssp(2,0.5)", "pssp", {"s": 2, "c": 0.5}),
    ("dynamic_pssp(2,0.8)", "dynamic_pssp", {"s": 2, "alpha": 0.8}),
)


def _table3_arm(scale: Scale, name: str, kind: str, params: dict,
                seed: int) -> ExperimentResult:
    """One Table III model through the shared straggler scenario."""
    frag = ExperimentResult(f"table3/{name}", headers=[])
    n = 8
    spec = null_task_spec()
    sync = make_model(kind, n_workers=n, **params)
    system = ParameterServerSystem(
        spec, np.zeros(spec.total_elements), n, 1, sync,
        ExecutionMode.LAZY, seed=seed,
    )
    driver = VirtualClockDriver(
        system, null_step, max_iter=scale.dpr_iters,
        compute_model=cpu_cluster_compute(n), seed=seed + 1,
    )
    r = driver.run()
    m = r.metrics
    frag.add_row(name, m.dprs, round(m.mean_staleness(), 3),
                 m.max_staleness(), round(r.duration, 1))
    frag.record(name, dprs=m.dprs, mean_staleness=m.mean_staleness(),
                max_staleness=m.max_staleness(), duration=r.duration)
    return frag


def table3_conditions(
    scale: Scale, seed: int = 0, pool: Optional[SweepExecutor] = None
) -> ExperimentResult:
    """Behavioural verification of Table III: run each model through the
    same straggler scenario and report the staleness discipline it
    enforces (max over-frontier gap of answered pulls, DPR counts)."""
    result = ExperimentResult(
        "Table III: model semantics under one straggler scenario",
        headers=["model", "dprs", "mean_staleness", "max_staleness", "duration_s"],
    )
    tasks = [
        RunTask(
            fn=_table3_arm,
            kwargs=dict(
                scale=scale, name=name, kind=kind, params=params,
                # Paired: the table compares staleness discipline across
                # models under *one* straggler scenario, so every model
                # shares the same derived seed (common random numbers).
                seed=derive_task_seed("table3", "scenario", seed),
            ),
            key=f"table3/{name}",
        )
        for name, kind, params in TABLE3_MODEL_SPECS
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "invariants: BSP max staleness 0; SSP(2) bounded; ASP unbounded but "
        "zero DPRs; PSSP staleness may exceed s (probabilistic passes)"
    )
    return result


TABLE4_PS = (0.0, 0.1, 0.3, 0.5, 1.0, "dynamic")


def _table4_sync(p, s: int) -> SyncModel:
    if p == "dynamic":
        return dynamic_pssp(s, significance_alpha())
    if p == 0.0:
        return asp()
    if p == 1.0:
        return ssp(s)
    return pssp(s, float(p))


def _table4_arm(scale: Scale, row: str, execution: str, p,
                seed: int) -> ExperimentResult:
    """One Table IV cell: (workload row, execution mode, pass probability)."""
    frag = ExperimentResult(f"table4/{row}/{execution}/P{p}", headers=[])
    dnn, ds_name = row.split("-")
    n_classes = 100 if ds_name.endswith("100") else 10
    if dnn == "alexnet":
        n = scale.big_workers
        cluster = cpu_cluster(n, n_servers=1)
        compute = cpu_cluster_compute(n)
        wl = workload_for("alexnet")
        batch = max(1, 6400 // n)
        s = 3
        # Calibrated sync payload (see fig10_models): the paper's
        # times imply ~128 KB/worker-iteration over the 1 Gbps server.
        target_wire = 128e3
    else:
        n = min(32, scale.huge_workers)
        cluster = gpu_cluster_p2(n, 8)
        compute = gpu_cluster_compute()
        wl = workload_for("resnet56")
        batch = max(1, 4096 // n)
        s = 2
        target_wire = None  # full dense model (validated by Fig 8)
    mode = ExecutionMode(execution)
    task = blobs_task(
        n, n_classes=n_classes,
        n_train=scale.dataset_train, n_test=scale.dataset_test,
        seed=seed,
    )
    cfg = SimConfig(
        cluster=cluster,
        max_iter=scale.iters,
        sync=_table4_sync(p, s),
        execution=mode,
        task=task,
        workload=wl,
        wire_scale=(
            target_wire / task.spec.total_bytes
            if target_wire is not None
            else None
        ),
        batch_per_worker=batch,
        compute_model=compute,
        seed=seed + 1,
        eval_every=scale.eval_every,
    )
    r = run_fluentps(cfg)
    acc = r.eval_by_iteration.final()
    time_100 = 100.0 * r.duration / scale.iters
    frag.add_row(row, mode.value, p, round(time_100, 2),
                 round(acc, 4), round(r.dprs_per_100_iterations(), 1))
    frag.record(
        f"{row}_{mode.value}_P{p}",
        time_per_100it=time_100, final_acc=acc,
        dprs_per_100=r.dprs_per_100_iterations(),
    )
    return frag


def table4_grid(scale: Scale, seed: int = 0,
                workloads: Optional[List[str]] = None,
                pool: Optional[SweepExecutor] = None) -> ExperimentResult:
    """Table IV: {AlexNet, ResNet-56} × {CIFAR-10, CIFAR-100} × {soft,
    lazy} × P ∈ {0, 0.1, 0.3, 0.5, 1, dynamic}: time, accuracy, DPRs.

    AlexNet rows run on the 64-worker CPU cluster (1 server, s=3);
    ResNet rows on the 32-worker GPU cluster (8 servers, s=2) — the
    paper's Table IV setups, scaled by ``scale``.
    """
    rows_spec = workloads or ["alexnet-cifar10", "alexnet-cifar100",
                              "resnet56-cifar10", "resnet56-cifar100"]
    result = ExperimentResult(
        "Table IV: time / accuracy / DPRs across P and execution modes",
        headers=["workload", "execution", "P", "time_per_100it", "final_acc", "dprs_per_100it"],
    )
    tasks = [
        RunTask(
            fn=_table4_arm,
            kwargs=dict(
                scale=scale, row=row, execution=execution.value, p=p,
                # Paired per workload row: execution modes and P values
                # are compared against each other, so every cell of a row
                # shares the same straggler draws.
                seed=derive_task_seed("table4", row, seed),
            ),
            key=f"table4/{row}/{execution.value}/P{p}",
        )
        for row in rows_spec
        for execution in (ExecutionMode.SOFT_BARRIER, ExecutionMode.LAZY)
        for p in TABLE4_PS
    ]
    for frag in run_sweep(tasks, pool):
        result.merge_fragment(frag)
    result.notes.append(
        "paper shape: time grows with P under soft barrier (ASP fastest, SSP "
        "slowest); lazy flattens the time spread and slashes DPRs; accuracy "
        "differences stay small, with ASP weakest at scale"
    )
    return result
