"""Experiment harness shared by benchmarks/ and examples/.

One function per paper figure/table lives in :mod:`repro.bench.figures`
and :mod:`repro.bench.tables`; each accepts a :class:`repro.bench.harness.Scale`
so the same code runs at CI speed (``QUICK``) or near paper scale
(``PAPER``).  Benchmarks are thin pytest wrappers that call these and
assert the paper's qualitative shape.
"""

from repro.bench.harness import PAPER, QUICK, Scale, resolve_scale
from repro.bench.workloads import blobs_task, cifar_proxy_task, null_step, null_task_spec

__all__ = [
    "PAPER",
    "QUICK",
    "Scale",
    "resolve_scale",
    "blobs_task",
    "cifar_proxy_task",
    "null_step",
    "null_task_spec",
]
