"""Closed-form regret bounds: SSP-SGD, constant PSSP-SGD, dynamic PSSP-SGD.

Implements the paper's Equations 1-3 and Theorems 1-2:

- Proposition 1 (SSP-SGD, Ho et al.):
  ``R[W](s, N) ≤ 4FL·sqrt(2(s+1)N / T)``;
- Theorem 1 (constant PSSP-SGD): the geometric mixture over effective
  staleness ``k ~ c(1−c)^(k−s)`` is bounded by
  ``4FL·sqrt(2(s + 1/c)N / T)`` — i.e. PSSP(s, c) matches SSP(s') at
  ``s' = s + 1/c − 1``;
- Theorem 2 (dynamic PSSP-SGD): with constant α the pause probability is
  minimized at ``p_min = α/2``, giving ``R ≤ 4FL·sqrt(2(s + 2/α)N / T)``.

Plus the exact geometric-series form of Equation 2 (before the
Cauchy-Schwarz relaxation) and an empirical regret estimator so tests can
verify bound ≥ series ≥ Monte-Carlo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.core.pssp import effective_staleness_pmf, equivalent_ssp_threshold


@dataclass(frozen=True)
class RegretConditions:
    """The (F, L) constants of Proposition 1: ``f_t`` are L-Lipschitz
    convex with bounded gradient norm L, and the parameter diameter
    satisfies D(w1‖w2) ≤ F²."""

    F: float = 1.0
    L: float = 1.0

    def __post_init__(self) -> None:
        if self.F <= 0 or self.L <= 0:
            raise ValueError("F and L must be positive")


def _check(N: int, T: int) -> None:
    if N < 1:
        raise ValueError(f"N must be >= 1, got {N}")
    if T < 1:
        raise ValueError(f"T must be >= 1, got {T}")


def ssp_regret_bound(s: float, N: int, T: int, cond: RegretConditions = RegretConditions()) -> float:
    """Equation 1: ``4FL·sqrt(2(s+1)N / T)``."""
    _check(N, T)
    if s < 0:
        raise ValueError(f"s must be >= 0, got {s}")
    return 4 * cond.F * cond.L * math.sqrt(2 * (s + 1) * N / T)


def constant_pssp_regret_series(
    s: int, c: float, N: int, T: int,
    cond: RegretConditions = RegretConditions(),
    terms: int = 10_000,
) -> float:
    """Equation 2, summed directly: Σ_{k≥s} c(1−c)^(k−s) · 4FL·sqrt(2(k+1)N/T).

    This is the exact expectation over the effective-staleness
    distribution, i.e. the quantity Theorem 1 upper-bounds."""
    _check(N, T)
    if not 0 < c <= 1:
        raise ValueError(f"c must be in (0, 1], got {c}")
    ks = np.arange(s, s + terms)
    weights = np.array([effective_staleness_pmf(s, c, int(k)) for k in ks])
    values = 4 * cond.F * cond.L * np.sqrt(2 * (ks + 1) * N / T)
    return float(np.sum(weights * values))


def constant_pssp_regret_bound(
    s: int, c: float, N: int, T: int, cond: RegretConditions = RegretConditions()
) -> float:
    """Theorem 1 / Equation 3: ``4FL·sqrt(2(s + 1/c)N / T)``.

    Equals :func:`ssp_regret_bound` at ``s' = s + 1/c − 1`` exactly."""
    _check(N, T)
    if not 0 < c <= 1:
        raise ValueError(f"c must be in (0, 1], got {c}")
    return 4 * cond.F * cond.L * math.sqrt(2 * (s + 1.0 / c) * N / T)


def dynamic_pssp_regret_bound(
    s: int, alpha: float, N: int, T: int, cond: RegretConditions = RegretConditions()
) -> float:
    """Theorem 2: with constant α the minimum pause probability is α/2
    (at gap = s), so ``R ≤ 4FL·sqrt(2(s + 2/α)N / T)``."""
    _check(N, T)
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    return constant_pssp_regret_bound(s, alpha / 2.0, N, T, cond)


def matched_pair(s: int, c: float) -> Tuple[float, float]:
    """(s', shared bound factor sqrt(s + 1/c)) for the Figure-9 pairs:
    PSSP(s, c) and SSP(s') share their regret upper bound."""
    s_prime = equivalent_ssp_threshold(s, c)
    return s_prime, math.sqrt(s + 1.0 / c)


def empirical_regret(
    losses: np.ndarray,
    optimum: float,
) -> float:
    """R[W] = mean_t f_t(w_t) − f(w*): the quantity the bounds cap.

    ``losses`` are the per-step training losses observed along the run;
    ``optimum`` is the best achievable loss (e.g. from a long centralized
    run)."""
    if losses.size == 0:
        raise ValueError("need at least one loss sample")
    return float(np.mean(losses) - optimum)


def sgd_regret_experiment(
    staleness_sampler: Callable[[np.random.Generator], int],
    T: int,
    dim: int = 10,
    lr: float = 0.05,
    seed: int = 0,
) -> float:
    """Monte-Carlo regret of delayed-gradient SGD on a convex quadratic.

    Runs SGD where each step's gradient is computed from the parameters
    ``k`` steps ago, with ``k`` drawn from ``staleness_sampler`` — the
    abstraction both SSP (k ≤ s deterministic) and PSSP (k geometric)
    instantiate.  Returns the empirical regret; used by the theory tests
    and the theory bench to confirm bound ordering.
    """
    rng = np.random.default_rng(seed)
    target = rng.normal(size=dim)
    history = [np.zeros(dim)]
    losses = []
    for _t in range(T):
        k = int(staleness_sampler(rng))
        if k < 0:
            raise ValueError("staleness must be >= 0")
        stale = history[max(0, len(history) - 1 - k)]
        noise = 0.1 * rng.normal(size=dim)
        grad = (stale - target) + noise
        w = history[-1] - lr * grad
        history.append(w)
        losses.append(0.5 * float(np.sum((history[-1] - target) ** 2)))
    optimum = 0.0
    return empirical_regret(np.array(losses), optimum)
