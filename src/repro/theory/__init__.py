"""Regret-bound theory for SSP-SGD and PSSP-SGD (paper §III-E)."""

from repro.theory.regret import (
    RegretConditions,
    constant_pssp_regret_bound,
    constant_pssp_regret_series,
    dynamic_pssp_regret_bound,
    empirical_regret,
    matched_pair,
    ssp_regret_bound,
)

__all__ = [
    "RegretConditions",
    "constant_pssp_regret_bound",
    "constant_pssp_regret_series",
    "dynamic_pssp_regret_bound",
    "empirical_regret",
    "matched_pair",
    "ssp_regret_bound",
]
