"""FluentPS reproduction: a parameter-server design with low-frequency
synchronization for distributed deep learning (Yao, Wu, Wang — CLUSTER 2019).

Package map:

- :mod:`repro.core` — the FluentPS contribution: condition-aware per-server
  synchronization, lazy pull execution, PSSP, EPS slicing;
- :mod:`repro.sim` — discrete-event cluster simulator (the hardware
  substrate) and the co-simulation runner;
- :mod:`repro.ml` — pure-NumPy DNN library, optimizers (SGD/LARS) and
  synthetic CIFAR-like datasets;
- :mod:`repro.baselines` — PS-Lite and Bösen/SSPtable comparison systems;
- :mod:`repro.parallel` — real-thread parameter-server runner;
- :mod:`repro.theory` — SSP/PSSP regret bounds (Theorems 1-2);
- :mod:`repro.bench` — shared experiment harness used by benchmarks/.
"""

__version__ = "1.0.0"

from repro.core import (
    ExecutionMode,
    ParameterServerSystem,
    VirtualClockDriver,
    asp,
    bsp,
    drop_stragglers,
    dsps,
    dynamic_pssp,
    make_model,
    pssp,
    ssp,
)

__all__ = [
    "__version__",
    "ExecutionMode",
    "ParameterServerSystem",
    "VirtualClockDriver",
    "asp",
    "bsp",
    "drop_stragglers",
    "dsps",
    "dynamic_pssp",
    "make_model",
    "pssp",
    "ssp",
]
