"""FluentPS core: condition-aware synchronization on every server.

The paper's primary contribution.  Public surface:

- :class:`~repro.core.api.ParameterServerSystem` — N workers × M shard
  servers over a flat parameter vector, with SetcondPull/SetcondPush;
- :mod:`~repro.core.models` — BSP/ASP/SSP/DSPS/drop-stragglers/PSSP
  factories (Table I / Table III);
- :class:`~repro.core.server.ShardServer` — Algorithm 1 with lazy pull
  execution and the soft barrier;
- :class:`~repro.core.driver.VirtualClockDriver` — network-free training
  runs with straggler-driven staleness;
- :mod:`~repro.core.keyspace` — default (PS-Lite) slicing and EPS.
"""

from repro.core.api import ParameterServerSystem, PullResult
from repro.core.conditions import (
    AllPushedPush,
    ASPPull,
    BSPPull,
    DSPSPull,
    PredicatePull,
    PredicatePush,
    PSSPPull,
    PullCondition,
    PushCondition,
    QuorumPush,
    SSPPull,
    SyncView,
)
from repro.core.driver import DriverResult, StepContext, StepFn, VirtualClockDriver
from repro.core.filters import (
    FilterResult,
    NoFilter,
    PushFilter,
    RandomSparsifier,
    SignificanceFilter,
    TopKFilter,
)
from repro.core.keyspace import (
    Assignment,
    DefaultSlicer,
    ElasticSlicer,
    ModelSpec,
    ShardPiece,
    Slicer,
    TensorSpec,
)
from repro.core.layout import ShardLayout
from repro.core.metrics import SyncMetrics
from repro.core.models import (
    SUPPORTED_MODELS,
    SyncModel,
    asp,
    bsp,
    drop_stragglers,
    dsps,
    dynamic_pssp,
    make_model,
    pssp,
    ssp,
)
from repro.core.pssp import (
    ConstantProbability,
    DynamicProbability,
    effective_staleness_pmf,
    equivalent_ssp_threshold,
    gradient_significance,
    matched_constant,
    significance_alpha,
)
from repro.core.scheduler import Scheduler
from repro.core.server import (
    ApplyInfo,
    ExecutionMode,
    ProtocolError,
    PullReply,
    ShardServer,
    default_apply,
)

__all__ = [
    "ParameterServerSystem",
    "PullResult",
    "AllPushedPush",
    "ASPPull",
    "BSPPull",
    "DSPSPull",
    "PredicatePull",
    "PredicatePush",
    "PSSPPull",
    "PullCondition",
    "PushCondition",
    "QuorumPush",
    "SSPPull",
    "SyncView",
    "DriverResult",
    "StepContext",
    "StepFn",
    "VirtualClockDriver",
    "FilterResult",
    "NoFilter",
    "PushFilter",
    "RandomSparsifier",
    "SignificanceFilter",
    "TopKFilter",
    "Assignment",
    "DefaultSlicer",
    "ElasticSlicer",
    "ModelSpec",
    "ShardPiece",
    "Slicer",
    "TensorSpec",
    "ShardLayout",
    "SyncMetrics",
    "SUPPORTED_MODELS",
    "SyncModel",
    "asp",
    "bsp",
    "drop_stragglers",
    "dsps",
    "dynamic_pssp",
    "make_model",
    "pssp",
    "ssp",
    "ConstantProbability",
    "DynamicProbability",
    "effective_staleness_pmf",
    "equivalent_ssp_threshold",
    "gradient_significance",
    "matched_constant",
    "significance_alpha",
    "Scheduler",
    "ApplyInfo",
    "ExecutionMode",
    "ProtocolError",
    "PullReply",
    "ShardServer",
    "default_apply",
]
