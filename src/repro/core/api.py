"""Public FluentPS API: the parameter-server system facade.

A :class:`ParameterServerSystem` wires a model's flat parameter vector
onto M :class:`~repro.core.server.ShardServer` instances through a slicing
assignment, and exposes the paper's worker-side operations:

- ``s_push(worker, progress, update)`` — scatter an update over shards and
  push to every server (Algorithm 1's sPush);
- ``s_pull(worker, progress, on_complete)`` — pull every shard; the
  callback fires with the assembled flat parameters once all M servers
  have responded (sPull + wait);
- ``set_cond_pull`` / ``set_cond_push`` — the SetcondPull/SetcondPush
  interfaces for installing per-server (per-shard) conditions at runtime,
  which is how FluentPS "can adjust synchronization models at runtime" and
  run *different* models on different shards (Figure 2).

Update semantics: a worker pushes its local update ``u`` (for plain SGD,
``u = −lr·∇f``); the server applies ``w += u / N`` (Algorithm 1 line 15),
so one global iteration applies the mean update across workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.conditions import PredicatePull, PredicatePush, PullCondition, PushCondition
from repro.core.keyspace import ElasticSlicer, ModelSpec, Slicer
from repro.core.layout import ShardLayout
from repro.core.metrics import SyncMetrics
from repro.core.models import SyncModel
from repro.core.scheduler import Scheduler
from repro.core.server import ApplyInfo, ExecutionMode, PullReply, ShardServer, default_apply
from repro.obs import Observability, current_observability
from repro.utils.rng import derive_rng


@dataclass
class PullResult:
    """Aggregate of the M per-shard replies for one sPull."""

    worker: int
    progress: int
    params: np.ndarray
    max_missing: int = 0
    total_waited: float = 0.0
    replies: List[PullReply] = field(default_factory=list)


class ParameterServerSystem:
    """N workers × M shard servers over one flat parameter vector."""

    def __init__(
        self,
        model: ModelSpec,
        init_params: np.ndarray,
        n_workers: int,
        n_servers: int,
        sync_model: Union[SyncModel, Sequence[SyncModel]],
        execution: ExecutionMode = ExecutionMode.LAZY,
        slicer: Optional[Slicer] = None,
        apply_fn: Callable[[np.ndarray, np.ndarray, ApplyInfo], None] = default_apply,
        seed: int = 0,
        snapshot_params: bool = True,
        obs: Optional[Observability] = None,
    ):
        if init_params.shape != (model.total_elements,):
            raise ValueError(
                f"init_params must be flat with {model.total_elements} elements, "
                f"got shape {init_params.shape}"
            )
        self.model = model
        self.n_workers = n_workers
        self.n_servers = n_servers
        self.execution = execution
        self.slicer = slicer or ElasticSlicer()
        self.scheduler = Scheduler(model, self.slicer, n_servers)
        self.layout = ShardLayout(model, self.scheduler.assignment)
        self._clock: Callable[[], float] = lambda: 0.0
        self._sync_model = sync_model
        self._apply_fn = apply_fn
        self._seed = seed
        self._snapshot_params = snapshot_params
        self.obs = obs or current_observability()
        self._epoch = 0  # bumped by resize; keeps server RNG streams fresh
        self._retired_metrics: List[SyncMetrics] = []

        self.servers: List[ShardServer] = []
        self._build_servers(init_params.astype(np.float64))
        self._pending_pulls: Dict[int, _PendingPull] = {}

    def _build_servers(self, flat_params: np.ndarray) -> None:
        models = self._normalize_models(self._sync_model, self.n_servers)
        shard_vectors = self.layout.scatter(flat_params)
        self.servers = [
            ShardServer(
                shard_id=m,
                n_workers=self.n_workers,
                model=models[m],
                execution=self.execution,
                params=shard_vectors[m],
                apply_fn=self._apply_fn,
                clock=self._read_clock,
                rng=derive_rng(self._seed, "server", self._epoch, m),
                snapshot_params=self._snapshot_params,
                obs=self.obs,
            )
            for m in range(self.n_servers)
        ]

    @staticmethod
    def _normalize_models(
        sync_model: Union[SyncModel, Sequence[SyncModel]], n_servers: int
    ) -> List[SyncModel]:
        if isinstance(sync_model, SyncModel):
            return [sync_model] * n_servers
        models = list(sync_model)
        if len(models) != n_servers:
            raise ValueError(
                f"need one sync model per server: got {len(models)} for {n_servers} servers"
            )
        return models

    # -- clock wiring (runners drive simulated/real time) -------------------

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def _read_clock(self) -> float:
        return self._clock()

    # -- SetcondPull / SetcondPush -------------------------------------------

    def set_cond_pull(
        self,
        server: int,
        cond: Union[PullCondition, Callable],
        staleness: float = 0.0,
    ) -> None:
        """Install a pull condition on one server (paper's SetcondPull).

        ``cond`` may be a :class:`PullCondition` or a plain
        ``f(SyncView) -> bool`` predicate.
        """
        if not isinstance(cond, PullCondition):
            cond = PredicatePull(cond, staleness=staleness)
        self.servers[server].install_conditions(pull=cond)

    def set_cond_push(self, server: int, cond: Union[PushCondition, Callable]) -> None:
        """Install a push condition on one server (paper's SetcondPush)."""
        if not isinstance(cond, PushCondition):
            cond = PredicatePush(cond)
        self.servers[server].install_conditions(push=cond)

    # -- worker-side operations -------------------------------------------------

    def s_push(self, worker: int, progress: int, update: np.ndarray) -> None:
        """Scatter ``update`` over shards and push to every server."""
        shards = self.layout.scatter(np.asarray(update, dtype=np.float64))
        for m, server in enumerate(self.servers):
            server.handle_push(worker, progress, grad=shards[m])

    def s_pull(
        self,
        worker: int,
        progress: int,
        on_complete: Callable[[PullResult], None],
    ) -> None:
        """Pull every shard; ``on_complete`` fires when all M respond.

        With overlap synchronization each shard answers independently —
        a fast shard's reply does not wait for slow shards; the callback
        fires only when the full parameter vector is assembled.
        """
        pending = _PendingPull(self, worker, progress, on_complete)
        self._pending_pulls[id(pending)] = pending
        for m, server in enumerate(self.servers):
            server.handle_pull(worker, progress, pending.make_responder(m))

    # -- elastic resharding ------------------------------------------------------

    def resize(self, n_servers: int) -> int:
        """Elastically change the server count at a stage boundary.

        FlexPS-style multi-stage semantics: call between training stages,
        when the system is quiescent (no buffered DPRs, no in-flight
        pulls).  The global parameter values carry over; the slicer
        re-shards them (EPS rebalances with minimal movement); per-shard
        synchronization state resets for the new stage (workers restart
        their progress from 0).  Returns the bytes moved between servers.
        """
        if n_servers < 1:
            raise ValueError("need at least one server")
        if self.total_buffered() or self._pending_pulls:
            raise RuntimeError(
                "resize requires quiescence: "
                f"{self.total_buffered()} buffered DPRs, "
                f"{len(self._pending_pulls)} in-flight pulls"
            )
        if not isinstance(self._sync_model, SyncModel) and n_servers != self.n_servers:
            raise ValueError(
                "per-server model lists cannot be resized; use a single model"
            )
        params = self.current_params()
        old_assignment = self.scheduler.assignment
        self.scheduler.resize(n_servers)
        moved = old_assignment.moved_bytes(self.scheduler.assignment)
        self.layout = ShardLayout(self.model, self.scheduler.assignment)
        self._retired_metrics.append(SyncMetrics.merge_all(s.metrics for s in self.servers))
        self.n_servers = n_servers
        self._epoch += 1
        self._build_servers(params)
        return moved

    # -- checkpointing ------------------------------------------------------------

    def checkpoint(self) -> Dict[str, object]:
        """Snapshot the full system state at a quiescent point.

        Captures parameters plus every shard's synchronization state
        (frontier, counts, per-worker progress), so a restored system
        continues the *same* training run — unlike :meth:`resize`, which
        starts a fresh stage.
        """
        if self.total_buffered() or self._pending_pulls:
            raise RuntimeError("checkpoint requires quiescence (buffered/in-flight pulls)")
        return {
            "params": self.current_params(),
            "epoch": self._epoch,
            "n_servers": self.n_servers,
            "shards": [
                {
                    "v_train": s.v_train,
                    "version": s.version,
                    "count": dict(s.count),
                    "worker_progress": list(s.worker_progress),
                    "last_significance": s.last_significance,
                }
                for s in self.servers
            ],
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`checkpoint` (server-failure recovery)."""
        if state["n_servers"] != self.n_servers:
            raise ValueError(
                f"checkpoint taken with {state['n_servers']} servers, "
                f"system has {self.n_servers}; resize first"
            )
        if self.total_buffered() or self._pending_pulls:
            raise RuntimeError("restore requires quiescence")
        params = np.asarray(state["params"])
        shard_vectors = self.layout.scatter(params.astype(np.float64))
        for server, shard_state, vec in zip(self.servers, state["shards"], shard_vectors):
            server.handle_restore(shard_state, params=vec)

    # -- introspection ---------------------------------------------------------

    def current_params(self) -> np.ndarray:
        """Gather the servers' live shard vectors into one flat vector."""
        return self.layout.gather([s.params for s in self.servers])

    def merged_metrics(self) -> SyncMetrics:
        """All synchronization metrics, including pre-resize stages."""
        live = SyncMetrics.merge_all(s.metrics for s in self.servers)
        return SyncMetrics.merge_all(self._retired_metrics + [live])

    def total_buffered(self) -> int:
        return sum(s.buffered_pulls for s in self.servers)

    def describe(self) -> str:
        lines = [
            f"ParameterServerSystem: {self.n_workers} workers x {self.n_servers} servers, "
            f"execution={self.execution.value}, "
            f"imbalance={self.scheduler.assignment.imbalance():.3f}"
        ]
        lines.extend("  " + s.describe() for s in self.servers)
        return "\n".join(lines)


class _PendingPull:
    """Collects the M shard replies of one sPull and assembles the vector."""

    def __init__(
        self,
        system: ParameterServerSystem,
        worker: int,
        progress: int,
        on_complete: Callable[[PullResult], None],
    ):
        self.system = system
        self.worker = worker
        self.progress = progress
        self.on_complete = on_complete
        self.flat = np.empty(system.model.total_elements, dtype=np.float64)
        self.replies: List[Optional[PullReply]] = [None] * system.n_servers
        self.remaining = system.n_servers

    def make_responder(self, server_idx: int) -> Callable[[PullReply], None]:
        def respond(reply: PullReply) -> None:
            if self.replies[server_idx] is not None:
                raise RuntimeError(f"server {server_idx} responded twice to one pull")
            self.replies[server_idx] = reply
            if reply.params is not None:
                self.system.layout.gather_into(self.flat, server_idx, reply.params)
            self.remaining -= 1
            if self.remaining == 0:
                self.system._pending_pulls.pop(id(self), None)
                replies = [r for r in self.replies if r is not None]
                self.on_complete(
                    PullResult(
                        worker=self.worker,
                        progress=self.progress,
                        params=self.flat,
                        max_missing=max(r.missing for r in replies),
                        total_waited=sum(r.waited for r in replies),
                        replies=replies,
                    )
                )

        return respond
