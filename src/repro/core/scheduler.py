"""The FluentPS scheduler: liveness monitoring and key-range assignment.

Unlike PS-Lite's scheduler, this one is *not* in the synchronization path:
"The scheduler only works for monitoring the liveness of servers and
divides the whole key space into several key ranges" (paper §III-A).
When a server joins or leaves, the scheduler re-slices — with EPS it
rebalances with minimal parameter movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.keyspace import Assignment, ElasticSlicer, ModelSpec, Slicer


@dataclass
class ServerRecord:
    """Liveness bookkeeping for one registered shard server."""

    server_id: int
    last_heartbeat: float = 0.0
    alive: bool = True


class Scheduler:
    """Owns the key-space division; never touches synchronization."""

    def __init__(
        self,
        model: ModelSpec,
        slicer: Slicer,
        n_servers: int,
        heartbeat_timeout: float = 5.0,
    ):
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.model = model
        self.slicer = slicer
        self.heartbeat_timeout = heartbeat_timeout
        self.servers: Dict[int, ServerRecord] = {
            m: ServerRecord(m) for m in range(n_servers)
        }
        self.assignment: Assignment = slicer.slice(model, n_servers)
        self.reassignments = 0
        self.total_moved_bytes = 0

    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def alive_servers(self, now: float) -> List[int]:
        return [
            m
            for m, rec in sorted(self.servers.items())
            if rec.alive and now - rec.last_heartbeat <= self.heartbeat_timeout
        ]

    def heartbeat(self, server_id: int, now: float) -> None:
        if server_id not in self.servers:
            raise KeyError(f"unknown server {server_id}")
        rec = self.servers[server_id]
        rec.last_heartbeat = now
        rec.alive = True

    def check_liveness(self, now: float) -> List[int]:
        """Mark servers that missed their heartbeat window dead; if any
        died, re-slice over the survivors.  Returns the dead list."""
        dead = []
        for m, rec in self.servers.items():
            if rec.alive and now - rec.last_heartbeat > self.heartbeat_timeout:
                rec.alive = False
                dead.append(m)
        if dead:
            self._reslice(len([r for r in self.servers.values() if r.alive]))
        return dead

    def resize(self, n_servers: int) -> Assignment:
        """Explicitly change the server count (elastic scale up/down)."""
        if n_servers < 1:
            raise ValueError("need at least one server")
        self._reslice(n_servers)
        self.servers = {m: ServerRecord(m) for m in range(n_servers)}
        return self.assignment

    def _reslice(self, n_servers: int) -> None:
        old = self.assignment
        if isinstance(self.slicer, ElasticSlicer):
            new = self.slicer.rebalance(old, n_servers)
        else:
            new = self.slicer.slice(self.model, n_servers)
        self.total_moved_bytes += old.moved_bytes(new)
        self.assignment = new
        self.reassignments += 1
