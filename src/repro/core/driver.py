"""Virtual-clock training driver: staleness dynamics without a network.

Runs N logical workers against a :class:`ParameterServerSystem` under a
virtual clock: compute durations are sampled from a straggler model, and a
worker whose pull becomes a DPR is parked until the server releases it.
This reproduces every synchronization-frequency phenomenon (DPR counts,
progress gaps, staleness of applied gradients) with real NumPy gradient
math, but without communication costs — the discrete-event co-simulation
in :mod:`repro.sim.runner` adds those.

This driver is also the worker side of Algorithm 1: compute ``g_i`` from
the parameters obtained in the previous pull, ``sPush``, then wait on
``sPull`` for ``w_{i+1}``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import ParameterServerSystem, PullResult
from repro.core.metrics import SyncMetrics
from repro.obs import Observability, current_observability
from repro.sim.stragglers import ComputeModel, LogNormalCompute
from repro.sim.trace import SpanKind, TraceRecorder
from repro.utils.records import SeriesRecord
from repro.utils.rng import derive_rng


@dataclass
class StepContext:
    """Inputs to one worker gradient step."""

    worker: int
    iteration: int
    params: np.ndarray
    rng: np.random.Generator


#: Computes a local update from (possibly stale) parameters.  For plain
#: SGD return ``-lr * grad``; the server applies ``w += update / N``.
StepFn = Callable[[StepContext], np.ndarray]


@dataclass
class DriverResult:
    """Outcome of one virtual-clock training run."""

    duration: float
    iterations: int
    n_workers: int
    metrics: SyncMetrics
    trace: TraceRecorder
    final_params: np.ndarray
    eval_by_time: SeriesRecord = field(default_factory=lambda: SeriesRecord("eval"))
    eval_by_iteration: SeriesRecord = field(default_factory=lambda: SeriesRecord("eval"))

    @property
    def compute_time(self) -> float:
        return self.trace.compute_time()

    @property
    def blocked_time(self) -> float:
        return self.trace.total_by_kind(SpanKind.BLOCKED)

    def dprs_per_100_iterations(self) -> float:
        """Paper convention (Fig 9, Table IV): total DPRs across all shard
        servers, normalized per 100 training iterations."""
        return self.metrics.dprs_per_100_iterations(self.iterations)


class VirtualClockDriver:
    """Event-driven execution of Algorithm 1's worker loop for N workers."""

    def __init__(
        self,
        system: ParameterServerSystem,
        step_fn: StepFn,
        max_iter: int,
        compute_model: Optional[ComputeModel] = None,
        base_compute_time: float = 1.0,
        seed: int = 0,
        keep_spans: bool = False,
        eval_fn: Optional[Callable[[np.ndarray], float]] = None,
        eval_every: int = 0,
        start_iteration: int = 0,
        obs: Optional[Observability] = None,
    ):
        """``start_iteration`` continues a previous run (e.g. after
        :meth:`~repro.core.api.ParameterServerSystem.restore`): workers
        push iterations ``start_iteration .. start_iteration+max_iter-1``.
        """
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if start_iteration < 0:
            raise ValueError(f"start_iteration must be >= 0, got {start_iteration}")
        if base_compute_time <= 0:
            raise ValueError("base_compute_time must be positive")
        self.system = system
        self.step_fn = step_fn
        self.max_iter = max_iter
        self.start_iteration = start_iteration
        self.end_iteration = start_iteration + max_iter
        self.compute_model = compute_model or LogNormalCompute(0.2)
        self.base_compute_time = base_compute_time
        self.seed = seed
        self.obs = obs or current_observability()
        # Observability implies a full trace capture for export.
        self.trace = TraceRecorder(keep_spans=keep_spans or self.obs.enabled)
        if self.obs.enabled:
            self.obs.registry.set_clock(lambda: self.now)
            self.obs.begin_run(
                f"driver-run{len(self.obs.runs)}-n{system.n_workers}", self.trace
            )
        self.eval_fn = eval_fn
        self.eval_every = eval_every

        self.now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, int, int, float]] = []  # (t, seq, worker, it, dur)
        n = system.n_workers
        self._params: List[np.ndarray] = [system.current_params() for _ in range(n)]
        self._step_rngs = [derive_rng(seed, "step", w) for w in range(n)]
        self._compute_rngs = [derive_rng(seed, "compute", w) for w in range(n)]
        self._pull_issue_time: Dict[int, float] = {}
        self._done = 0
        self.eval_by_time = SeriesRecord("eval", x_label="time_s", y_label="metric")
        self.eval_by_iteration = SeriesRecord("eval", x_label="iteration", y_label="metric")
        system.set_clock(lambda: self.now)

    # -- scheduling helpers ---------------------------------------------------

    def _schedule_compute(self, worker: int, iteration: int) -> None:
        dur = self.compute_model.sample(
            worker, iteration, self.base_compute_time, self._compute_rngs[worker]
        )
        self._seq += 1
        heapq.heappush(self._heap, (self.now + dur, self._seq, worker, iteration, dur))

    def _worker_name(self, worker: int) -> str:
        return f"worker{worker}"

    # -- event handlers --------------------------------------------------------

    def _on_compute_finished(self, worker: int, iteration: int, dur: float) -> None:
        self.trace.record_span(
            self._worker_name(worker), SpanKind.COMPUTE, self.now - dur, self.now, iteration
        )
        ctx = StepContext(
            worker=worker,
            iteration=iteration,
            params=self._params[worker],
            rng=self._step_rngs[worker],
        )
        update = self.step_fn(ctx)
        self.system.s_push(worker, iteration, update)
        self._pull_issue_time[worker] = self.now
        self.system.s_pull(
            worker, iteration, lambda result, w=worker: self._on_pull_complete(w, result)
        )

    def _on_pull_complete(self, worker: int, result: PullResult) -> None:
        issued = self._pull_issue_time.pop(worker)
        if self.now > issued:
            self.trace.record_span(
                self._worker_name(worker),
                SpanKind.BLOCKED,
                issued,
                self.now,
                result.progress,
            )
        self._params[worker] = result.params
        nxt = result.progress + 1
        if worker == 0 and self.eval_fn is not None and self.eval_every > 0:
            if nxt % self.eval_every == 0 or nxt == self.end_iteration:
                value = self.eval_fn(self.system.current_params())
                self.eval_by_time.append(self.now, value)
                self.eval_by_iteration.append(nxt, value)
        if nxt < self.end_iteration:
            self._schedule_compute(worker, nxt)
        else:
            self._done += 1

    # -- run ----------------------------------------------------------------------

    def run(self) -> DriverResult:
        """Drain the virtual clock until every worker finishes its range."""
        for w in range(self.system.n_workers):
            self._schedule_compute(w, self.start_iteration)
        while self._heap:
            t, _seq, worker, iteration, dur = heapq.heappop(self._heap)
            if t < self.now:
                raise RuntimeError("virtual clock went backwards")
            self.now = t
            self._on_compute_finished(worker, iteration, dur)
        if self._done != self.system.n_workers:
            stuck = self.system.n_workers - self._done
            raise RuntimeError(
                f"deadlock: {stuck} workers never completed "
                f"(buffered pulls: {self.system.total_buffered()})"
            )
        metrics = self.system.merged_metrics()
        if self.obs.enabled:
            metrics.publish(self.obs.registry)
        return DriverResult(
            duration=self.now,
            iterations=self.max_iter,
            n_workers=self.system.n_workers,
            metrics=metrics,
            trace=self.trace,
            final_params=self.system.current_params(),
            eval_by_time=self.eval_by_time,
            eval_by_iteration=self.eval_by_iteration,
        )
