"""Shard layout: mapping a flat parameter vector onto server shards.

Training code sees one flat fp32 vector of all model parameters (the
concatenation of the model's tensors in declaration order).  A
:class:`ShardLayout` compiles a slicing :class:`~repro.core.keyspace.Assignment`
into per-server flat slices so gradients/parameters scatter and gather with
pure NumPy slicing — no per-element bookkeeping at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.keyspace import Assignment, ModelSpec


@dataclass(frozen=True, order=True)
class FlatSlice:
    """A contiguous range of the flat parameter vector owned by a server."""

    start: int
    stop: int

    @property
    def length(self) -> int:
        return self.stop - self.start


class ShardLayout:
    """Compiled scatter/gather plan for one (model, assignment) pair."""

    def __init__(self, model: ModelSpec, assignment: Assignment):
        assignment.validate_partition(model)
        self.model = model
        self.assignment = assignment
        self.n_servers = assignment.n_servers
        self.total_elements = model.total_elements

        offsets: Dict[str, int] = {}
        cursor = 0
        for t in model.tensors:
            offsets[t.name] = cursor
            cursor += t.elements
        self._tensor_offsets = offsets

        # Per-server sorted flat slices; pieces of one tensor are contiguous
        # in the flat vector, so each piece maps to exactly one flat range.
        self.slices: List[List[FlatSlice]] = []
        for m in range(self.n_servers):
            ranges = sorted(
                FlatSlice(
                    offsets[p.tensor] + p.start,
                    offsets[p.tensor] + p.stop,
                )
                for p in assignment.pieces[m]
            )
            self.slices.append(self._coalesce(ranges))

        self.shard_elements = [sum(s.length for s in self.slices[m]) for m in range(self.n_servers)]

    @staticmethod
    def _coalesce(ranges: Sequence[FlatSlice]) -> List[FlatSlice]:
        out: List[FlatSlice] = []
        for r in ranges:
            if out and out[-1].stop == r.start:
                out[-1] = FlatSlice(out[-1].start, r.stop)
            else:
                out.append(r)
        return out

    # -- scatter / gather ----------------------------------------------------

    def scatter(self, flat: np.ndarray) -> List[np.ndarray]:
        """Split a flat vector into per-server shard vectors (copies)."""
        if flat.shape != (self.total_elements,):
            raise ValueError(
                f"expected flat vector of {self.total_elements} elements, got {flat.shape}"
            )
        shards = []
        for m in range(self.n_servers):
            parts = [flat[s.start : s.stop] for s in self.slices[m]]
            shards.append(np.concatenate(parts) if parts else np.empty(0, dtype=flat.dtype))
        return shards

    def gather(self, shards: Sequence[np.ndarray], out: np.ndarray = None) -> np.ndarray:
        """Reassemble per-server shard vectors into a flat vector."""
        if len(shards) != self.n_servers:
            raise ValueError(f"expected {self.n_servers} shards, got {len(shards)}")
        if out is None:
            out = np.empty(self.total_elements, dtype=np.float64)
        for m, shard in enumerate(shards):
            if shard.shape != (self.shard_elements[m],):
                raise ValueError(
                    f"shard {m}: expected {self.shard_elements[m]} elements, got {shard.shape}"
                )
            cursor = 0
            for s in self.slices[m]:
                out[s.start : s.stop] = shard[cursor : cursor + s.length]
                cursor += s.length
        return out

    def gather_into(self, out: np.ndarray, server: int, shard: np.ndarray) -> None:
        """Write one server's shard back into a flat vector in place."""
        if shard.shape != (self.shard_elements[server],):
            raise ValueError(
                f"shard {server}: expected {self.shard_elements[server]} elements, "
                f"got {shard.shape}"
            )
        cursor = 0
        for s in self.slices[server]:
            out[s.start : s.stop] = shard[cursor : cursor + s.length]
            cursor += s.length

    # -- sizing ----------------------------------------------------------------

    def shard_bytes(self, server: int, dtype_size: int = 4) -> int:
        """Wire size of one shard's parameters/gradients."""
        return self.shard_elements[server] * dtype_size

    def tensor_offset(self, name: str) -> int:
        return self._tensor_offsets[name]

    def unflatten(self, flat: np.ndarray) -> Dict[str, np.ndarray]:
        """View the flat vector as named tensors (for the ML layer)."""
        out = {}
        for t in self.model.tensors:
            off = self._tensor_offsets[t.name]
            out[t.name] = flat[off : off + t.elements].reshape(t.shape)
        return out
