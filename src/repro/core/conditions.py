"""Pull/push conditions — the condition-aware synchronization methodology.

FluentPS implements every synchronization model by specifying only two
predicates per server (Algorithm 1 / Table III):

- the **pull condition** decides whether a pull is answered now or becomes
  a *delayed pull request* (DPR) in the lazy pull buffer;
- the **push condition** decides, after a push is applied, whether the
  shard's training frontier ``V_train`` advances (flushing the DPRs
  buffered at the old frontier).

Progress semantics used throughout this codebase (reconciling the paper's
Algorithm 1, Table III and Figure 3):

- a worker pulling with ``progress = p`` has pushed gradients for
  iterations ``0..p`` and requests the parameters for iteration ``p+1``;
- ``v_train`` is a *frontier*: every worker has pushed every iteration
  ``< v_train`` (initially 0);
- SSP answers a pull iff ``p < v_train + s`` — so ``s = 0`` is exactly BSP
  (Table III's BSP row) and ``s = ∞`` is ASP.
"""

from __future__ import annotations

import abc
import math
from typing import Mapping, Optional

import numpy as np

from repro.core.pssp import ProbabilityModel, SignificanceView


class SyncView:
    """Read-only synchronization state a condition may inspect.

    This is the paper's "interfaces also expose details of the
    synchronization state, e.g., the progress of fastest/slowest worker,
    the number of workers that have pushed gradients in a specified
    iteration" — developers write new models against this view.
    """

    __slots__ = (
        "progress",
        "worker",
        "v_train",
        "n_workers",
        "count",
        "fastest",
        "slowest",
        "significance",
        "rng",
    )

    def __init__(
        self,
        progress: int,
        worker: int,
        v_train: int,
        n_workers: int,
        count: Mapping[int, int],
        fastest: int,
        slowest: int,
        significance: float,
        rng: np.random.Generator,
    ):
        self.progress = progress
        self.worker = worker
        self.v_train = v_train
        self.n_workers = n_workers
        self.count = count
        self.fastest = fastest
        self.slowest = slowest
        self.significance = significance
        self.rng = rng

    @property
    def gap(self) -> int:
        """Over-frontier gap of the requesting worker."""
        return self.progress - self.v_train

    def pushed(self, iteration: int) -> int:
        """Workers that have pushed gradients for ``iteration``."""
        return self.count.get(iteration, 0)


class PullCondition(abc.ABC):
    """Returns True when the server should answer the pull immediately."""

    #: Protocol family tag carried in the server's event stream; the
    #: ``repro.analysis`` sanitizer keys its staleness-bound checks on it
    #: ("custom" disables the mechanical bound).  User-defined conditions
    #: with SSP semantics may override this to opt back in.
    kind: str = "custom"

    @abc.abstractmethod
    def __call__(self, view: SyncView) -> bool: ...

    def staleness(self) -> float:
        """Current nominal staleness threshold (∞ for ASP); used to index
        soft-barrier DPR buffers and for reporting."""
        return 0.0

    def describe(self) -> str:
        return type(self).__name__


class PushCondition(abc.ABC):
    """Returns True when the frontier should advance past ``view.v_train``."""

    @abc.abstractmethod
    def __call__(self, view: SyncView) -> bool: ...

    def quorum(self, n_workers: int) -> Optional[int]:
        """Pushes of the frontier iteration required before an advance, or
        None when the rule is not a simple count (custom predicates) — the
        sanitizer then skips its frontier-overrun check."""
        return None

    def describe(self) -> str:
        return type(self).__name__


# ---------------------------------------------------------------------------
# Pull conditions (Table III, left column)
# ---------------------------------------------------------------------------


class SSPPull(PullCondition):
    """progress < V_train + s.  s=0 ⇒ BSP, s=∞ ⇒ ASP."""

    kind = "ssp"

    def __init__(self, s: float):
        if s < 0:
            raise ValueError(f"staleness threshold must be >= 0, got {s}")
        self.s = s

    def __call__(self, view: SyncView) -> bool:
        return view.progress < view.v_train + self.s

    def staleness(self) -> float:
        return self.s

    def describe(self) -> str:
        if self.s == 0:
            return "BSP (progress < V_train)"
        if math.isinf(self.s):
            return "ASP (always)"
        return f"SSP (progress < V_train + {self.s})"


class BSPPull(SSPPull):
    """Bulk Synchronous Parallel: full barrier each iteration."""

    def __init__(self) -> None:
        super().__init__(0)


class ASPPull(SSPPull):
    """Asynchronous Parallel: never block."""

    def __init__(self) -> None:
        super().__init__(math.inf)


class PSSPPull(PullCondition):
    """Probabilistic SSP: below the threshold answer immediately; at or
    above it, pause only with probability P (Table III's
    ``progress < V_train + s or rand(0,1) > P``)."""

    kind = "pssp"

    def __init__(self, s: float, prob: ProbabilityModel):
        if s < 0:
            raise ValueError(f"staleness threshold must be >= 0, got {s}")
        self.s = s
        self.prob = prob
        self.coin_flips = 0
        self.paused = 0

    def __call__(self, view: SyncView) -> bool:
        if view.progress < view.v_train + self.s:
            return True
        sig_view = SignificanceView(view.significance, view.gap, self.s)
        p = self.prob.probability(self.s, view.gap, sig_view)
        self.coin_flips += 1
        if view.rng.random() < p:
            self.paused += 1
            return False
        return True

    def staleness(self) -> float:
        return self.s

    def describe(self) -> str:
        return f"PSSP (s={self.s}, P={self.prob.describe()})"


class DSPSPull(PullCondition):
    """Dynamic Synchronous Parallel Strategy: SSP with a runtime-adjusted
    staleness threshold (paper's citation [25]).

    A windowed controller widens ``s`` when the block rate is high (the
    cluster is noisy — let fast workers run) and narrows it when blocks
    are rare (keep parameters fresh).  The server calls
    :meth:`observe` with each pull outcome.
    """

    kind = "dsps"

    def __init__(
        self,
        s0: int = 3,
        s_min: int = 1,
        s_max: int = 16,
        window: int = 64,
        hi_rate: float = 0.25,
        lo_rate: float = 0.05,
    ):
        if not s_min <= s0 <= s_max:
            raise ValueError(f"need s_min <= s0 <= s_max, got {s_min},{s0},{s_max}")
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0 <= lo_rate <= hi_rate <= 1:
            raise ValueError("need 0 <= lo_rate <= hi_rate <= 1")
        self.s = s0
        self.s_min = s_min
        self.s_max = s_max
        self.window = window
        self.hi_rate = hi_rate
        self.lo_rate = lo_rate
        self._pulls = 0
        self._blocks = 0
        self.adjustments = 0

    def __call__(self, view: SyncView) -> bool:
        ok = view.progress < view.v_train + self.s
        self.observe(blocked=not ok)
        return ok

    def observe(self, blocked: bool) -> None:
        self._pulls += 1
        if blocked:
            self._blocks += 1
        if self._pulls >= self.window:
            rate = self._blocks / self._pulls
            if rate > self.hi_rate and self.s < self.s_max:
                self.s += 1
                self.adjustments += 1
            elif rate < self.lo_rate and self.s > self.s_min:
                self.s -= 1
                self.adjustments += 1
            self._pulls = 0
            self._blocks = 0

    def staleness(self) -> float:
        return self.s

    def describe(self) -> str:
        return f"DSPS (s∈[{self.s_min},{self.s_max}], current={self.s})"


# ---------------------------------------------------------------------------
# Push conditions (Table III, right column)
# ---------------------------------------------------------------------------


class AllPushedPush(PushCondition):
    """Count[V_train] == N: the frontier advances when every worker has
    pushed the frontier iteration."""

    def __call__(self, view: SyncView) -> bool:
        return view.pushed(view.v_train) >= view.n_workers

    def quorum(self, n_workers: int) -> Optional[int]:
        return n_workers

    def describe(self) -> str:
        return "Count[V_train] == N"


class QuorumPush(PushCondition):
    """Count[V_train] == N_t: drop stragglers — all workers may enter the
    next iteration once any N_t workers have pushed (paper's citation
    [19], 'Revisiting distributed synchronous SGD')."""

    def __init__(self, n_t: int):
        if n_t < 1:
            raise ValueError(f"quorum must be >= 1, got {n_t}")
        self.n_t = n_t

    def __call__(self, view: SyncView) -> bool:
        return view.pushed(view.v_train) >= self.n_t

    def quorum(self, n_workers: int) -> Optional[int]:
        return self.n_t

    def describe(self) -> str:
        return f"Count[V_train] == N_t ({self.n_t})"


class FractionPush(QuorumPush):
    """Quorum expressed as a fraction of the worker count."""

    def __init__(self, fraction: float, n_workers: int):
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        super().__init__(max(1, int(round(fraction * n_workers))))


class PredicatePull(PullCondition):
    """Adapter turning a plain ``f(view) -> bool`` into a pull condition —
    the SetcondPull escape hatch for user-defined models."""

    def __init__(self, fn, staleness: float = 0.0, name: Optional[str] = None):
        self.fn = fn
        self._staleness = staleness
        self._name = name or getattr(fn, "__name__", "custom")

    def __call__(self, view: SyncView) -> bool:
        return bool(self.fn(view))

    def staleness(self) -> float:
        return self._staleness

    def describe(self) -> str:
        return f"custom pull ({self._name})"


class PredicatePush(PushCondition):
    """Adapter turning a plain ``f(view) -> bool`` into a push condition."""

    def __init__(self, fn, name: Optional[str] = None):
        self.fn = fn
        self._name = name or getattr(fn, "__name__", "custom")

    def __call__(self, view: SyncView) -> bool:
        return bool(self.fn(view))

    def describe(self) -> str:
        return f"custom push ({self._name})"
