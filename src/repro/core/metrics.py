"""Synchronization metrics: DPR counts, wait times, staleness histograms.

These are the quantities the paper's evaluation reports: delayed pull
requests per 100 iterations (Figure 9, Table IV), DPR wait time, and the
staleness (missing iterations) of the parameters each pull received.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass
class SyncMetrics:
    """Per-shard (mergeable) synchronization counters."""

    pulls: int = 0
    pushes: int = 0
    immediate_pulls: int = 0
    dprs: int = 0  # pulls that were buffered (delayed pull requests)
    dpr_wait_total: float = 0.0  # summed sim-seconds DPRs spent buffered
    probabilistic_passes: int = 0  # over-threshold pulls PSSP let through
    probabilistic_pauses: int = 0  # over-threshold pulls PSSP paused
    frontier_advances: int = 0
    #: histogram of missing iterations in answered pulls:
    #: missing = max(0, progress + 1 − v_train) at response time.
    staleness_hist: Dict[int, int] = field(default_factory=lambda: defaultdict(int))
    #: DPR creation iteration indices (for per-100-iteration series).
    dpr_iterations: List[int] = field(default_factory=list)

    # -- recording -------------------------------------------------------

    def record_pull(self, immediate: bool, iteration: int) -> None:
        """Count one pull; non-immediate pulls are DPRs."""
        self.pulls += 1
        if immediate:
            self.immediate_pulls += 1
        else:
            self.dprs += 1
            self.dpr_iterations.append(iteration)

    def record_push(self) -> None:
        """Count one applied push."""
        self.pushes += 1

    def record_response(self, missing: int, waited: float = 0.0) -> None:
        """Record an answered pull: staleness + buffered wait time."""
        self.staleness_hist[max(0, missing)] += 1
        self.dpr_wait_total += waited

    def record_frontier_advance(self) -> None:
        """Count one V_train increment."""
        self.frontier_advances += 1

    def record_probabilistic(self, passed: bool) -> None:
        """Count one PSSP over-threshold coin flip (pass or pause)."""
        if passed:
            self.probabilistic_passes += 1
        else:
            self.probabilistic_pauses += 1

    def record_quiet_round(self, n_workers: int, early_pulls: int) -> None:
        """Bulk-record one analytically committed quiet round: ``n_workers``
        pushes, ``n_workers`` immediate pulls, one frontier advance, and
        the staleness split the serve order implies (``early_pulls`` were
        answered before the frontier advanced, hence one missing
        iteration; the rest after, hence zero).  Exactly equivalent to the
        per-request recording sequence of the event path — histogram keys
        are only created for non-zero buckets, and ``dpr_wait_total``
        gains nothing because every quiet-round pull waited 0.0 s."""
        self.pushes += n_workers
        self.pulls += n_workers
        self.immediate_pulls += n_workers
        self.frontier_advances += 1
        if early_pulls:
            self.staleness_hist[1] += early_pulls
        if n_workers - early_pulls:
            self.staleness_hist[0] += n_workers - early_pulls

    # -- derived ----------------------------------------------------------

    @property
    def dpr_fraction(self) -> float:
        return self.dprs / self.pulls if self.pulls else 0.0

    def dprs_per_100_iterations(self, total_iterations: int) -> float:
        """Paper convention: DPR count normalized per 100 iterations."""
        if total_iterations <= 0:
            raise ValueError("total_iterations must be positive")
        return 100.0 * self.dprs / total_iterations

    def dpr_series(self, total_iterations: int, bucket: int = 100) -> List[int]:
        """DPR count per ``bucket`` iterations (the Figure 9 series)."""
        if bucket < 1:
            raise ValueError("bucket must be >= 1")
        n_buckets = (total_iterations + bucket - 1) // bucket
        series = [0] * max(1, n_buckets)
        for it in self.dpr_iterations:
            idx = min(max(it, 0) // bucket, len(series) - 1)
            series[idx] += 1
        return series

    def mean_staleness(self) -> float:
        """Mean missing iterations across answered pulls."""
        total = sum(self.staleness_hist.values())
        if total == 0:
            return 0.0
        return sum(k * v for k, v in self.staleness_hist.items()) / total

    def max_staleness(self) -> int:
        """Largest missing-iterations count observed."""
        return max(self.staleness_hist, default=0)

    def mean_dpr_wait(self) -> float:
        """Mean buffered time per DPR."""
        return self.dpr_wait_total / self.dprs if self.dprs else 0.0

    # -- merging -----------------------------------------------------------

    def merge(self, other: "SyncMetrics") -> "SyncMetrics":
        """A new SyncMetrics combining both (inputs unchanged)."""
        out = SyncMetrics(
            pulls=self.pulls + other.pulls,
            pushes=self.pushes + other.pushes,
            immediate_pulls=self.immediate_pulls + other.immediate_pulls,
            dprs=self.dprs + other.dprs,
            dpr_wait_total=self.dpr_wait_total + other.dpr_wait_total,
            probabilistic_passes=self.probabilistic_passes + other.probabilistic_passes,
            probabilistic_pauses=self.probabilistic_pauses + other.probabilistic_pauses,
            frontier_advances=self.frontier_advances + other.frontier_advances,
        )
        for k, v in self.staleness_hist.items():
            out.staleness_hist[k] += v
        for k, v in other.staleness_hist.items():
            out.staleness_hist[k] += v
        out.dpr_iterations = sorted(self.dpr_iterations + other.dpr_iterations)
        return out

    @staticmethod
    def merge_all(metrics: Iterable["SyncMetrics"]) -> "SyncMetrics":
        """Fold :meth:`merge` over many metric sets."""
        out = SyncMetrics()
        for m in metrics:
            out = out.merge(m)
        return out

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a flat dict (for records/JSON)."""
        return {
            "pulls": float(self.pulls),
            "pushes": float(self.pushes),
            "dprs": float(self.dprs),
            "dpr_fraction": self.dpr_fraction,
            "mean_dpr_wait": self.mean_dpr_wait(),
            "mean_staleness": self.mean_staleness(),
            "max_staleness": float(self.max_staleness()),
            "frontier_advances": float(self.frontier_advances),
        }

    def publish(self, registry, **labels: object) -> None:
        """Export the headline numbers into a metrics registry as gauges
        (one label set per caller, e.g. ``shard=3`` or ``run=...``)."""
        for key, value in self.summary().items():
            registry.gauge(f"sync_{key}", f"SyncMetrics.{key}").set(value, **labels)
        if self.probabilistic_passes or self.probabilistic_pauses:
            registry.gauge(
                "sync_probabilistic_passes", "PSSP over-threshold passes"
            ).set(self.probabilistic_passes, **labels)
            registry.gauge(
                "sync_probabilistic_pauses", "PSSP over-threshold pauses"
            ).set(self.probabilistic_pauses, **labels)
