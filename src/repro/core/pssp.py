"""Probabilistic SSP (PSSP): blocking probabilities and theory helpers.

Under PSSP a worker whose progress gap has reached the staleness threshold
``s`` is paused only *with probability P* (paper §III-E).  Two variants:

- **constant PSSP**: P = c for every over-threshold pull;
- **dynamic PSSP**: P(s, k) = α / (1 + e^(s−k)) for gap k ≥ s, where α is a
  constant or a function of the gradient significance SF(g, w) = |g|/|w|.

Theorem 1 shows constant PSSP-SGD(s, c) shares its regret upper bound with
SSP-SGD(s') at ``s' = s + 1/c − 1``; the closed forms live in
:mod:`repro.theory.regret`, the matched-pair helpers live here because the
benches use them to construct Figure 9's A/B...G/H groups.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Optional, Union

import numpy as np

AlphaLike = Union[float, Callable[["SignificanceView"], float]]


class SignificanceView:
    """Minimal view handed to α-functions: the last gradient significance
    observed on this shard (|g|/|w|) and the requesting worker's gap."""

    __slots__ = ("significance", "gap", "staleness")

    def __init__(self, significance: float, gap: int, staleness: float):
        self.significance = significance
        self.gap = gap
        self.staleness = staleness


def gradient_significance(grad_norm: float, weight_norm: float, eps: float = 1e-12) -> float:
    """Gaia-style significance SF(g, w) = |g| / |w| (paper §III-E2)."""
    if grad_norm < 0 or weight_norm < 0:
        raise ValueError("norms must be non-negative")
    return grad_norm / (weight_norm + eps)


class ProbabilityModel(abc.ABC):
    """Maps (threshold s, gap k, shard state) to a pause probability P."""

    @abc.abstractmethod
    def probability(self, s: float, gap: int, view: Optional[SignificanceView] = None) -> float:
        """Return P ∈ [0, 1]: probability of pausing an over-threshold pull."""

    def constant_c(self) -> Optional[float]:
        """The constant pause probability c when this model has one, else
        None.  Carried in the server's ``server_config`` protocol event so
        trace consumers can derive the effective bound s' = s + 1/c − 1
        (paper §III-E1) for PSSP-const streams."""
        return None

    def describe(self) -> str:
        return type(self).__name__


class ConstantProbability(ProbabilityModel):
    """Constant PSSP: P = 0 below the threshold, P = c at/above it.

    c = 1 reduces to SSP; c = 0 reduces to ASP (paper §III-E1).
    """

    def __init__(self, c: float):
        if not 0.0 <= c <= 1.0:
            raise ValueError(f"c must be in [0, 1], got {c}")
        self.c = c

    def probability(self, s, gap, view=None):
        if gap < s:
            return 0.0
        return self.c

    def constant_c(self) -> Optional[float]:
        return self.c

    def describe(self) -> str:
        return f"constant(c={self.c})"


class DynamicProbability(ProbabilityModel):
    """Dynamic PSSP: P(s, k) = α / (1 + e^(s−k)) for k ≥ s, else 0.

    α may be a constant (minimum pause probability α/2 at k = s, rising
    toward α as the gap grows) or a callable of :class:`SignificanceView`
    (e.g. the gradient-significance function), in which case the bound
    analysis relies on the function's lower bound (Theorem 2).
    """

    def __init__(self, alpha: AlphaLike = 1.0):
        if isinstance(alpha, (int, float)):
            if not 0.0 <= float(alpha) <= 1.0:
                raise ValueError(f"constant alpha must be in [0, 1], got {alpha}")
        elif not callable(alpha):
            raise TypeError("alpha must be a number or a callable")
        self.alpha = alpha

    def _alpha_value(self, view: Optional[SignificanceView]) -> float:
        if callable(self.alpha):
            if view is None:
                raise ValueError("callable alpha needs a SignificanceView")
            a = float(self.alpha(view))
        else:
            a = float(self.alpha)
        return min(max(a, 0.0), 1.0)

    def probability(self, s, gap, view=None):
        if gap < s:
            return 0.0
        a = self._alpha_value(view)
        # Logistic in the over-threshold gap; P(s, s) = α/2, P(∞) → α.
        return a / (1.0 + math.exp(s - gap))

    def describe(self) -> str:
        if callable(self.alpha):
            return "dynamic(alpha=significance)"
        return f"dynamic(alpha={self.alpha})"


def significance_alpha(scale: float = 10.0, floor: float = 0.05, ceil: float = 1.0):
    """An α-function driven by gradient significance: large |g|/|w| (the
    shard is still moving) ⇒ pause fast workers more readily; tiny
    significance ⇒ let them run.  ``scale`` converts the typically small
    |g|/|w| ratio into the [floor, ceil] α range."""
    if not 0.0 <= floor <= ceil <= 1.0:
        raise ValueError("need 0 <= floor <= ceil <= 1")

    def alpha(view: SignificanceView) -> float:
        return min(ceil, max(floor, scale * view.significance))

    return alpha


# -- matched-regret helpers (Theorem 1 / Figure 9 pairs) -----------------


def equivalent_ssp_threshold(s: float, c: float) -> float:
    """The SSP threshold s' whose regret bound equals constant PSSP(s, c):
    s' = s + 1/c − 1.  Note s' may be fractional — PSSP provides the
    fine-tuned staleness control SSP's integer s cannot."""
    if c <= 0 or c > 1:
        raise ValueError(f"c must be in (0, 1], got {c}")
    return s + 1.0 / c - 1.0


def matched_constant(s: float, s_prime: float) -> float:
    """Inverse of :func:`equivalent_ssp_threshold`: the c for which
    PSSP(s, c) matches SSP(s')."""
    if s_prime < s:
        raise ValueError(f"need s' >= s, got s'={s_prime} < s={s}")
    return 1.0 / (s_prime - s + 1.0)


def effective_staleness_pmf(s: int, c: float, k: int) -> float:
    """P[constant PSSP(s, c) behaves like SSP with threshold k], k ≥ s:
    the worker passed k−s over-threshold coin flips then was paused, so
    the probability is c·(1−c)^(k−s) (Theorem 1)."""
    if k < s:
        return 0.0
    if not 0.0 < c <= 1.0:
        raise ValueError(f"c must be in (0, 1], got {c}")
    return c * (1.0 - c) ** (k - s)


def expected_effective_staleness(s: int, c: float) -> float:
    """Mean of the effective-staleness distribution: s + (1−c)/c."""
    if not 0.0 < c <= 1.0:
        raise ValueError(f"c must be in (0, 1], got {c}")
    return s + (1.0 - c) / c


def sample_effective_staleness(
    s: int, c: float, rng: np.random.Generator, size: int = 1
) -> np.ndarray:
    """Monte-Carlo sampler of the same distribution (for theory tests)."""
    if not 0.0 < c <= 1.0:
        raise ValueError(f"c must be in (0, 1], got {c}")
    return s + rng.geometric(c, size=size) - 1
