"""Key space management: tensors, shard pieces, default slicing and EPS.

PS-Lite's default slicing range-partitions the raw key space, and since a
DNN's parameter sizes are heavily skewed (a fully-connected layer can hold
most of the parameters), one server ends up with most of the bytes — the
load-imbalance problem the paper attributes to PS-Lite (§III-A).

Elastic Parameter Slicing (EPS) remaps original keys to new keys so the
model's parameters divide evenly over all key ranges, and rebalances with
minimal movement when the server count changes.
"""

from __future__ import annotations

import abc
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class TensorSpec:
    """One named parameter tensor of the model."""

    name: str
    shape: Tuple[int, ...]
    dtype_size: int = 4  # bytes per element (fp32)

    def __post_init__(self) -> None:
        if not self.shape or any(d <= 0 for d in self.shape):
            raise ValueError(f"invalid shape {self.shape} for tensor {self.name!r}")
        if self.dtype_size <= 0:
            raise ValueError(f"dtype_size must be positive, got {self.dtype_size}")

    @property
    def elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.elements * self.dtype_size


@dataclass(frozen=True)
class ModelSpec:
    """An ordered collection of parameter tensors."""

    name: str
    tensors: Tuple[TensorSpec, ...]

    def __post_init__(self) -> None:
        names = [t.name for t in self.tensors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tensor names in model {self.name!r}")
        if not self.tensors:
            raise ValueError(f"model {self.name!r} has no tensors")

    @classmethod
    def from_tensors(cls, name: str, tensors: Iterable[TensorSpec]) -> "ModelSpec":
        return cls(name=name, tensors=tuple(tensors))

    @property
    def total_elements(self) -> int:
        return sum(t.elements for t in self.tensors)

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.tensors)

    def tensor(self, name: str) -> TensorSpec:
        for t in self.tensors:
            if t.name == name:
                return t
        raise KeyError(f"no tensor {name!r} in model {self.name!r}")


@dataclass(frozen=True)
class ShardPiece:
    """A contiguous element range ``[start, stop)`` of one tensor."""

    tensor: str
    start: int
    stop: int
    dtype_size: int = 4

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"invalid piece range [{self.start}, {self.stop})")

    @property
    def elements(self) -> int:
        return self.stop - self.start

    @property
    def nbytes(self) -> int:
        return self.elements * self.dtype_size


@dataclass
class Assignment:
    """Maps each server index to the shard pieces it owns."""

    n_servers: int
    pieces: Dict[int, List[ShardPiece]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError("need at least one server")
        for m in range(self.n_servers):
            self.pieces.setdefault(m, [])

    def add(self, server: int, piece: ShardPiece) -> None:
        if not 0 <= server < self.n_servers:
            raise ValueError(f"server {server} out of range [0, {self.n_servers})")
        self.pieces[server].append(piece)

    def bytes_per_server(self) -> List[int]:
        return [sum(p.nbytes for p in self.pieces[m]) for m in range(self.n_servers)]

    def elements_per_server(self) -> List[int]:
        return [sum(p.elements for p in self.pieces[m]) for m in range(self.n_servers)]

    def imbalance(self) -> float:
        """max/mean byte load; 1.0 is perfectly balanced."""
        loads = self.bytes_per_server()
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def server_of(self, tensor: str, element: int) -> int:
        """Which server owns ``tensor[element]``."""
        for m in range(self.n_servers):
            for p in self.pieces[m]:
                if p.tensor == tensor and p.start <= element < p.stop:
                    return m
        raise KeyError(f"element {element} of tensor {tensor!r} is unassigned")

    def validate_partition(self, model: ModelSpec) -> None:
        """Assert the assignment is an exact, non-overlapping cover of the model."""
        per_tensor: Dict[str, List[Tuple[int, int]]] = {t.name: [] for t in model.tensors}
        for m in range(self.n_servers):
            for p in self.pieces[m]:
                if p.tensor not in per_tensor:
                    raise ValueError(f"piece references unknown tensor {p.tensor!r}")
                per_tensor[p.tensor].append((p.start, p.stop))
        for t in model.tensors:
            ranges = sorted(per_tensor[t.name])
            cursor = 0
            for start, stop in ranges:
                if start != cursor:
                    raise ValueError(
                        f"tensor {t.name!r}: gap/overlap at element {cursor} "
                        f"(next piece starts at {start})"
                    )
                cursor = stop
            if cursor != t.elements:
                raise ValueError(
                    f"tensor {t.name!r}: covered {cursor} of {t.elements} elements"
                )

    def moved_bytes(self, other: "Assignment") -> int:
        """Bytes whose owning server differs between two assignments.

        Computed at piece-boundary granularity: both assignments' boundaries
        are merged per tensor and each fragment compared.
        """
        owners_a = _owner_map(self)
        owners_b = _owner_map(other)
        moved = 0
        tensors = set(owners_a) | set(owners_b)
        for tname in tensors:
            bounds = sorted(
                {b for (s, e, _m) in owners_a.get(tname, []) for b in (s, e)}
                | {b for (s, e, _m) in owners_b.get(tname, []) for b in (s, e)}
            )
            for s, e in zip(bounds[:-1], bounds[1:]):
                ma = _owner_at(owners_a.get(tname, []), s)
                mb = _owner_at(owners_b.get(tname, []), s)
                if ma != mb:
                    moved += (e - s)
        return moved * 4  # fp32


def _owner_map(a: Assignment) -> Dict[str, List[Tuple[int, int, int]]]:
    out: Dict[str, List[Tuple[int, int, int]]] = {}
    for m in range(a.n_servers):
        for p in a.pieces[m]:
            out.setdefault(p.tensor, []).append((p.start, p.stop, m))
    for v in out.values():
        v.sort()
    return out


def _owner_at(ranges: List[Tuple[int, int, int]], element: int) -> int:
    for s, e, m in ranges:
        if s <= element < e:
            return m
    return -1


class Slicer(abc.ABC):
    """Strategy mapping a model's tensors onto M server shards."""

    @abc.abstractmethod
    def slice(self, model: ModelSpec, n_servers: int) -> Assignment:
        """Produce an exact partition of the model over ``n_servers``."""


class DefaultSlicer(Slicer):
    """PS-Lite-style range partition of the raw key space.

    Each tensor is one key (its hash position in a uint key space); the key
    space is split into M equal ranges; a tensor lands wholly on whichever
    range its key falls into.  Because hashing ignores tensor *size*, a
    model dominated by one large tensor puts most bytes on one server —
    this is the imbalance FluentPS's EPS fixes.
    """

    def slice(self, model: ModelSpec, n_servers: int) -> Assignment:
        if n_servers < 1:
            raise ValueError("need at least one server")
        assignment = Assignment(n_servers=n_servers)
        space = 2**32
        for t in model.tensors:
            key = zlib.crc32(t.name.encode("utf-8")) % space
            server = min(int(key * n_servers // space), n_servers - 1)
            assignment.add(server, ShardPiece(t.name, 0, t.elements, t.dtype_size))
        return assignment


class RangeKeySlicer(Slicer):
    """PS-Lite's literal default: equal *range partition of the key space*.

    PS-Lite splits the uint key space into M equal ranges and a tensor
    lands wholly on the range containing its key.  Frameworks number keys
    sequentially from 0, so every key of a normal-sized model falls into
    the **first** range and one server holds (almost) all parameters —
    "the default slicing method incurs load imbalances problem because it
    puts most parameters on one key range of a server" (paper §III-A).
    This is the PS-Lite baseline's slicer in the Figure 6 experiments.

    ``key_space`` defaults to 2^32; pass a small value (e.g. the tensor
    count) to see the balanced best case.
    """

    def __init__(self, key_space: int = 2**32):
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        self.key_space = key_space

    def slice(self, model: ModelSpec, n_servers: int) -> Assignment:
        if n_servers < 1:
            raise ValueError("need at least one server")
        assignment = Assignment(n_servers=n_servers)
        for key, t in enumerate(model.tensors):
            if key >= self.key_space:
                raise ValueError(
                    f"model has more tensors ({len(model.tensors)}) than keys "
                    f"({self.key_space})"
                )
            server = min(int(key * n_servers // self.key_space), n_servers - 1)
            assignment.add(server, ShardPiece(t.name, 0, t.elements, t.dtype_size))
        return assignment


class ElasticSlicer(Slicer):
    """Elastic Parameter Slicing (EPS).

    Remaps original keys to new keys that divide the model parameters
    evenly on all key ranges: every tensor is split into chunks of at most
    ``chunk_elements``, and chunks are placed greedily (longest processing
    time first) onto the least-loaded server.  ``rebalance`` migrates the
    minimum number of chunks when the server count changes — the paper's
    "when the number of servers changes, EPS can also rebalance the
    workloads among the alive servers".
    """

    def __init__(self, chunk_elements: int = 1 << 16):
        if chunk_elements < 1:
            raise ValueError(f"chunk_elements must be >= 1, got {chunk_elements}")
        self.chunk_elements = chunk_elements

    def _chunks(self, model: ModelSpec) -> List[ShardPiece]:
        chunks: List[ShardPiece] = []
        for t in model.tensors:
            start = 0
            while start < t.elements:
                stop = min(start + self.chunk_elements, t.elements)
                chunks.append(ShardPiece(t.name, start, stop, t.dtype_size))
                start = stop
        return chunks

    def slice(self, model: ModelSpec, n_servers: int) -> Assignment:
        if n_servers < 1:
            raise ValueError("need at least one server")
        assignment = Assignment(n_servers=n_servers)
        loads = [0] * n_servers
        # LPT greedy: biggest chunks first onto the least-loaded server.
        # Ties broken by server index for determinism.
        for chunk in sorted(self._chunks(model), key=lambda p: (-p.nbytes, p.tensor, p.start)):
            m = min(range(n_servers), key=lambda i: (loads[i], i))
            assignment.add(m, chunk)
            loads[m] += chunk.nbytes
        return assignment

    def rebalance(self, current: Assignment, n_servers: int) -> Assignment:
        """Adapt an existing assignment to a new server count, moving as
        few bytes as possible: surviving servers keep their chunks, then
        chunks flow from overloaded to underloaded servers until every
        load is within one chunk of the mean."""
        if n_servers < 1:
            raise ValueError("need at least one server")
        out = Assignment(n_servers=n_servers)
        # Chunks on removed servers must move; surviving placements persist.
        homeless: List[ShardPiece] = []
        for m in range(current.n_servers):
            for p in current.pieces[m]:
                if m < n_servers:
                    out.add(m, p)
                else:
                    homeless.append(p)
        loads = out.bytes_per_server()
        for chunk in sorted(homeless, key=lambda p: (-p.nbytes, p.tensor, p.start)):
            m = min(range(n_servers), key=lambda i: (loads[i], i))
            out.add(m, chunk)
            loads[m] += chunk.nbytes
        # Drain overloaded servers down toward the mean.
        total = sum(loads)
        mean = total / n_servers
        moved = True
        while moved:
            moved = False
            donor = max(range(n_servers), key=lambda i: loads[i])
            receiver = min(range(n_servers), key=lambda i: loads[i])
            if donor == receiver or not out.pieces[donor]:
                break
            # Smallest chunk on the donor that still helps.
            candidates = sorted(out.pieces[donor], key=lambda p: p.nbytes)
            for chunk in candidates:
                if loads[donor] - mean > chunk.nbytes / 2 and mean - loads[receiver] > chunk.nbytes / 2:
                    out.pieces[donor].remove(chunk)
                    out.add(receiver, chunk)
                    loads[donor] -= chunk.nbytes
                    loads[receiver] += chunk.nbytes
                    moved = True
                    break
        return out
