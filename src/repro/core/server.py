"""The FluentPS shard server: Algorithm 1 with lazy/soft DPR execution.

Each :class:`ShardServer` owns one parameter shard and controls its own
synchronization — there is no central scheduler in the synchronization
path (the paper's first contribution).  The server is execution-agnostic:
it is driven by ``handle_push``/``handle_pull`` calls and answers pulls
through per-request ``respond`` callbacks, so the same code runs under the
discrete-event co-simulation, the real-thread runner, and direct unit
tests.

Progress conventions (see also :mod:`repro.core.conditions`):

- a worker that completed iteration ``i`` pushes ``g_i`` with
  ``progress = i`` and then pulls ``w_{i+1}`` with ``progress = i``;
- ``v_train`` is Algorithm 1's counter: the number of fully-completed
  iterations (every worker has pushed every iteration ``< v_train``);
- a pull is *delayed* (becomes a DPR) when the pull condition fails; DPRs
  are buffered keyed by the ``v_train`` value whose advance releases them:

  * **lazy execution** — key = ``progress``: the DPR is answered only once
    the slowest worker has caught up to the requester, so the returned
    parameters contain *all* gradients through ``progress`` (0 missing
    iterations, Figure 3b);
  * **soft barrier** — key = current ``v_train``: the DPR is re-examined
    at the very next frontier advance; if the pull condition still fails
    it is re-buffered, *counting as a new DPR* (the barrier re-forming).
    This is why Table IV reports soft-barrier DPR counts far above the
    number of pulls (up to 131× the lazy counts), and it answers the pull
    as soon as the condition holds — returning parameters that may still
    miss up to ``s`` iterations of slow workers' gradients (Figure 3a).
"""

from __future__ import annotations

import enum
import itertools
import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.conditions import PullCondition, PushCondition, SyncView
from repro.core.metrics import SyncMetrics
from repro.core.models import SyncModel
from repro.core.pssp import gradient_significance
from repro.obs import NULL_OBS, Observability, exponential_buckets


class ProtocolError(RuntimeError):
    """A worker violated the sPush/sPull protocol (e.g. out-of-order push)."""


#: Distinguishes server incarnations in one process: ``resize`` builds new
#: servers that reuse shard ids, so protocol event streams are keyed by a
#: unique ``uid`` rather than by shard id.
_SERVER_UIDS = itertools.count()


def pull_condition_kind(con: PullCondition) -> str:
    """Classify a pull condition for the protocol event stream.

    The sanitizer (:mod:`repro.analysis`) keys its staleness-bound checks
    on this: ``ssp`` enforces a hard bound, ``pssp`` exempts coin-passed
    answers, ``dsps`` uses the per-event threshold, ``custom`` skips
    bound checks entirely.  Conditions self-classify via their ``kind``
    attribute (:class:`~repro.core.conditions.PullCondition`).
    """
    return getattr(con, "kind", "custom")


def push_condition_quorum(con: PushCondition, n_workers: int) -> Optional[int]:
    """How many frontier-iteration pushes a frontier advance needs, or
    ``None`` when the push condition is custom (no mechanical bound)."""
    quorum = getattr(con, "quorum", None)
    return quorum(n_workers) if callable(quorum) else None


def pull_condition_pssp_c(con: PullCondition) -> Optional[float]:
    """The constant PSSP pause probability c, when the pull condition is a
    PSSP one driven by a constant-probability model; ``None`` otherwise.
    Carried in ``server_config`` so trace consumers can derive the
    effective bound s' = s + 1/c − 1 (paper §III-E1)."""
    prob = getattr(con, "prob", None)
    constant_c = getattr(prob, "constant_c", None)
    return constant_c() if callable(constant_c) else None


def _staleness_arg(s: float) -> Optional[float]:
    """JSON-safe staleness: ``None`` encodes ASP's unbounded threshold."""
    return None if math.isinf(s) else float(s)


class ExecutionMode(enum.Enum):
    """How delayed pull requests are executed (paper §III-C)."""

    LAZY = "lazy"
    SOFT_BARRIER = "soft"


@dataclass(slots=True)
class PullReply:
    """What a worker receives in answer to an sPull."""

    worker: int
    progress: int
    version: int  # server-side update counter at response time
    v_train: int  # frontier at response time
    missing: int  # slow-worker gradient iterations absent from params
    waited: float  # sim-seconds the request spent buffered (0 if immediate)
    params: Optional[np.ndarray] = None  # shard snapshot (co-simulation)


@dataclass(slots=True)
class _BufferedPull:
    worker: int
    progress: int
    respond: Callable[[PullReply], None]
    enqueue_time: float
    blocked_probabilistically: bool = False


@dataclass(slots=True)
class ApplyInfo:
    """Context handed to a server-side apply function."""

    worker: int
    progress: int
    v_train: int
    n_workers: int


def default_apply(params: np.ndarray, contribution: np.ndarray, info: ApplyInfo) -> None:
    """Algorithm 1 line 15: ``w ← w + g / N`` (in place)."""
    params += contribution / info.n_workers


class ShardServer:
    """One parameter server node managing one shard (Algorithm 1)."""

    def __init__(
        self,
        shard_id: int,
        n_workers: int,
        model: SyncModel,
        execution: ExecutionMode = ExecutionMode.LAZY,
        params: Optional[np.ndarray] = None,
        apply_fn: Callable[[np.ndarray, np.ndarray, ApplyInfo], None] = default_apply,
        clock: Optional[Callable[[], float]] = None,
        rng: Optional[np.random.Generator] = None,
        snapshot_params: bool = True,
        metrics: Optional[SyncMetrics] = None,
        obs: Optional[Observability] = None,
        batch_apply: Optional[bool] = None,
    ):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.shard_id = shard_id
        self.n_workers = n_workers
        self.model = model
        self.execution = execution
        self._params = params
        self.apply_fn = apply_fn
        self.clock = clock or (lambda: 0.0)
        self.rng = rng or np.random.default_rng(0)
        self.snapshot_params = snapshot_params
        self.metrics = metrics or SyncMetrics()
        # Observability: bound (label-resolved) handles, and every
        # emission — including bound-handle updates — gated on one cached
        # bool, so the disabled hot path pays a single attribute load and
        # branch per event.  ``enabled`` is a class constant on the
        # bundle, so caching it at construction is safe.
        self.obs = obs or NULL_OBS
        self._obs_on = self.obs.enabled
        reg = self.obs.registry
        self.actor = f"server{shard_id}"
        self._c_pushes = reg.counter("ps_pushes_total", "gradient pushes applied").labels(
            shard=shard_id
        )
        self._c_pulls = reg.counter("ps_pulls_total", "sPull requests handled").labels(
            shard=shard_id
        )
        self._c_dprs = reg.counter(
            "ps_dprs_total", "pulls buffered as delayed pull requests"
        ).labels(shard=shard_id)
        self._c_advances = reg.counter(
            "ps_frontier_advances_total", "V_train increments"
        ).labels(shard=shard_id)
        self._g_frontier = reg.gauge("ps_frontier", "V_train frontier per shard").labels(
            shard=shard_id
        )
        self._h_wait = reg.histogram(
            "ps_dpr_wait_seconds", "time answered pulls spent buffered"
        ).labels(shard=shard_id)
        self._h_staleness = reg.histogram(
            "ps_staleness_iters",
            "missing iterations in answered pulls",
            buckets=exponential_buckets(1.0, 2.0, 10),
        ).labels(shard=shard_id)
        self._q_wait = reg.sketch(
            "ps_dpr_wait_quantiles",
            "DPR buffer wait seconds (mergeable quantile sketch)",
        ).labels(shard=shard_id)

        # Per-server condition instances: each server independently adjusts
        # its synchronization scheme (mutable state like DSPS's threshold
        # or PSSP's coin counters lives here, not in the shared model).
        self.pull_con: PullCondition = model.make_pull()
        self.push_con: PushCondition = model.make_push()

        self.v_train = 0
        self.version = 0
        # Copy-on-write snapshot cache: the first pull answered at a given
        # ``version`` materializes one immutable copy; every later reply at
        # the same version shares it.  ``handle_push``/``handle_restore``
        # invalidate.  ``_snap_id`` tags each materialized copy so the
        # sanitizer can check the version<->storage bijection (S016).
        self._snap_cache: Optional[np.ndarray] = None
        self._snap_version = -1
        self._snap_id = 0
        self.snapshot_copies = 0  # params.copy() calls actually made
        self.snapshot_copies_avoided = 0  # replies served from the cache
        self.count: Dict[int, int] = defaultdict(int)
        self.callbacks: Dict[int, List[_BufferedPull]] = defaultdict(list)
        self.worker_progress: List[int] = [-1] * n_workers  # last pushed iteration
        self.last_pull_progress: List[int] = [-1] * n_workers  # last accepted pull
        self._last_significance = 0.0
        # Incremental fastest/slowest over ``worker_progress``: at 10k
        # workers the per-view ``max(wp)``/``min(wp)`` scans dominate the
        # macro run.  ``_fastest`` is a monotone max; ``_slowest`` tracks
        # the min with a membership count, rescanning only when the last
        # worker leaves the minimum (amortized O(1) per push).
        self._fastest = -1
        self._slowest = -1
        self._n_at_slowest = n_workers
        # Batched gradient application: same-version pushes accumulate here
        # and are reduced in one vectorized pass at the next observation
        # point (snapshot/params/significance read, restore, ineligible
        # push).  Deferral is bit-identical to per-push ``default_apply``
        # (row-wise in-order adds of ``g / N``) and is only enabled when no
        # installed condition can observe per-push significance — see
        # ``_batch_eligible``.
        self._batch_apply_opt = batch_apply
        self._pending_grads: List[np.ndarray] = []
        self.batched_applies = 0  # pushes whose apply was deferred
        self.apply_flushes = 0  # vectorized reductions performed
        self._batch_on = self._batch_eligible()
        #: Worker whose push is currently being applied; DPR releases
        #: happen inside ``handle_push`` -> ``_try_advance``, so this names
        #: the straggler that each released pull was waiting on (-1 when
        #: idle or the release came from ``handle_pull`` itself).
        self._releasing_worker = -1
        # Protocol event stream (repro.analysis): unique incarnation id and
        # a lazily-emitted config event so the sanitizer can replay runs.
        self.uid = next(_SERVER_UIDS)
        self._config_log: Optional[object] = None
        # One mutable SyncView reused for every condition evaluation:
        # views are consumed synchronously inside handle_push/handle_pull
        # and never retained (the class contract is "read-only state a
        # condition may inspect"), so rebuilding a fresh instance per
        # request — two per pull at incast rates — is pure allocator churn.
        self._coin_con: Optional[object] = None  # _eval_pull probe cache
        self._coin_on = False
        self._view_scratch = SyncView(
            progress=0,
            worker=-1,
            v_train=0,
            n_workers=n_workers,
            count=self.count,
            fastest=-1,
            slowest=-1,
            significance=0.0,
            rng=self.rng,
        )

    # -- views ------------------------------------------------------------

    def _view(self, progress: int, worker: int) -> SyncView:
        v = self._view_scratch
        v.progress = progress
        v.worker = worker
        v.v_train = self.v_train
        v.fastest = self._fastest
        v.slowest = self._slowest
        v.significance = self._last_significance
        v.rng = self.rng
        return v

    @property
    def params(self) -> Optional[np.ndarray]:
        """The live shard array, with any deferred applies flushed first."""
        self._flush_applies()
        return self._params

    @params.setter
    def params(self, value: Optional[np.ndarray]) -> None:
        self._flush_applies()
        self._params = value

    @property
    def last_significance(self) -> float:
        """Significance of the latest applied gradient (PSSP dynamic-c
        input), with any deferred applies flushed first."""
        self._flush_applies()
        return self._last_significance

    @last_significance.setter
    def last_significance(self, value: float) -> None:
        self._flush_applies()
        self._last_significance = value

    @property
    def buffered_pulls(self) -> int:
        return sum(len(v) for v in self.callbacks.values())

    # -- batched gradient application ---------------------------------------

    def _batch_eligible(self) -> bool:
        """Whether same-version pushes may defer their apply.

        Deferral changes *when* ``params`` and ``last_significance`` are
        materialized, never their values, so it is allowed only when no
        installed condition can observe the intermediate states: the apply
        must be the stock ``w += g/N`` rule, the push condition must be a
        structural quorum (``quorum() is not None``), and the pull
        condition must not consume per-push significance — SSP/DSPS never
        do; PSSP only with a constant-c probability model.  Constructing
        with ``batch_apply=True`` overrides the condition checks (caller
        asserts their custom conditions ignore significance);
        ``batch_apply=False`` disables deferral outright.
        """
        if self._batch_apply_opt is False:
            return False
        if self.apply_fn is not default_apply:
            return False
        if self._batch_apply_opt is True:
            return True
        if push_condition_quorum(self.push_con, self.n_workers) is None:
            return False
        kind = pull_condition_kind(self.pull_con)
        if kind in ("ssp", "dsps"):
            return True
        return kind == "pssp" and pull_condition_pssp_c(self.pull_con) is not None

    def _flush_applies(self) -> None:
        """Apply all deferred gradients in push order, one reduction.

        Bit-identical to the eager path: each row of the stacked batch is
        divided by N and added to ``params`` in arrival order (IEEE-754
        elementwise ops are independent per element, so ``stack /= N``
        equals per-grad ``g / N``), and the final significance is computed
        from the last gradient against the fully-applied params — exactly
        the value the last eager push would have left behind.
        """
        pending = self._pending_grads
        if not pending:
            return
        self._pending_grads = []
        params = self._params
        if len(pending) == 1:
            params += pending[0] / self.n_workers
        else:
            stack = np.stack(pending)
            stack /= self.n_workers
            for row in stack:
                params += row
        self.apply_flushes += 1
        self._last_significance = gradient_significance(
            float(np.linalg.norm(pending[-1])), float(np.linalg.norm(params))
        )

    # -- protocol event stream (consumed by repro.analysis) -----------------

    def _emit_config(self) -> None:
        """Emit a ``server_config`` instant before this incarnation's first
        protocol event in each capture (lazily: servers may be built before
        a run capture begins, and one server may span several captures —
        e.g. two driver runs — so the config re-leads every stream).  The
        event carries a snapshot of the protocol state so the sanitizer can
        bootstrap its replay for streams that start mid-life."""
        if not self._obs_on:
            return
        log = self.obs.instants
        if log is self._config_log:
            return
        self._config_log = log
        log.record(
            "server_config", self.clock(), actor=self.actor,
            uid=self.uid, shard=self.shard_id, n_workers=self.n_workers,
            model=self.model.name, execution=self.execution.value,
            pull_kind=pull_condition_kind(self.pull_con),
            s=_staleness_arg(self.pull_con.staleness()),
            quorum=push_condition_quorum(self.push_con, self.n_workers),
            pssp_c=pull_condition_pssp_c(self.pull_con),
            v_train=self.v_train,
            worker_progress=list(self.worker_progress),
            count={str(k): int(v) for k, v in self.count.items()},
        )

    def install_conditions(
        self,
        pull: Optional[PullCondition] = None,
        push: Optional[PushCondition] = None,
    ) -> None:
        """Install new pull/push conditions (the SetcondPull/SetcondPush
        backends); re-arms the config event so the sanitizer sees the new
        protocol parameters from the next handled request on."""
        self._flush_applies()
        if pull is not None:
            self.pull_con = pull
        if push is not None:
            self.push_con = push
        self._batch_on = self._batch_eligible()
        self._config_log = None

    # -- Algorithm 1: PushHandler ------------------------------------------

    def handle_push(
        self,
        worker: int,
        progress: int,
        grad: Optional[np.ndarray] = None,
        significance: Optional[float] = None,
    ) -> None:
        """Apply a gradient push and advance the frontier if possible."""
        self._check_worker(worker)
        expected = self.worker_progress[worker] + 1
        if progress != expected:
            raise ProtocolError(
                f"worker {worker} pushed iteration {progress}, expected {expected} "
                f"(pushes must be sequential)"
            )
        if self._obs_on:
            # Config (with its state snapshot) must precede the push's own
            # mutations so a replay bootstrapped from it sees this push as
            # new work.
            self._emit_config()
            self.obs.instants.record(
                "push", self.clock(), actor=self.actor,
                uid=self.uid, shard=self.shard_id, worker=worker,
                progress=progress, v_train=self.v_train,
            )
        self.worker_progress[worker] = progress
        if progress > self._fastest:
            self._fastest = progress
        if progress - 1 == self._slowest:  # this worker was at the minimum
            self._n_at_slowest -= 1
            if self._n_at_slowest == 0:
                wp = self.worker_progress
                self._slowest = min(wp)
                self._n_at_slowest = wp.count(self._slowest)

        if grad is not None and self._params is not None:
            if grad.shape != self._params.shape:
                raise ProtocolError(
                    f"gradient shape {grad.shape} != shard shape {self._params.shape}"
                )
            if self._batch_on and significance is None and self.apply_fn is default_apply:
                self._pending_grads.append(grad)
                self.batched_applies += 1
            else:
                self._flush_applies()
                info = ApplyInfo(worker, progress, self.v_train, self.n_workers)
                self.apply_fn(self._params, grad, info)
                if significance is None:
                    significance = gradient_significance(
                        float(np.linalg.norm(grad)), float(np.linalg.norm(self._params))
                    )
        if significance is not None:
            self._flush_applies()
            self._last_significance = float(significance)
        self.version += 1
        self._snap_cache = None  # COW invalidation: state changed
        self.count[progress] += 1
        self.metrics.record_push()
        if self._obs_on:
            self._c_pushes.inc()
        self._releasing_worker = worker
        try:
            self._try_advance()
        finally:
            self._releasing_worker = -1

    def _try_advance(self) -> None:
        """Advance the frontier while the push condition holds, flushing
        the DPRs buffered at each passed frontier value.

        Lazy execution buffers a DPR at key ``progress``, so its flush
        coincides with the slowest worker catching up — respond outright.
        The soft barrier buffers at the blocking-time ``v_train``; each
        advance re-evaluates the pull condition and re-buffers (a fresh
        DPR) if the barrier re-forms.
        """
        while True:
            view = self._view(progress=self.v_train, worker=-1)
            if not self.push_con(view):
                break
            flushed_key = self.v_train
            self.v_train += 1
            self.metrics.record_frontier_advance()
            if self._obs_on:
                self._c_advances.inc()
                self._g_frontier.set(self.v_train)
                self.obs.instants.record(
                    "frontier_advance", self.clock(), actor=self.actor,
                    uid=self.uid, v_train=self.v_train, shard=self.shard_id,
                )
            for req in self.callbacks.pop(flushed_key, []):
                if self.execution is ExecutionMode.LAZY:
                    self._respond(req, released=True)
                    continue
                s_now = self.pull_con.staleness() if self._obs_on else None
                recheck = self._view(progress=req.progress, worker=req.worker)
                ok, flipped = self._eval_pull(recheck)
                if ok:
                    self._respond(req, released=True, s_at_eval=s_now, coin=flipped)
                else:
                    req.blocked_probabilistically = flipped
                    self.callbacks[self.v_train].append(req)
                    self.metrics.record_pull(immediate=False, iteration=req.progress)
                    if self._obs_on:
                        self._c_dprs.inc()
                        self._c_pulls.inc()
                        self.obs.instants.record(
                            "dpr_rebuffered", self.clock(), actor=self.actor,
                            uid=self.uid, worker=req.worker, progress=req.progress,
                            key=self.v_train, shard=self.shard_id,
                            v_train=self.v_train, s=_staleness_arg(s_now),
                        )

    # -- Algorithm 1: PullHandler --------------------------------------------

    def handle_pull(
        self,
        worker: int,
        progress: int,
        respond: Callable[[PullReply], None],
    ) -> bool:
        """Answer a pull now, or buffer it as a DPR.  Returns True when the
        response was immediate."""
        self._check_worker(worker)
        if progress > self.worker_progress[worker]:
            raise ProtocolError(
                f"worker {worker} pulled with progress {progress} before its "
                f"push for that iteration arrived (last push: "
                f"{self.worker_progress[worker]})"
            )
        if progress < self.last_pull_progress[worker]:
            raise ProtocolError(
                f"worker {worker} pulled with progress {progress} after already "
                f"pulling progress {self.last_pull_progress[worker]} "
                f"(pulls must not regress)"
            )
        self.last_pull_progress[worker] = progress
        if self._obs_on:
            self._emit_config()
            self.obs.instants.record(
                "pull_request", self.clock(), actor=self.actor,
                uid=self.uid, shard=self.shard_id, worker=worker,
                progress=progress, v_train=self.v_train,
            )
        # The threshold is read *before* evaluation (DSPS adjusts it as an
        # evaluation side effect) but only observability consumes it.
        s_now = self.pull_con.staleness() if self._obs_on else None
        view = self._view(progress=progress, worker=worker)
        ok, flipped = self._eval_pull(view)
        if ok:
            self.metrics.record_pull(immediate=True, iteration=progress)
            if self._obs_on:
                self._c_pulls.inc()
            self._respond(
                _BufferedPull(worker, progress, respond, enqueue_time=self.clock()),
                s_at_eval=s_now,
                coin=flipped,
            )
            return True
        # Delayed pull request: buffer keyed by the v_train value whose
        # advance will release it (Algorithm 1 lines 7-11).
        key = self._buffer_key(progress)
        self.callbacks[key].append(
            _BufferedPull(
                worker,
                progress,
                respond,
                enqueue_time=self.clock(),
                blocked_probabilistically=flipped,
            )
        )
        self.metrics.record_pull(immediate=False, iteration=progress)
        if self._obs_on:
            self._c_pulls.inc()
            self._c_dprs.inc()
            self.obs.instants.record(
                "dpr_buffered", self.clock(), actor=self.actor,
                uid=self.uid, worker=worker, progress=progress, key=key,
                shard=self.shard_id, v_train=self.v_train,
                s=_staleness_arg(s_now),
            )
        return False

    def _eval_pull(self, view: SyncView) -> Tuple[bool, bool]:
        """Evaluate the pull condition, accounting PSSP coin decisions.

        Returns ``(ok, flipped)``: whether the pull may be answered, and
        whether an over-threshold probabilistic coin flip decided it — the
        sanitizer exempts coin-passed answers from the hard staleness
        bound, and a coin-paused pull marks its DPR as probabilistic.
        """
        con = self.pull_con
        # Cache the has-coin probe per condition object: getattr with a
        # default walks the exception path for every coinless pull.
        if con is not self._coin_con:
            self._coin_con = con
            self._coin_on = hasattr(con, "coin_flips")
        if self._coin_on:
            flips_before = con.coin_flips
            ok = con(view)
            flipped = con.coin_flips > flips_before
        else:
            ok = con(view)
            flipped = False
        if flipped:
            self.metrics.record_probabilistic(passed=ok)
            if self._obs_on:
                self.obs.instants.record(
                    "pssp_pass" if ok else "pssp_pause", self.clock(),
                    actor=self.actor, uid=self.uid, worker=view.worker,
                    progress=view.progress, v_train=view.v_train,
                )
        return ok, flipped

    def _buffer_key(self, progress: int) -> int:
        if self.execution is ExecutionMode.LAZY:
            # Flushed exactly when the slowest worker catches up to this
            # worker's progress — the returned parameters miss nothing.
            return progress
        # Soft barrier: re-examined at the very next frontier advance.
        return self.v_train

    def _respond(
        self,
        req: _BufferedPull,
        released: bool = False,
        s_at_eval: Optional[float] = None,
        coin: bool = False,
    ) -> None:
        """Answer ``req`` now.  ``s_at_eval`` is the staleness threshold the
        granting pull-condition evaluation used (DSPS adjusts it as a side
        effect of evaluating, so reading it afterwards could be off by one);
        ``coin`` marks answers granted by a PSSP over-threshold coin pass."""
        waited = self.clock() - req.enqueue_time
        missing = max(0, req.progress + 1 - self.v_train)
        params = self._snapshot()
        reply = PullReply(
            worker=req.worker,
            progress=req.progress,
            version=self.version,
            v_train=self.v_train,
            missing=missing,
            waited=waited,
            params=params,
        )
        self.metrics.record_response(missing=missing, waited=waited)
        if self._obs_on:
            self._h_wait.observe(waited)
            self._q_wait.observe(waited)
            self._h_staleness.observe(missing)
            if s_at_eval is None:
                s_at_eval = self.pull_con.staleness()
            if released:
                self.obs.instants.record(
                    "dpr_released", self.clock(), actor=self.actor,
                    uid=self.uid, worker=req.worker, progress=req.progress,
                    waited=waited, missing=missing, shard=self.shard_id,
                    released_by=self._releasing_worker,
                )
            self.obs.instants.record(
                "pull_answer", self.clock(), actor=self.actor,
                uid=self.uid, shard=self.shard_id, worker=req.worker,
                progress=req.progress, v_train=self.v_train, missing=missing,
                released=released, coin=coin,
                kind=pull_condition_kind(self.pull_con),
                s=_staleness_arg(s_at_eval), waited=waited,
                version=self.version,
                # Storage tag of the shared COW copy this reply carries
                # (None when there is nothing to share) — lets the
                # sanitizer assert same-version replies share storage and
                # post-push replies do not (S016).
                snap=self._snap_id if params is not None and self.snapshot_params else None,
            )
        req.respond(reply)

    def _snapshot(self) -> Optional[np.ndarray]:
        """Parameters for a pull reply: one immutable copy per version.

        The first reply at a given ``version`` copies ``self.params`` once
        and marks the copy read-only; later same-version replies share that
        storage (128 workers pulling one version cost 1 copy, not 128).
        Pushes keep mutating ``self.params`` freely — the reply copy is
        detached — and ``handle_push``/``handle_restore`` drop the cache.
        With ``snapshot_params=False`` the live array is returned as
        before (trusted callers, zero copies).
        """
        self._flush_applies()
        if self._params is None:
            return None
        if not self.snapshot_params:
            return self._params
        snap = self._snap_cache
        if snap is None or self._snap_version != self.version:
            snap = self._params.copy()
            snap.flags.writeable = False
            self._snap_cache = snap
            self._snap_version = self.version
            self._snap_id += 1
            self.snapshot_copies += 1
        else:
            self.snapshot_copies_avoided += 1
        return snap

    # -- Closed-form quiet-round commit (round collapse fast path) ----------

    def handle_quiet_round(self, progress: int, early_pulls: int) -> None:
        """Commit one analytically fast-forwarded protocol round.

        Equivalent, state-for-state, to every worker pushing ``progress``
        and then pulling ``progress`` in some serve order where all pulls
        are immediate and the frontier advances exactly once — the *quiet
        round* the runner's collapse analytics certify before calling
        this.  ``early_pulls`` is how many pulls that order served before
        this shard's N-th push (those see one missing iteration, the rest
        zero).  Only legal for timing-only shards (no parameters, no
        gradients) with no buffered DPRs and observability disabled; the
        obs-on replay goes through the real ``handle_push``/``handle_pull``
        instead so the instant stream stays byte-identical.
        """
        if self._params is not None or self.callbacks or self._obs_on:
            raise ProtocolError("quiet-round commit requires a timing-only, "
                                "DPR-free, unobserved shard")
        n = self.n_workers
        for w in range(n):
            if self.worker_progress[w] != progress - 1:
                raise ProtocolError(
                    f"worker {w} at {self.worker_progress[w]} cannot batch-push "
                    f"{progress} (pushes must be sequential)"
                )
        self.worker_progress[:] = [progress] * n
        self.last_pull_progress[:] = [progress] * n
        self._fastest = progress
        self._slowest = progress
        self._n_at_slowest = n
        self.version += n
        self._snap_cache = None
        self.count[progress] += n
        self.v_train = progress + 1
        # The event path probes the pull condition for a coin attribute on
        # its first evaluation; keep that one-off cache warm so a later
        # de-vectorized round behaves identically.
        con = self.pull_con
        if con is not self._coin_con:
            self._coin_con = con
            self._coin_on = hasattr(con, "coin_flips")
        self.metrics.record_quiet_round(n, early_pulls)

    # -- Checkpoint restore (the only non-push/pull state transition) -------

    def handle_restore(
        self,
        shard_state: Dict[str, object],
        params: Optional[np.ndarray] = None,
    ) -> None:
        """Restore this shard's synchronization state from a checkpoint.

        Like the push/pull handlers this is a protocol operation: all
        mutable server state changes flow through ``handle_*`` methods (the
        ``repro.analysis`` lint enforces this), and the restore is recorded
        in the protocol event stream so the sanitizer can re-seed its
        replay state instead of flagging the frontier jump.
        """
        if self.buffered_pulls:
            raise ProtocolError(
                f"shard {self.shard_id}: restore with {self.buffered_pulls} "
                "buffered DPRs (restore requires quiescence)"
            )
        self._flush_applies()
        worker_progress = [int(p) for p in shard_state["worker_progress"]]
        if len(worker_progress) != self.n_workers:
            raise ProtocolError(
                f"checkpoint has {len(worker_progress)} workers, "
                f"server has {self.n_workers}"
            )
        if params is not None and self._params is not None:
            self._params[...] = params
        self.v_train = int(shard_state["v_train"])
        self.version = int(shard_state["version"])
        # COW invalidation: a restore can reinstate the *same* version
        # number with different parameter values, so a version-equality
        # check alone would serve a stale snapshot — drop the cache.
        self._snap_cache = None
        self._snap_version = -1
        self.count.clear()
        self.count.update(
            {int(k): int(v) for k, v in dict(shard_state["count"]).items()}
        )
        self.worker_progress = worker_progress
        self._fastest = max(worker_progress)
        self._slowest = min(worker_progress)
        self._n_at_slowest = worker_progress.count(self._slowest)
        self.last_pull_progress = [-1] * self.n_workers
        self.last_significance = float(shard_state["last_significance"])
        self.callbacks.clear()
        if self._obs_on:
            self._emit_config()
            self.obs.instants.record(
                "server_restore", self.clock(), actor=self.actor,
                uid=self.uid, shard=self.shard_id, v_train=self.v_train,
                worker_progress=list(self.worker_progress),
                count={str(k): v for k, v in self.count.items()},
            )

    def _check_worker(self, worker: int) -> None:
        if not 0 <= worker < self.n_workers:
            raise ProtocolError(f"worker id {worker} out of range [0, {self.n_workers})")

    # -- introspection -----------------------------------------------------

    def describe(self) -> str:
        return (
            f"shard {self.shard_id}: model={self.model.name} "
            f"execution={self.execution.value} v_train={self.v_train} "
            f"buffered={self.buffered_pulls}"
        )


def flush_applies_across(servers: List["ShardServer"]) -> None:
    """Flush deferred batched applies for a fleet of shard servers, with
    one vectorized numpy pass *across shards* per pending row.

    Per-shard flushes (:meth:`ShardServer._flush_applies`) pay one numpy
    dispatch per gradient row per shard.  When several shards hold the
    same number of pending rows at the same length (the common case under
    an even slicer), this stacks them into an ``(m, k, L)`` batch, scales
    once, and adds row ``i`` of every shard in one ``(m, L)`` operation —
    per-shard, per-element addition order is unchanged, so the results
    are bit-identical to calling ``_flush_applies`` on each server.
    Shards that don't fit a group (odd shapes, single pending row, lone
    member) fall back to their own flush.
    """
    groups: Dict[Tuple[int, int, int], List["ShardServer"]] = {}
    for s in servers:
        pending = s._pending_grads
        if not pending:
            continue
        if s._params is None or len(pending) == 1:
            s._flush_applies()
            continue
        key = (len(pending), s._params.shape[0], s.n_workers)
        groups.setdefault(key, []).append(s)
    for (k, _length, n), grp in groups.items():
        if len(grp) == 1:
            grp[0]._flush_applies()
            continue
        rows = np.stack([s._pending_grads for s in grp])  # (m, k, L)
        rows /= n  # elementwise: equals each shard's own ``stack /= N``
        stacked = np.stack([s._params for s in grp])  # (m, L)
        for i in range(k):
            stacked += rows[:, i, :]
        for j, s in enumerate(grp):
            pending = s._pending_grads
            s._pending_grads = []
            params = s._params
            params[...] = stacked[j]
            s.apply_flushes += 1
            s._last_significance = gradient_significance(
                float(np.linalg.norm(pending[-1])), float(np.linalg.norm(params))
            )
