"""Synchronization model registry (the FluentPS row of Table I).

A :class:`SyncModel` bundles factories for the pull/push conditions so
that *each server instantiates its own condition state* — the paper's key
structural point: synchronization control lives on every server, not in a
central scheduler, and different servers may run different models for
their parameter shards (Figure 2: server 1 runs SSP, server 2 PSSP,
server M drop-stragglers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.conditions import (
    AllPushedPush,
    ASPPull,
    BSPPull,
    DSPSPull,
    PSSPPull,
    PullCondition,
    PushCondition,
    QuorumPush,
    SSPPull,
)
from repro.core.pssp import AlphaLike, ConstantProbability, DynamicProbability


@dataclass(frozen=True)
class SyncModel:
    """A named synchronization model: per-server condition factories."""

    name: str
    make_pull: Callable[[], PullCondition]
    make_push: Callable[[], PushCondition]
    staleness: float = 0.0
    params: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        return f"{self.name}: pull=[{self.make_pull().describe()}] push=[{self.make_push().describe()}]"


def bsp() -> SyncModel:
    """Bulk Synchronous Parallel: full barrier every iteration."""
    return SyncModel("bsp", BSPPull, AllPushedPush, staleness=0)


def asp() -> SyncModel:
    """Asynchronous Parallel: no barrier at all."""
    return SyncModel("asp", ASPPull, AllPushedPush, staleness=math.inf)


def ssp(s: int) -> SyncModel:
    """Stale Synchronous Parallel with staleness threshold ``s``."""
    if s < 0:
        raise ValueError(f"staleness threshold must be >= 0, got {s}")
    return SyncModel(f"ssp(s={s})", lambda: SSPPull(s), AllPushedPush,
                     staleness=s, params={"s": s})


def dsps(
    s0: int = 3,
    s_min: int = 1,
    s_max: int = 16,
    window: int = 64,
    hi_rate: float = 0.25,
    lo_rate: float = 0.05,
) -> SyncModel:
    """Dynamic Synchronous Parallel Strategy: runtime-adjusted staleness."""
    return SyncModel(
        f"dsps(s0={s0})",
        lambda: DSPSPull(s0=s0, s_min=s_min, s_max=s_max, window=window,
                         hi_rate=hi_rate, lo_rate=lo_rate),
        AllPushedPush,
        staleness=s0,
        params={"s0": s0, "s_min": s_min, "s_max": s_max},
    )


def drop_stragglers(n_workers: int, n_t: Optional[int] = None, fraction: float = 0.75) -> SyncModel:
    """Drop stragglers: the frontier advances once ``n_t`` of ``n_workers``
    have pushed; everyone else's late gradients still get applied."""
    if n_t is None:
        n_t = max(1, int(round(fraction * n_workers)))
    if not 1 <= n_t <= n_workers:
        raise ValueError(f"need 1 <= n_t <= n_workers, got n_t={n_t}, N={n_workers}")
    return SyncModel(
        f"drop_stragglers(n_t={n_t})",
        BSPPull,
        lambda: QuorumPush(n_t),
        staleness=0,
        params={"n_t": n_t, "n_workers": n_workers},
    )


def pssp(s: int, c: float) -> SyncModel:
    """Constant PSSP: pause over-threshold workers with probability ``c``.

    c=1 reduces to SSP(s); c=0 reduces to ASP.
    """
    if s < 0:
        raise ValueError(f"staleness threshold must be >= 0, got {s}")
    prob = ConstantProbability(c)
    return SyncModel(
        f"pssp(s={s},c={c})",
        lambda: PSSPPull(s, prob),
        AllPushedPush,
        staleness=s,
        params={"s": s, "c": c},
    )


def dynamic_pssp(s: int, alpha: AlphaLike = 1.0) -> SyncModel:
    """Dynamic PSSP: P(s, k) = α/(1 + e^(s−k)); α constant or a
    significance-driven function (see :func:`repro.core.pssp.significance_alpha`)."""
    if s < 0:
        raise ValueError(f"staleness threshold must be >= 0, got {s}")
    alpha_desc = "fn" if callable(alpha) else alpha
    return SyncModel(
        f"dynamic_pssp(s={s},alpha={alpha_desc})",
        lambda: PSSPPull(s, DynamicProbability(alpha)),
        AllPushedPush,
        staleness=s,
        params={"s": s, "alpha": alpha_desc},
    )


#: Every model FluentPS supports out of the box (Table I, FluentPS row).
SUPPORTED_MODELS = ("bsp", "asp", "ssp", "dsps", "drop_stragglers", "pssp", "dynamic_pssp")


def make_model(kind: str, n_workers: Optional[int] = None, **kwargs) -> SyncModel:
    """Factory keyed by model name — used by benches and examples."""
    kind = kind.lower().replace("-", "_")
    if kind == "bsp":
        return bsp()
    if kind == "asp":
        return asp()
    if kind == "ssp":
        return ssp(**kwargs)
    if kind == "dsps":
        return dsps(**kwargs)
    if kind == "drop_stragglers":
        if n_workers is None:
            raise ValueError("drop_stragglers needs n_workers")
        return drop_stragglers(n_workers=n_workers, **kwargs)
    if kind == "pssp":
        return pssp(**kwargs)
    if kind == "dynamic_pssp":
        return dynamic_pssp(**kwargs)
    raise ValueError(f"unknown synchronization model {kind!r}; supported: {SUPPORTED_MODELS}")
