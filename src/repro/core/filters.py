"""Worker-side push filters: PS-Lite 'programming filters' and Gaia.

PS-Lite exposes user filters on the communication path (paper §II-A);
Gaia (paper §V-B, ref [37]) filters *insignificant* gradients — over 95%
of updates change a parameter by less than 1% — accumulating them locally
until they matter.  FluentPS's dynamic PSSP already consumes the
significance signal; these filters apply the complementary idea on the
wire: a worker's update is split into a *sent* part and a locally
*accumulated residual*, so no gradient mass is ever dropped (Gaia's
correctness argument), but the bytes on the wire shrink.

All filters satisfy the conservation invariant

    sum of sent updates  +  current residual  ==  sum of raw updates

which the test suite checks property-style.  The sim runner charges wire
bytes for the sent fraction only (sparse encoding: index + value per
element).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class FilterResult:
    """What one push looks like after filtering."""

    update: np.ndarray  # the dense update actually pushed
    sent_fraction: float  # fraction of elements carrying information
    wire_bytes_factor: float  # multiplier on the dense wire size

    def __post_init__(self) -> None:
        if not 0.0 <= self.sent_fraction <= 1.0:
            raise ValueError(f"sent_fraction must be in [0,1], got {self.sent_fraction}")
        if self.wire_bytes_factor < 0:
            raise ValueError("wire_bytes_factor must be >= 0")


class PushFilter(abc.ABC):
    """Transforms a worker's update before it is pushed."""

    #: bytes per sent element under sparse (index, value) encoding,
    #: relative to the 4 dense bytes — i.e. a sent element costs 8 bytes.
    SPARSE_FACTOR = 2.0

    @abc.abstractmethod
    def apply(
        self, update: np.ndarray, params: Optional[np.ndarray], iteration: int
    ) -> FilterResult: ...

    def describe(self) -> str:
        return type(self).__name__

    @staticmethod
    def _result(update: np.ndarray, mask: np.ndarray) -> FilterResult:
        sent = float(mask.mean()) if mask.size else 0.0
        # Sparse encoding beats dense only below 50% density.
        factor = min(1.0, PushFilter.SPARSE_FACTOR * sent)
        return FilterResult(update=update, sent_fraction=sent, wire_bytes_factor=factor)


class NoFilter(PushFilter):
    """Identity: the dense update goes on the wire."""

    def apply(self, update, params, iteration):
        return FilterResult(update=update, sent_fraction=1.0, wire_bytes_factor=1.0)


class SignificanceFilter(PushFilter):
    """Gaia's significance filter with local accumulation.

    An element is *significant* when |accumulated update| exceeds
    ``threshold · |w|`` (relative) or ``threshold · floor`` where the
    weight is near zero.  Insignificant elements stay in a local residual
    that keeps accumulating across iterations — they are sent once their
    aggregate crosses the threshold, so convergence mass is preserved.
    """

    def __init__(self, threshold: float = 0.01, floor: float = 1e-3):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if floor <= 0:
            raise ValueError(f"floor must be > 0, got {floor}")
        self.threshold = threshold
        self.floor = floor
        self._residual: Optional[np.ndarray] = None
        self.total_suppressed = 0
        self.total_elements = 0

    def apply(self, update, params, iteration):
        if self._residual is None:
            self._residual = np.zeros_like(update)
        elif self._residual.shape != update.shape:
            raise ValueError("update shape changed mid-run")
        pending = self._residual + update
        if params is not None:
            scale = np.maximum(np.abs(params), self.floor)
        else:
            scale = self.floor
        mask = np.abs(pending) >= self.threshold * scale
        sent = np.where(mask, pending, 0.0)
        self._residual = np.where(mask, 0.0, pending)
        self.total_elements += update.size
        self.total_suppressed += int(update.size - mask.sum())
        return self._result(sent, mask)

    @property
    def residual(self) -> Optional[np.ndarray]:
        return None if self._residual is None else self._residual.copy()

    def describe(self) -> str:
        return f"significance(threshold={self.threshold})"


class TopKFilter(PushFilter):
    """Send only the k-fraction largest-magnitude elements; accumulate
    the rest locally (classic gradient sparsification with memory)."""

    def __init__(self, fraction: float = 0.1):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self._residual: Optional[np.ndarray] = None

    def apply(self, update, params, iteration):
        if self._residual is None:
            self._residual = np.zeros_like(update)
        pending = self._residual + update
        k = max(1, int(round(self.fraction * pending.size)))
        if k >= pending.size:
            self._residual = np.zeros_like(pending)
            return FilterResult(pending, 1.0, 1.0)
        cut = np.partition(np.abs(pending), pending.size - k)[pending.size - k]
        mask = np.abs(pending) >= cut
        # Ties can exceed k; that only errs toward sending more.
        sent = np.where(mask, pending, 0.0)
        self._residual = np.where(mask, 0.0, pending)
        return self._result(sent, mask)

    @property
    def residual(self) -> Optional[np.ndarray]:
        return None if self._residual is None else self._residual.copy()

    def describe(self) -> str:
        return f"topk(fraction={self.fraction})"


class RandomSparsifier(PushFilter):
    """Send each element with probability p, rescaled by 1/p (unbiased);
    stateless — a cheap baseline for the filter ablation."""

    def __init__(self, p: float, rng: np.random.Generator):
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p}")
        self.p = p
        self.rng = rng

    def apply(self, update, params, iteration):
        if self.p >= 1.0:
            return FilterResult(update, 1.0, 1.0)
        mask = self.rng.random(update.shape) < self.p
        sent = np.where(mask, update / self.p, 0.0)
        return self._result(sent, mask)

    def describe(self) -> str:
        return f"random(p={self.p})"
