"""Real-thread FluentPS: the same server code under true concurrency.

Runs N Python threads as workers against shared shard servers — no
simulation clock, real wall time, real interleavings.  Useful as a
single-machine parameter-server library and as a liveness check of the
condition machinery.

Run:  python examples/threaded_training.py
"""

import numpy as np

from repro.bench.workloads import blobs_task
from repro.core import ExecutionMode, ParameterServerSystem, pssp
from repro.parallel import ThreadedRunner


def main() -> None:
    n_workers = 8
    task = blobs_task(n_workers, n_train=2000, n_test=400, seed=0)
    system = ParameterServerSystem(
        task.spec, task.init_params, n_workers, n_servers=2,
        sync_model=pssp(3, 0.3), execution=ExecutionMode.LAZY, seed=1,
    )
    runner = ThreadedRunner(system, task.step_fn, max_iter=300, seed=2)
    result = runner.run()
    if not result.ok:
        raise SystemExit(f"worker errors: {result.worker_errors}")

    acc = task.eval_fn(result.final_params)
    m = result.metrics
    print(f"{n_workers} threads x {result.iterations} iterations "
          f"in {result.wall_time:.2f}s wall time")
    print(f"test accuracy: {acc:.3f}")
    print(f"pulls: {m.pulls}  delayed: {m.dprs}  "
          f"mean staleness: {m.mean_staleness():.2f}  "
          f"max staleness: {m.max_staleness()}")
    assert np.isfinite(result.final_params).all()


if __name__ == "__main__":
    main()
