"""Overlap synchronization vs PS-Lite's non-overlap design (Figures 4-6).

Renders the Figure-5-style ASCII timelines for a small cluster with one
straggler, then sweeps cluster sizes for the Figure-6 breakdown: PS-Lite
(central scheduler, non-overlap, default range-key slicing) vs FluentPS
(per-server conditions, overlap) vs FluentPS + EPS.

Run:  python examples/overlap_vs_nonoverlap.py
"""

from repro.baselines.pslite import run_pslite
from repro.bench.workloads import workload_for
from repro.core.keyspace import DefaultSlicer, ElasticSlicer
from repro.core.models import bsp
from repro.sim.cluster import gpu_cluster_p2
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import TransientStragglerCompute, gpu_cluster_compute
from repro.utils.tables import format_table


def timelines() -> None:
    wl = workload_for("resnet56")
    compute = TransientStragglerCompute(3, slow_factor=3.0, period=6, duration=3,
                                        jitter_sigma=0.02)
    common = dict(
        cluster=gpu_cluster_p2(3, 4), max_iter=6, sync=bsp(), workload=wl,
        batch_per_worker=256, compute_model=compute, seed=0, keep_spans=True,
    )
    non = run_pslite(SimConfig(**common))
    ovl = run_fluentps(SimConfig(**common, slicer=ElasticSlicer()))
    t_max = max(non.duration, ovl.duration)
    workers = [f"worker{w}" for w in range(3)]
    print("Non-overlap (PS-Lite, Figure 5a): push phase | grant | pull phase")
    print(non.trace.render_timeline(workers, width=96, t_max=t_max))
    print(f"\nOverlap (FluentPS, Figure 5b): finished {non.duration / ovl.duration:.2f}x sooner")
    print(ovl.trace.render_timeline(workers, width=96, t_max=t_max))


def breakdown() -> None:
    wl = workload_for("resnet56")
    rows = []
    for n in (8, 16, 32):
        base = dict(
            cluster=gpu_cluster_p2(n, 8), max_iter=40, sync=bsp(), workload=wl,
            batch_per_worker=max(1, 4096 // n), compute_model=gpu_cluster_compute(),
            seed=1,
        )
        runs = {
            "PS-Lite": run_pslite(SimConfig(**base)),
            "FluentPS": run_fluentps(SimConfig(**base, slicer=DefaultSlicer())),
            "FluentPS+EPS": run_fluentps(SimConfig(**base, slicer=ElasticSlicer())),
        }
        ps = runs["PS-Lite"].duration
        for name, r in runs.items():
            rows.append([n, name, round(r.mean_compute_time, 2),
                         round(r.mean_comm_time, 2), round(r.duration, 2),
                         f"{ps / r.duration:.2f}x"])
    print(format_table(
        ["workers", "system", "compute_s", "comm_s", "total_s", "speedup"],
        rows, title="\nFigure 6: computation/communication time (BSP, ResNet-56)",
    ))


if __name__ == "__main__":
    timelines()
    breakdown()
