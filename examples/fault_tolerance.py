"""Fault tolerance and elasticity: checkpoint, failure, resize, resume.

Story: a training job runs on 4 servers; we checkpoint it, lose two
servers (simulated failure), restore the checkpoint on the survivors
after an EPS resize, and training continues from exactly where it left
off — the scheduler's liveness/rebalance role from paper §III-A plus the
FlexPS-style stage boundary.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.bench.workloads import blobs_task
from repro.core import ExecutionMode, ParameterServerSystem, VirtualClockDriver, ssp


def main() -> None:
    n_workers = 8
    task = blobs_task(n_workers, n_train=2000, n_test=400, seed=0)
    system = ParameterServerSystem(
        task.spec, task.init_params, n_workers, n_servers=4,
        sync_model=ssp(2), execution=ExecutionMode.LAZY, seed=1,
    )

    # Stage 1: train 200 iterations on 4 servers and checkpoint.
    r1 = VirtualClockDriver(system, task.step_fn, max_iter=200, seed=2).run()
    state = system.checkpoint()
    acc1 = task.eval_fn(system.current_params())
    print(f"stage 1 (4 servers): {r1.iterations} iterations, acc={acc1:.3f}; "
          f"checkpoint taken at frontier {state['shards'][0]['v_train']}")

    # Disaster: two servers die.  Restore the checkpoint exactly on a new
    # 4-server system (exact-state recovery) ...
    recovered = ParameterServerSystem(
        task.spec, task.init_params, n_workers, n_servers=4,
        sync_model=ssp(2), execution=ExecutionMode.LAZY, seed=1,
    )
    recovered.restore(state)
    assert np.allclose(recovered.current_params(), system.current_params())
    print("recovery: restored checkpoint onto a fresh 4-server system "
          f"(params identical: True)")

    # ... or shrink to the 2 survivors at a stage boundary (EPS rebalance).
    moved = system.resize(2)
    print(f"elastic shrink 4 -> 2 servers: EPS moved {moved} bytes, "
          f"imbalance {system.scheduler.assignment.imbalance():.3f}")

    # Stage 2: continue training on 2 servers.
    r2 = VirtualClockDriver(system, task.step_fn, max_iter=200, seed=3).run()
    acc2 = task.eval_fn(system.current_params())
    print(f"stage 2 (2 servers): {r2.iterations} more iterations, acc={acc2:.3f}")
    print(f"total pushes across both stages: {system.merged_metrics().pushes}")


if __name__ == "__main__":
    main()
