"""Flexible synchronization: every model from Table I via conditions.

Demonstrates the paper's condition-aware methodology three ways:

1. run the same training job under BSP / ASP / SSP / DSPS /
   drop-stragglers / PSSP and compare time, DPRs, staleness, accuracy;
2. mix models across shards (Figure 2: server 1 SSP, server 2 PSSP,
   server 3 drop-stragglers);
3. switch a server's model at runtime with SetcondPull — no restart.

Run:  python examples/flexible_synchronization.py
"""


from repro.bench.workloads import blobs_task
from repro.core import (
    ExecutionMode,
    ParameterServerSystem,
    SSPPull,
    VirtualClockDriver,
    asp,
    bsp,
    drop_stragglers,
    dsps,
    dynamic_pssp,
    pssp,
    ssp,
)
from repro.sim.stragglers import HeterogeneousCompute
from repro.utils.tables import format_table

N_WORKERS = 12
ITERS = 250


def run(sync, task):
    system = ParameterServerSystem(
        task.spec, task.init_params, N_WORKERS, 2, sync, ExecutionMode.LAZY, seed=3
    )
    driver = VirtualClockDriver(
        system,
        task.step_fn,
        max_iter=ITERS,
        compute_model=HeterogeneousCompute(N_WORKERS, spread=0.3),
        seed=4,
        eval_fn=task.eval_fn,
        eval_every=ITERS,
    )
    return driver.run()


def main() -> None:
    models = [
        bsp(),
        asp(),
        ssp(3),
        dsps(s0=3),
        drop_stragglers(N_WORKERS, n_t=9),
        pssp(3, 0.3),
        dynamic_pssp(3, 0.8),
    ]
    rows = []
    for sync in models:
        task = blobs_task(N_WORKERS, n_train=2000, n_test=400, seed=7)
        r = run(sync, task)
        rows.append([
            sync.name, round(r.duration, 1), r.metrics.dprs,
            round(r.metrics.mean_staleness(), 2), r.metrics.max_staleness(),
            round(r.eval_by_iteration.final(), 3),
        ])
    print(format_table(
        ["model", "time_s", "dprs", "mean_stale", "max_stale", "accuracy"],
        rows, title="One job, seven synchronization models (Table I / III)",
    ))

    # -- per-shard mixed models (Figure 2) --------------------------------
    task = blobs_task(N_WORKERS, n_train=2000, n_test=400, seed=7)
    system = ParameterServerSystem(
        task.spec, task.init_params, N_WORKERS, 3,
        [ssp(3), pssp(3, 0.3), drop_stragglers(N_WORKERS, n_t=9)],
        ExecutionMode.LAZY, seed=3,
    )
    print("\nPer-shard deployment (Figure 2):")
    print(system.describe())

    # -- runtime model switch via SetcondPull ------------------------------
    print("\nSwitching server 0 from SSP(3) to SSP(8) at runtime "
          "(the paper's SetcondPull):")
    system.set_cond_pull(0, SSPPull(8))
    print(" ", system.servers[0].pull_con.describe())


if __name__ == "__main__":
    main()
