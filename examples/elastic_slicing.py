"""Elastic Parameter Slicing: balance, rebalance, liveness (paper §III-A).

AlexNet's fc1 tensor holds ~89% of its parameters; range-key slicing
(PS-Lite's default) puts everything on one server, hash slicing puts fc1
wholly on one server, EPS chunks it evenly.  The second half simulates a
server failure: the scheduler notices the missed heartbeat and EPS
rebalances with minimal parameter movement.

Run:  python examples/elastic_slicing.py
"""

from repro.core.keyspace import DefaultSlicer, ElasticSlicer, RangeKeySlicer
from repro.core.scheduler import Scheduler
from repro.ml.models_zoo import alexnet_cifar_spec
from repro.utils.tables import format_table


def slicing_comparison() -> None:
    model = alexnet_cifar_spec()
    rows = []
    for name, slicer in (
        ("PS-Lite range-key", RangeKeySlicer()),
        ("hash by tensor", DefaultSlicer()),
        ("EPS (64k chunks)", ElasticSlicer(chunk_elements=1 << 16)),
        ("EPS (16k chunks)", ElasticSlicer(chunk_elements=1 << 14)),
    ):
        a = slicer.slice(model, 8)
        loads = [f"{b // 1024}k" for b in a.bytes_per_server()]
        rows.append([name, round(a.imbalance(), 2), " ".join(loads)])
    print(format_table(
        ["slicer", "imbalance (max/mean)", "per-server bytes"],
        rows, title=f"Slicing {model.name} ({model.total_bytes / 1e6:.1f} MB) over 8 servers",
    ))


def failure_rebalance() -> None:
    model = alexnet_cifar_spec()
    sched = Scheduler(model, ElasticSlicer(chunk_elements=1 << 14), n_servers=8,
                      heartbeat_timeout=2.0)
    for m in range(8):
        sched.heartbeat(m, now=0.0)
    # Servers 6 and 7 stop heartbeating.
    for m in range(6):
        sched.heartbeat(m, now=5.0)
    dead = sched.check_liveness(now=5.0)
    print(f"\nServers {dead} missed their heartbeats; EPS rebalanced onto "
          f"{len(sched.alive_servers(5.0))} survivors,")
    print(f"moving {sched.total_moved_bytes / 1e6:.2f} MB "
          f"(model is {model.total_bytes / 1e6:.1f} MB); "
          f"new imbalance: {sched.assignment.imbalance():.3f}")


if __name__ == "__main__":
    slicing_comparison()
    failure_rebalance()
