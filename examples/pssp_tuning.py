"""PSSP in practice: matched-regret pairs, bounds, and the DPR trade-off.

Shows how to pick PSSP parameters:

1. Theorem 1's equivalence — PSSP(s, c) and SSP(s' = s + 1/c − 1) share a
   regret bound, but PSSP reaches any *fractional* effective staleness;
2. the theory table (Monte-Carlo regret vs Equations 2/3);
3. the Figure-9 experiment — the matched SSP partner generates far more
   DPRs under the soft barrier.

Run:  python examples/pssp_tuning.py
"""

from repro.bench.figures import fig9_dpr_pairs
from repro.bench.harness import QUICK
from repro.bench.theory_bench import theory_bounds
from repro.core.pssp import (
    effective_staleness_pmf,
    equivalent_ssp_threshold,
    expected_effective_staleness,
)
from repro.utils.tables import format_table


def equivalence_table() -> None:
    rows = []
    for c in (1.0, 0.5, 1 / 3, 0.2, 0.1, 0.07):
        s_prime = equivalent_ssp_threshold(3, c)
        rows.append([
            f"PSSP(3, {c:.3f})",
            f"SSP({s_prime:g})",
            round(expected_effective_staleness(3, c), 2),
            round(effective_staleness_pmf(3, c, 3), 3),
        ])
    print(format_table(
        ["pssp", "regret-matched ssp", "E[staleness]", "P[staleness = s]"],
        rows,
        title="Theorem 1: PSSP(s, c) <-> SSP(s') equivalence "
              "(note the fractional s' values SSP cannot express)",
    ))


def main() -> None:
    equivalence_table()
    print()
    theory_bounds(QUICK).show()
    print()
    fig9_dpr_pairs(QUICK).show()


if __name__ == "__main__":
    main()
