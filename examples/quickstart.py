"""Quickstart: distributed training through FluentPS in ~40 lines.

Trains a small classifier with 8 simulated workers under the PSSP model,
then prints accuracy and the synchronization metrics the paper reports.

Run:  python examples/quickstart.py
"""

from repro.bench.workloads import blobs_task
from repro.core import ExecutionMode, pssp
from repro.sim.cluster import cpu_cluster
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import cpu_cluster_compute


def main() -> None:
    n_workers = 8

    # 1. A data-parallel training task: dataset shards, a NumPy MLP, SGD.
    task = blobs_task(n_workers, n_train=3000, n_test=600, seed=0)

    # 2. A cluster + synchronization model.  PSSP(s=3, c=0.3): workers more
    #    than 3 iterations ahead of the slowest are paused 30% of the time.
    config = SimConfig(
        cluster=cpu_cluster(n_workers, n_servers=2),
        max_iter=400,
        sync=pssp(3, 0.3),
        execution=ExecutionMode.LAZY,
        task=task,
        seed=1,
        base_compute_time=0.4,
        compute_model=cpu_cluster_compute(n_workers),
        eval_every=100,
    )

    # 3. Run the co-simulation: real gradients, simulated cluster time.
    result = run_fluentps(config)

    print(f"simulated training time : {result.duration:9.1f} s")
    print(f"final test accuracy     : {result.eval_by_iteration.final():9.3f}")
    print(f"delayed pull requests   : {result.metrics.dprs:9d} "
          f"({result.dprs_per_100_iterations():.1f} per 100 iterations)")
    print(f"mean parameter staleness: {result.metrics.mean_staleness():9.2f} iterations")
    print(f"bytes on the wire       : {result.bytes_on_wire / 1e9:9.2f} GB")
    print("\naccuracy curve (iteration, accuracy):")
    for it, acc in zip(result.eval_by_iteration.x, result.eval_by_iteration.y):
        print(f"  {int(it):5d}  {acc:.3f}")


if __name__ == "__main__":
    main()
