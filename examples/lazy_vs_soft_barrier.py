"""Lazy pull execution vs the SSP soft barrier (Figures 3 and 8).

Part 1 replays Figure 3's scripted scenario directly against a
ShardServer: with s=3 and straggler W2, the soft barrier answers W0's
delayed pull after ONE slow push (parameters missing 3 iterations of W2's
gradients); lazy execution waits for full catch-up and returns complete
parameters.

Part 2 runs the Figure-8 co-simulation: 32 workers, SSP s=2, ResNet-56
wire footprint — lazy execution produces ~10-100x fewer DPRs and finishes
sooner.

Run:  python examples/lazy_vs_soft_barrier.py
"""

from repro.bench.figures import fig3_tradeoff_trace, fig8_lazy_vs_soft
from repro.bench.harness import QUICK
from repro.utils.plots import ascii_plot


def main() -> None:
    fig3_tradeoff_trace().show()
    print()
    result = fig8_lazy_vs_soft(QUICK)
    result.show()
    print()
    print(ascii_plot(
        result.series, width=72, height=14,
        title="Figure 8: test accuracy vs simulated seconds",
    ))


if __name__ == "__main__":
    main()
