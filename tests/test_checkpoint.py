"""Tests for checkpoint/restore (server-failure recovery)."""

import numpy as np
import pytest

from repro.bench.workloads import blobs_task
from repro.core import ExecutionMode, ParameterServerSystem, VirtualClockDriver, ssp


@pytest.fixture
def task():
    return blobs_task(4, n_train=300, n_test=80, seed=2)


def make_system(task):
    return ParameterServerSystem(
        task.spec, task.init_params, 4, 2, ssp(2), ExecutionMode.LAZY, seed=0
    )


class TestCheckpoint:
    def test_roundtrip_restores_exact_state(self, task):
        system = make_system(task)
        VirtualClockDriver(system, task.step_fn, max_iter=30, seed=1).run()
        state = system.checkpoint()
        params_at_ckpt = system.current_params()

        # Continue training, then roll back.
        VirtualClockDriver(system, task.step_fn, max_iter=30, seed=2,
                           start_iteration=30).run()
        assert not np.allclose(system.current_params(), params_at_ckpt)
        system.restore(state)
        np.testing.assert_allclose(system.current_params(), params_at_ckpt)
        for server, shard in zip(system.servers, state["shards"]):
            assert server.v_train == shard["v_train"]
            assert server.worker_progress == shard["worker_progress"]

    def test_resumed_training_is_protocol_legal(self, task):
        """After restore, workers resume pushing from their recorded
        progress — the sequential-push protocol check must accept it."""
        system = make_system(task)
        VirtualClockDriver(system, task.step_fn, max_iter=25, seed=1).run()
        state = system.checkpoint()
        fresh = make_system(task)
        fresh.restore(state)
        # Workers continue at progress 25 on the restored system.
        z = np.zeros(task.spec.total_elements)
        fresh.s_push(0, 25, z)  # must not raise ProtocolError
        assert fresh.servers[0].worker_progress[0] == 25

    def test_checkpoint_requires_quiescence(self, task):
        system = ParameterServerSystem(
            task.spec, task.init_params, 4, 2, ssp(1), ExecutionMode.LAZY, seed=0
        )
        z = np.zeros(task.spec.total_elements)
        system.s_push(0, 0, z)
        system.s_push(0, 1, z)
        system.s_pull(0, 1, lambda r: None)
        with pytest.raises(RuntimeError, match="quiescence"):
            system.checkpoint()

    def test_restore_server_count_checked(self, task):
        system = make_system(task)
        state = system.checkpoint()
        other = ParameterServerSystem(
            task.spec, task.init_params, 4, 3, ssp(2), ExecutionMode.LAZY, seed=0
        )
        with pytest.raises(ValueError, match="resize first"):
            other.restore(state)

    def test_checkpoint_is_deep(self, task):
        """Mutating the live system must not corrupt the snapshot."""
        system = make_system(task)
        VirtualClockDriver(system, task.step_fn, max_iter=10, seed=1).run()
        state = system.checkpoint()
        count_copy = dict(state["shards"][0]["count"])
        VirtualClockDriver(system, task.step_fn, max_iter=10, seed=2,
                           start_iteration=10).run()
        assert state["shards"][0]["count"] == count_copy
