"""Tests for shared utilities: RNG streams, records, tables."""

import numpy as np
import pytest

from repro.utils.records import RunRecord, SeriesRecord, merge_metrics
from repro.utils.rng import derive_rng, spawn_rngs, stable_choice
from repro.utils.tables import format_ratio, format_table


class TestRng:
    def test_same_stream_identical(self):
        a = derive_rng(7, "worker", 3).random(5)
        b = derive_rng(7, "worker", 3).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_differ(self):
        a = derive_rng(7, "worker", 3).random(5)
        b = derive_rng(7, "worker", 4).random(5)
        c = derive_rng(8, "worker", 3).random(5)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_string_and_int_keys(self):
        a = derive_rng(1, "compute", 0).random()
        b = derive_rng(1, "step", 0).random()
        assert a != b

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(3, "w", 4)
        values = [r.random() for r in rngs]
        assert len(set(values)) == 4

    def test_stable_choice(self):
        rng = derive_rng(0, "choice")
        assert stable_choice(rng, [1, 2, 3]) in (1, 2, 3)
        with pytest.raises(ValueError):
            stable_choice(rng, [])


class TestRecords:
    def test_run_record_roundtrip(self):
        r = RunRecord("a", params={"n": 4}, metrics={"acc": 0.9})
        r2 = RunRecord.from_dict(r.to_dict())
        assert r2.name == "a"
        assert r2.metrics["acc"] == 0.9

    def test_metric_default(self):
        r = RunRecord("a", metrics={"x": 1.0})
        assert r.metric("missing", default=5.0) == 5.0
        with pytest.raises(KeyError):
            r.metric("missing")

    def test_series_append_and_final(self):
        s = SeriesRecord("s")
        s.append(1, 0.5)
        s.append(2, 0.8)
        assert len(s) == 2
        assert s.final() == 0.8
        assert s.best() == 0.8

    def test_series_at_x_step_interpolation(self):
        s = SeriesRecord("s", x=[10, 20, 30], y=[0.1, 0.2, 0.3])
        assert s.at_x(25) == 0.2
        assert s.at_x(5) == 0.1
        assert s.at_x(100) == 0.3

    def test_series_empty_errors(self):
        s = SeriesRecord("s")
        with pytest.raises(ValueError):
            s.final()
        with pytest.raises(ValueError):
            s.at_x(1)

    def test_series_roundtrip(self):
        s = SeriesRecord("s", x=[1], y=[2], x_label="t", y_label="acc")
        s2 = SeriesRecord.from_dict(s.to_dict())
        assert s2.x == [1.0] and s2.y_label == "acc"

    def test_merge_metrics(self):
        rs = [RunRecord("a", metrics={"x": 1.0}), RunRecord("b", metrics={"x": 2.0})]
        assert merge_metrics(rs, "x") == [1.0, 2.0]


class TestAsciiPlot:
    def _series(self):
        return SeriesRecord("acc", x=[0, 10, 20, 30], y=[0.1, 0.4, 0.6, 0.7])

    def test_renders_with_axes_and_legend(self):
        from repro.utils.plots import ascii_plot

        out = ascii_plot([self._series()], width=40, height=8, title="T")
        assert "T" in out
        assert "acc" in out  # legend
        assert "o" in out  # data glyph
        assert "0.7" in out and "0.1" in out  # y labels

    def test_multiple_series_distinct_glyphs(self):
        from repro.utils.plots import ascii_plot

        other = SeriesRecord("b", x=[0, 30], y=[0.7, 0.1])
        out = ascii_plot([self._series(), other], width=40, height=8)
        assert "o=" in out and "x=" in out

    def test_constant_series_ok(self):
        from repro.utils.plots import ascii_plot

        flat = SeriesRecord("flat", x=[0, 1], y=[0.5, 0.5])
        assert "flat" in ascii_plot([flat], width=20, height=5)

    def test_validation(self):
        from repro.utils.plots import ascii_plot

        with pytest.raises(ValueError):
            ascii_plot([SeriesRecord("empty")])
        with pytest.raises(ValueError):
            ascii_plot([self._series()], width=4, height=2)


class TestTables:
    def test_basic_render(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        assert "T" in out
        assert "a" in out and "2.5" in out
        assert "-" in out  # the None cell and separators

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_large_and_small_floats(self):
        out = format_table(["v"], [[1e9], [1e-9], [0.0]])
        assert "e+" in out and "e-" in out and "0" in out

    def test_format_ratio(self):
        assert format_ratio(new=2.0, old=4.0) == "2.00x"
        assert format_ratio(new=0.0, old=1.0) == "inf"


class TestMetricLookup:
    def test_explicit_none_default_honored(self):
        r = RunRecord("a", metrics={"x": 1.0})
        assert r.metric("missing", default=None) is None
        assert r.metric("x", default=None) == 1.0

    def test_missing_key_error_names_record_and_keys(self):
        r = RunRecord("arm", metrics={"acc": 0.9, "time": 1.0})
        with pytest.raises(KeyError, match="available"):
            r.metric("speed")
        try:
            r.metric("speed")
        except KeyError as exc:
            msg = str(exc)
            assert "arm" in msg and "acc" in msg and "time" in msg
