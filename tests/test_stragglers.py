"""Tests for compute-time / straggler models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stragglers import (
    DeterministicCompute,
    ExponentialTailCompute,
    HeterogeneousCompute,
    LogNormalCompute,
    ParetoTailCompute,
    TransientStragglerCompute,
    cpu_cluster_compute,
    gpu_cluster_compute,
    make_compute_model,
)

ALL_MODELS = [
    DeterministicCompute(),
    LogNormalCompute(0.2),
    ExponentialTailCompute(0.1, 2.0),
    ParetoTailCompute(3.0, 0.3),
    TransientStragglerCompute(4, slow_factor=3.0, period=10, duration=3),
    HeterogeneousCompute(4, spread=0.3),
]


class TestBasics:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_samples_positive_finite(self, model, rng):
        for it in range(50):
            t = model.sample(it % 4, it, 1.0, rng)
            assert np.isfinite(t) and t > 0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_scales_with_base_time(self, model):
        r1 = np.random.default_rng(0)
        r2 = np.random.default_rng(0)
        a = model.sample(0, 5, 1.0, r1)
        b = model.sample(0, 5, 2.0, r2)
        assert b == pytest.approx(2 * a)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
    def test_mean_factor_close_to_empirical(self, model, rng):
        samples = [model.sample(w, it, 1.0, rng) for it in range(800) for w in range(4)]
        assert np.mean(samples) == pytest.approx(model.mean_factor(), rel=0.25)


class TestDeterministic:
    def test_exact(self, rng):
        assert DeterministicCompute(1.5).sample(0, 0, 2.0, rng) == 3.0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            DeterministicCompute(0.0)


class TestLogNormal:
    def test_zero_sigma_is_deterministic(self, rng):
        m = LogNormalCompute(0.0)
        assert m.sample(0, 0, 2.0, rng) == pytest.approx(2.0)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            LogNormalCompute(-0.1)


class TestExponentialTail:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            ExponentialTailCompute(p_slow=1.5)

    def test_tail_increases_mean(self, rng):
        base = LogNormalCompute(0.05)
        tail = ExponentialTailCompute(p_slow=0.5, tail_scale=3.0, jitter_sigma=0.05)
        b = np.mean([base.sample(0, i, 1.0, rng) for i in range(500)])
        t = np.mean([tail.sample(0, i, 1.0, rng) for i in range(500)])
        assert t > b * 1.5


class TestPareto:
    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ParetoTailCompute(alpha=1.0)


class TestTransient:
    def test_straggler_rotates(self):
        m = TransientStragglerCompute(4, period=10, duration=3)
        assert m.straggler_at(0) == 0
        assert m.straggler_at(10) == 1
        assert m.straggler_at(45) == 0  # wraps around

    def test_slow_window(self):
        m = TransientStragglerCompute(4, period=10, duration=3)
        assert m.is_slow(0, 0) and m.is_slow(0, 2)
        assert not m.is_slow(0, 3)
        assert not m.is_slow(1, 0)
        assert m.is_slow(1, 11)

    def test_slow_factor_applied(self, rng):
        m = TransientStragglerCompute(2, slow_factor=5.0, period=10, duration=10,
                                      jitter_sigma=0.0)
        slow = m.sample(0, 0, 1.0, rng)
        fast = m.sample(1, 0, 1.0, rng)
        assert slow == pytest.approx(5 * fast)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            TransientStragglerCompute(2, period=5, duration=6)


class TestHeterogeneous:
    def test_rates_spread_linearly(self):
        m = HeterogeneousCompute(5, spread=0.4, jitter_sigma=0.0)
        rates = [m.rate_factor(w) for w in range(5)]
        assert rates[0] == 1.0
        assert rates[-1] == pytest.approx(1.4)
        assert rates == sorted(rates)

    def test_single_worker(self):
        assert HeterogeneousCompute(1, spread=0.4).rate_factor(0) == 1.0

    def test_invalid_spread(self):
        with pytest.raises(ValueError):
            HeterogeneousCompute(4, spread=-0.1)


class TestFactoryAndPresets:
    @pytest.mark.parametrize(
        "name", ["deterministic", "lognormal", "exp-tail", "pareto"]
    )
    def test_factory_simple(self, name):
        assert make_compute_model(name) is not None

    def test_factory_needs_workers(self):
        with pytest.raises(ValueError):
            make_compute_model("transient")
        with pytest.raises(ValueError):
            make_compute_model("heterogeneous")
        assert make_compute_model("transient", n_workers=4) is not None
        assert make_compute_model("heterogeneous", n_workers=4) is not None

    def test_factory_unknown(self):
        with pytest.raises(ValueError):
            make_compute_model("quantum")

    def test_cluster_presets(self, rng):
        g = gpu_cluster_compute()
        c = cpu_cluster_compute(8)
        assert g.sample(0, 0, 1.0, rng) > 0
        assert c.sample(7, 0, 1.0, rng) > c.sample(0, 0, 1.0, rng) * 0.9


class TestProperties:
    @given(
        sigma=st.floats(min_value=0.0, max_value=1.0),
        base=st.floats(min_value=1e-6, max_value=1e3),
    )
    @settings(max_examples=50, deadline=None)
    def test_lognormal_positive(self, sigma, base):
        m = LogNormalCompute(sigma)
        r = np.random.default_rng(0)
        assert m.sample(0, 0, base, r) > 0

    @given(
        n=st.integers(min_value=1, max_value=64),
        spread=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_heterogeneous_rates_bounded(self, n, spread):
        m = HeterogeneousCompute(n, spread=spread, jitter_sigma=0.0)
        for w in range(n):
            assert 1.0 <= m.rate_factor(w) <= 1.0 + spread + 1e-12
