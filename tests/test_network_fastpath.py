"""Differential tests: the analytic lane scheduler vs the process path.

The fast path's correctness claim is *exact* timing equivalence — not a
single delivered timestamp may differ from the process-based fallback,
at any preset, under any seeded schedule.  These tests run identical
traffic through both scheduling paths and compare the full delivery
traces (and NIC accounting) for byte-identical equality, including
entire co-simulated training runs on every cluster preset.
"""

import json

import numpy as np
import pytest

from repro.bench.workloads import blobs_task
from repro.core.models import bsp, pssp, ssp
from repro.core.server import ExecutionMode
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.sim.cluster import cpu_cluster, gpu_cluster_p2
from repro.sim.engine import Engine, SimulationError
from repro.sim.network import Network, NicSpec
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.stragglers import DeterministicCompute, LogNormalCompute


def _run_schedule(schedule, analytic, latency_s, nics):
    """Replay ``schedule`` (time, src, dst, size) on a fresh network.

    Returns the delivery trace plus the per-endpoint accounting, so the
    comparison covers both *when* messages land and *what* the lanes
    booked while carrying them.
    """
    eng = Engine()
    net = Network(eng, latency_s=latency_s, analytic=analytic)
    for node, nic in nics.items():
        net.add_node(node, nic)
    trace = []
    net.on_delivery(
        lambda m: trace.append((m.msg_id, m.src, m.dst, m.send_time, m.deliver_time))
    )
    for when, src, dst, size in schedule:
        eng.call_at(when, net.send, src, dst, size)
    eng.run()
    stats = {
        node: (ep.tx_busy_s, ep.rx_busy_s, ep.bytes_sent, ep.bytes_received,
               ep.messages_sent, ep.messages_received)
        for node, ep in net.endpoints.items()
    }
    return trace, stats, net


def _random_schedule(rng, nodes, n_msgs, spread_s):
    sched = []
    for _ in range(n_msgs):
        src, dst = rng.choice(nodes, size=2, replace=False)
        size = int(rng.choice([0, 1, 1024, 64 * 1024, 1024 * 1024]))
        sched.append((float(rng.uniform(0, spread_s)), str(src), str(dst), size))
    # Deterministic issue order at equal times: sort by time, then insertion.
    sched.sort(key=lambda s: s[0])
    return sched


class TestMicroDifferential:
    """Seeded random schedules over the parameter grid, both paths."""

    @pytest.mark.parametrize("latency_s", [0.0, 50e-6])
    @pytest.mark.parametrize("overhead_s", [0.0, 30e-6])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_schedules_identical(self, latency_s, overhead_s, seed):
        """Every message's full record is exact, and every destination sees
        deliveries in exactly the process path's order.

        The global interleaving of *simultaneous* deliveries on different
        destinations is compared per message and per destination rather
        than as one sequence: these degenerate schedules (zero overhead,
        zero-byte messages, a handful of repeated sizes) manufacture
        cross-destination float ties, where the two paths may allocate
        event seqs differently.  Per-destination order — the inbox FIFO a
        consumer can observe — must still match exactly; the preset-level
        tests below compare full global traces.
        """
        rng = np.random.default_rng(seed)
        nodes = [f"n{i}" for i in range(5)]
        nics = {n: NicSpec(bandwidth_Bps=1e8, overhead_s=overhead_s) for n in nodes}
        sched = _random_schedule(rng, nodes, n_msgs=60, spread_s=2e-3)
        fast, fast_stats, fast_net = _run_schedule(sched, True, latency_s, nics)
        slow, slow_stats, slow_net = _run_schedule(sched, False, latency_s, nics)
        # Per-message: identical (src, dst, send_time, deliver_time) floats.
        assert sorted(fast) == sorted(slow)
        # Per-destination: identical delivery order (the observable FIFO).
        for dst in nodes:
            fast_dst = [t for t in fast if t[2] == dst]
            slow_dst = [t for t in slow if t[2] == dst]
            assert fast_dst == slow_dst
        assert fast_stats == slow_stats
        assert fast_net.total_bytes == slow_net.total_bytes
        assert fast_net.fast_path_transfers == len(sched)
        assert slow_net.fallback_transfers == len(sched)

    def test_incast_burst_identical(self):
        """The paper's §II-B hot case: N senders, one receiver, same instant."""
        nodes = ["sink"] + [f"w{i}" for i in range(16)]
        nics = {n: NicSpec(bandwidth_Bps=125e6, overhead_s=20e-6) for n in nodes}
        sched = [(0.0, f"w{i}", "sink", 64 * 1024) for i in range(16)]
        sched += [(1e-5, f"w{i}", "sink", 1024) for i in range(16)]
        fast, fast_stats, _ = _run_schedule(sched, True, 50e-6, nics)
        slow, slow_stats, _ = _run_schedule(sched, False, 50e-6, nics)
        assert fast == slow
        assert fast_stats == slow_stats

    def test_same_source_burst_fifo(self):
        """Back-to-back sends from one node serialize on the TX lane."""
        nics = {n: NicSpec(bandwidth_Bps=1e8, overhead_s=10e-6) for n in ("a", "b")}
        sched = [(0.0, "a", "b", 4096)] * 8
        fast, _, _ = _run_schedule(sched, True, 50e-6, nics)
        slow, _, _ = _run_schedule(sched, False, 50e-6, nics)
        assert fast == slow
        delivers = [t[4] for t in fast]
        assert delivers == sorted(delivers)

    def test_inflight_gauges_return_to_zero(self):
        nics = {n: NicSpec(bandwidth_Bps=1e8) for n in ("a", "b")}
        for analytic in (True, False):
            _, _, net = _run_schedule([(0.0, "a", "b", 1024)] * 4, analytic, 1e-5, nics)
            assert net.bytes_in_flight == 0
            assert net.messages_in_flight == 0


def _preset_configs():
    """One runner config per (preset, sync model, compute) cell."""
    workload = alexnet_cifar_workload()
    cells = []
    for name, cluster in [
        ("gpu_p2", gpu_cluster_p2(4, n_servers=2)),
        ("cpu", cpu_cluster(4, n_servers=2)),
    ]:
        for sync_name, sync in [("ssp3", ssp(3)), ("bsp", bsp()), ("pssp", pssp(2, 0.5))]:
            for comp_name, compute in [
                ("det", DeterministicCompute()),
                ("lognorm", LogNormalCompute(0.3)),
            ]:
                cells.append(
                    pytest.param(
                        dict(
                            cluster=cluster,
                            max_iter=6,
                            sync=sync,
                            workload=workload,
                            batch_per_worker=64,
                            compute_model=compute,
                            seed=7,
                        ),
                        id=f"{name}-{sync_name}-{comp_name}",
                    )
                )
    return cells


def _run_traced(cfg_kwargs, analytic):
    runner = FluentPSSimRunner(SimConfig(**cfg_kwargs))
    runner.net.analytic = analytic
    trace = []
    runner.net.on_delivery(
        lambda m: trace.append(
            (m.msg_id, m.src, m.dst, m.tag, m.size_bytes, m.send_time, m.deliver_time)
        )
    )
    result = runner.run()
    return trace, result, runner


class TestPresetDifferential:
    """Entire co-simulated runs on each preset: byte-identical traces."""

    @pytest.mark.parametrize("cfg_kwargs", _preset_configs())
    def test_run_traces_identical(self, cfg_kwargs):
        fast_trace, fast_result, fast_runner = _run_traced(cfg_kwargs, True)
        slow_trace, slow_result, slow_runner = _run_traced(cfg_kwargs, False)
        # Serialize through JSON so the comparison is on bytes, not on
        # float objects that might compare equal after rounding.
        assert json.dumps(fast_trace) == json.dumps(slow_trace)
        assert fast_trace  # the run actually produced traffic
        assert fast_result.duration == slow_result.duration
        assert fast_result.messages_on_wire == slow_result.messages_on_wire
        assert fast_result.bytes_on_wire == slow_result.bytes_on_wire
        assert fast_result.total_comm_time == slow_result.total_comm_time
        assert fast_runner.net.fast_path_transfers == len(fast_trace)
        assert fast_runner.net.fallback_transfers == 0
        assert slow_runner.net.fallback_transfers == len(slow_trace)
        assert slow_runner.net.fast_path_transfers == 0

    def test_training_run_params_identical(self):
        """A real (non-timing-only) run: final parameters are bit-equal.

        The task is built fresh per run — training mutates it in place,
        so sharing one instance would compare run 2 against run 1's
        trained state instead of path A against path B.
        """

        def kwargs():
            return dict(
                cluster=cpu_cluster(3, n_servers=2),
                max_iter=8,
                sync=ssp(2),
                task=blobs_task(3, n_train=120, n_test=60),
                execution=ExecutionMode.SOFT_BARRIER,
                compute_model=LogNormalCompute(0.2),
                seed=11,
            )

        _, fast_result, _ = _run_traced(kwargs(), True)
        _, slow_result, _ = _run_traced(kwargs(), False)
        assert fast_result.final_params is not None
        assert np.array_equal(fast_result.final_params, slow_result.final_params)
        assert fast_result.duration == slow_result.duration


class TestPathSelection:
    def test_default_is_analytic(self):
        net = Network(Engine())
        assert net.analytic is True

    def test_fabric_cap_forces_fallback(self):
        eng = Engine()
        net = Network(eng, fabric_concurrency=2)
        assert net.analytic is False
        for n in ("a", "b"):
            net.add_node(n, NicSpec(bandwidth_Bps=1e8))
        net.send("a", "b", 1024)
        eng.run()
        assert net.fallback_transfers == 1
        assert net.fast_path_transfers == 0

    def test_analytic_with_fabric_rejected(self):
        with pytest.raises(ValueError):
            Network(Engine(), fabric_concurrency=2, analytic=True)

    def test_fabric_preset_runs_through_fallback(self):
        cluster = cpu_cluster(2, n_servers=1)
        cluster.fabric_concurrency = 1
        runner = FluentPSSimRunner(
            SimConfig(
                cluster=cluster,
                max_iter=3,
                sync=bsp(),
                workload=alexnet_cifar_workload(),
                compute_model=DeterministicCompute(),
            )
        )
        assert runner.net.analytic is False
        runner.run()
        assert runner.net.fallback_transfers > 0
        assert runner.net.fast_path_transfers == 0


class _RecordingEngine(Engine):
    """Engine that remembers spawned processes (for cancellation tests)."""

    def __init__(self):
        super().__init__()
        self.spawned = []

    def spawn(self, gen, name=""):
        proc = super().spawn(gen, name)
        self.spawned.append(proc)
        return proc


class TestInFlightAccounting:
    """Satellite: the gauges must survive cancelled or failing transfers."""

    def _net(self, eng, **kw):
        net = Network(eng, latency_s=50e-6, analytic=False, **kw)
        for n in ("a", "b"):
            net.add_node(n, NicSpec(bandwidth_Bps=1e6, overhead_s=10e-6))
        return net

    def test_cancelled_transfer_releases_gauges(self):
        eng = _RecordingEngine()
        net = self._net(eng)
        net.send("a", "b", 500_000)  # ~0.5 s on the wire
        eng.run(until=1e-3)
        assert net.messages_in_flight == 1
        xfer = next(p for p in eng.spawned if p.name == "xfer")
        xfer._gen.close()  # cancellation: GeneratorExit inside the process
        assert net.messages_in_flight == 0
        assert net.bytes_in_flight == 0
        assert net.total_messages == 0  # never delivered

    def test_failing_transfer_releases_gauges(self):
        eng = Engine()
        net = self._net(eng)

        # Endpoint is slotted, so poison the serialize-time memo instead of
        # monkeypatching the method: serialize_time consults this dict first.
        class _BoomMemo(dict):
            def get(self, key, default=None):
                raise RuntimeError("injected serialize failure")

        net.endpoint("b")._ser_times = _BoomMemo()
        net.send("a", "b", 1024)
        with pytest.raises(RuntimeError, match="injected"):
            eng.run()
        assert net.messages_in_flight == 0
        assert net.bytes_in_flight == 0


class TestTransferTimeEstimate:
    """Satellite: the documented uncontended contract."""

    def test_exact_for_lone_transfer_both_paths(self):
        for analytic in (True, False):
            eng = Engine()
            net = Network(eng, latency_s=75e-6, analytic=analytic)
            net.add_node("a", NicSpec(bandwidth_Bps=1e8, overhead_s=15e-6))
            net.add_node("b", NicSpec(bandwidth_Bps=2e8, overhead_s=25e-6))
            est = net.transfer_time_estimate("a", "b", 4096)
            done = net.send("a", "b", 4096)
            eng.run()
            assert done.payload.deliver_time == est

    def test_lower_bound_under_contention(self):
        eng = Engine()
        net = Network(eng, latency_s=50e-6)
        nic = NicSpec(bandwidth_Bps=1e8, overhead_s=10e-6)
        net.add_node("sink", nic)
        for i in range(4):
            net.add_node(f"w{i}", nic)
        est = net.transfer_time_estimate("w0", "sink", 64 * 1024)
        signals = [net.send(f"w{i}", "sink", 64 * 1024) for i in range(4)]
        eng.run()
        delivers = sorted(s.payload.deliver_time for s in signals)
        assert delivers[0] == est  # first one through is uncontended
        assert all(d >= est for d in delivers[1:])
        assert delivers[-1] > est  # the incast queue actually bit

    def test_lower_bound_with_fabric_cap(self):
        eng = Engine()
        net = Network(eng, latency_s=50e-6, fabric_concurrency=1)
        nic = NicSpec(bandwidth_Bps=1e8, overhead_s=10e-6)
        for n in ("a", "b", "c", "d"):
            net.add_node(n, nic)
        est_ab = net.transfer_time_estimate("a", "b", 8192)
        s1 = net.send("a", "b", 8192)
        s2 = net.send("c", "d", 8192)  # distinct lanes, shared fabric slot
        eng.run()
        assert s1.payload.deliver_time == est_ab
        # The second pair's lanes were free; only the fabric cap delayed
        # it — precisely the queueing the estimate does not model.
        assert s2.payload.deliver_time > net.transfer_time_estimate("c", "d", 8192)


class TestEnginePost:
    def test_post_runs_at_absolute_time(self):
        eng = Engine()
        seen = []
        eng.post(0.5, seen.append)
        eng.post(0.25, seen.append, "first")
        eng.run()
        assert seen == ["first", None]
        assert eng.now == 0.5

    def test_post_into_past_rejected(self):
        eng = Engine()
        eng.post(1.0, lambda _: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.post(0.5, lambda _: None)

    def test_post_fifo_at_ties(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.post(1e-3, seen.append, i)
        eng.run()
        assert seen == list(range(5))
