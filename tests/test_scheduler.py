"""Tests for the liveness/key-range scheduler."""

import pytest

from repro.core.keyspace import DefaultSlicer, ElasticSlicer
from repro.core.scheduler import Scheduler
from repro.ml.models_zoo import alexnet_cifar_spec


def make_scheduler(n=4, slicer=None, timeout=2.0):
    return Scheduler(
        alexnet_cifar_spec(), slicer or ElasticSlicer(chunk_elements=1 << 14),
        n_servers=n, heartbeat_timeout=timeout,
    )


class TestLiveness:
    def test_heartbeat_keeps_alive(self):
        sched = make_scheduler()
        for m in range(4):
            sched.heartbeat(m, now=1.0)
        assert sched.alive_servers(now=2.5) == [0, 1, 2, 3]

    def test_missed_heartbeat_drops_server(self):
        sched = make_scheduler()
        for m in range(4):
            sched.heartbeat(m, now=0.0)
        sched.heartbeat(0, now=5.0)
        assert sched.alive_servers(now=5.0) == [0]

    def test_check_liveness_marks_dead_and_reslices(self):
        sched = make_scheduler()
        for m in range(4):
            sched.heartbeat(m, now=0.0)
        sched.heartbeat(0, now=5.0)
        sched.heartbeat(1, now=5.0)
        dead = sched.check_liveness(now=5.0)
        assert sorted(dead) == [2, 3]
        assert sched.reassignments == 1

    def test_unknown_server_heartbeat(self):
        with pytest.raises(KeyError):
            make_scheduler().heartbeat(99, now=0.0)

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            make_scheduler(timeout=0.0)


class TestResize:
    def test_resize_produces_valid_partition(self):
        sched = make_scheduler(n=8)
        a = sched.resize(5)
        a.validate_partition(sched.model)
        assert sched.n_servers == 5

    def test_resize_tracks_movement(self):
        sched = make_scheduler(n=8)
        sched.resize(6)
        assert sched.total_moved_bytes > 0
        assert sched.reassignments == 1

    def test_eps_moves_less_than_default(self):
        eps = make_scheduler(n=8, slicer=ElasticSlicer(chunk_elements=1 << 14))
        default = make_scheduler(n=8, slicer=DefaultSlicer())
        eps.resize(7)
        default.resize(7)
        # EPS rebalances incrementally; default re-slicing may reshuffle.
        assert eps.total_moved_bytes <= max(default.total_moved_bytes, 1)

    def test_resize_invalid(self):
        with pytest.raises(ValueError):
            make_scheduler().resize(0)
