"""Tests for pull/push conditions (Table III semantics)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import (
    AllPushedPush,
    ASPPull,
    BSPPull,
    DSPSPull,
    FractionPush,
    PredicatePull,
    PredicatePush,
    PSSPPull,
    QuorumPush,
    SSPPull,
    SyncView,
)
from repro.core.pssp import ConstantProbability, DynamicProbability


def view(progress=0, v_train=0, n=4, count=None, significance=0.0, seed=0,
         fastest=None, slowest=None):
    return SyncView(
        progress=progress,
        worker=0,
        v_train=v_train,
        n_workers=n,
        count=count or {},
        fastest=fastest if fastest is not None else progress,
        slowest=slowest if slowest is not None else v_train - 1,
        significance=significance,
        rng=np.random.default_rng(seed),
    )


class TestSSPPull:
    def test_respond_below_threshold(self):
        cond = SSPPull(3)
        assert cond(view(progress=2, v_train=0))
        assert not cond(view(progress=3, v_train=0))
        assert cond(view(progress=3, v_train=1))

    def test_bsp_is_ssp_zero(self):
        bsp = BSPPull()
        assert bsp.s == 0
        assert not bsp(view(progress=0, v_train=0))
        assert bsp(view(progress=0, v_train=1))

    def test_asp_never_blocks(self):
        asp = ASPPull()
        assert asp(view(progress=10_000, v_train=0))
        assert math.isinf(asp.staleness())

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            SSPPull(-1)

    def test_describe(self):
        assert "BSP" in BSPPull().describe()
        assert "ASP" in ASPPull().describe()
        assert "SSP" in SSPPull(2).describe()

    @given(
        progress=st.integers(min_value=0, max_value=100),
        v_train=st.integers(min_value=0, max_value=100),
        s=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_table3_formula(self, progress, v_train, s):
        assert SSPPull(s)(view(progress=progress, v_train=v_train)) == (
            progress < v_train + s
        )


class TestPSSPPull:
    def test_below_threshold_always_passes(self):
        cond = PSSPPull(3, ConstantProbability(1.0))
        assert cond(view(progress=2, v_train=0))
        assert cond.coin_flips == 0

    def test_c1_reduces_to_ssp(self):
        cond = PSSPPull(3, ConstantProbability(1.0))
        for gap in range(3, 10):
            assert not cond(view(progress=gap, v_train=0, seed=gap))
        assert cond.paused == cond.coin_flips

    def test_c0_reduces_to_asp(self):
        cond = PSSPPull(3, ConstantProbability(0.0))
        for gap in range(3, 10):
            assert cond(view(progress=gap, v_train=0, seed=gap))
        assert cond.paused == 0

    def test_pause_rate_close_to_c(self):
        cond = PSSPPull(3, ConstantProbability(0.3))
        rng = np.random.default_rng(0)
        blocked = 0
        trials = 3000
        v = view(progress=5, v_train=0)
        v.rng = rng
        for _ in range(trials):
            if not cond(v):
                blocked += 1
        assert blocked / trials == pytest.approx(0.3, abs=0.03)

    def test_dynamic_probability_grows_with_gap(self):
        cond = PSSPPull(3, DynamicProbability(1.0))
        rng = np.random.default_rng(7)

        def block_rate(gap, trials=2000):
            v = view(progress=gap, v_train=0)
            v.rng = rng
            return sum(0 if cond(v) else 1 for _ in range(trials)) / trials

        assert block_rate(3) == pytest.approx(0.5, abs=0.05)
        assert block_rate(10) > block_rate(3)

    def test_invalid_staleness(self):
        with pytest.raises(ValueError):
            PSSPPull(-1, ConstantProbability(0.5))


class TestDSPSPull:
    def test_widens_under_high_block_rate(self):
        cond = DSPSPull(s0=2, s_min=1, s_max=8, window=10, hi_rate=0.25, lo_rate=0.05)
        for _ in range(10):
            cond(view(progress=50, v_train=0))  # always blocked
        assert cond.s == 3
        assert cond.adjustments == 1

    def test_narrows_under_low_block_rate(self):
        cond = DSPSPull(s0=4, s_min=1, s_max=8, window=10, hi_rate=0.25, lo_rate=0.05)
        for _ in range(10):
            cond(view(progress=0, v_train=5))  # never blocked
        assert cond.s == 3

    def test_respects_bounds(self):
        cond = DSPSPull(s0=1, s_min=1, s_max=2, window=5)
        for _ in range(30):
            cond(view(progress=0, v_train=5))
        assert cond.s == 1
        for _ in range(30):
            cond(view(progress=50, v_train=0))
        assert cond.s == 2

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DSPSPull(s0=0, s_min=1, s_max=4)
        with pytest.raises(ValueError):
            DSPSPull(window=0)
        with pytest.raises(ValueError):
            DSPSPull(hi_rate=0.1, lo_rate=0.5)


class TestPushConditions:
    def test_all_pushed(self):
        cond = AllPushedPush()
        assert not cond(view(progress=0, v_train=0, n=4, count={0: 3}))
        assert cond(view(progress=0, v_train=0, n=4, count={0: 4}))

    def test_all_pushed_reads_frontier_iteration(self):
        cond = AllPushedPush()
        assert not cond(view(progress=0, v_train=2, n=4, count={0: 4, 1: 4, 2: 1}))
        assert cond(view(progress=0, v_train=2, n=4, count={2: 4}))

    def test_quorum(self):
        cond = QuorumPush(3)
        assert not cond(view(v_train=0, n=8, count={0: 2}))
        assert cond(view(v_train=0, n=8, count={0: 3}))
        assert cond(view(v_train=0, n=8, count={0: 7}))

    def test_quorum_invalid(self):
        with pytest.raises(ValueError):
            QuorumPush(0)

    def test_fraction_push(self):
        cond = FractionPush(0.75, 8)
        assert cond.n_t == 6
        with pytest.raises(ValueError):
            FractionPush(0.0, 8)

    def test_describe(self):
        assert "N_t" in QuorumPush(3).describe()
        assert "== N" in AllPushedPush().describe()


class TestPredicateAdapters:
    def test_predicate_pull(self):
        cond = PredicatePull(lambda v: v.gap < 5, staleness=5, name="my")
        assert cond(view(progress=4, v_train=0))
        assert not cond(view(progress=5, v_train=0))
        assert cond.staleness() == 5
        assert "my" in cond.describe()

    def test_predicate_push(self):
        cond = PredicatePush(lambda v: v.pushed(v.v_train) >= 2)
        assert cond(view(v_train=1, count={1: 2}))
        assert not cond(view(v_train=1, count={1: 1}))


class TestSyncView:
    def test_gap(self):
        assert view(progress=7, v_train=3).gap == 4

    def test_pushed_default_zero(self):
        assert view().pushed(99) == 0
