"""Tests for cluster specifications and presets."""

import pytest

from repro.sim.cluster import GBPS, ClusterSpec, NodeSpec, cpu_cluster, gpu_cluster_p2
from repro.sim.engine import Engine
from repro.sim.network import NicSpec


class TestNodeSpec:
    def test_invalid_flops(self):
        with pytest.raises(ValueError):
            NodeSpec("n", flops=0, nic=NicSpec(bandwidth_Bps=1.0))


class TestClusterSpec:
    def test_requires_workers_and_servers(self):
        nic = NicSpec(bandwidth_Bps=1.0)
        node = NodeSpec("n", 1.0, nic)
        with pytest.raises(ValueError):
            ClusterSpec("c", workers=[], servers=[node])
        with pytest.raises(ValueError):
            ClusterSpec("c", workers=[node], servers=[])

    def test_make_network_registers_all_nodes(self):
        spec = cpu_cluster(3, n_servers=2)
        net = spec.make_network(Engine())
        assert len(net.endpoints) == 5
        assert spec.worker_id(0) in net.endpoints
        assert spec.server_id(1) in net.endpoints


class TestPresets:
    def test_gpu_preset_shape(self):
        spec = gpu_cluster_p2(8)
        assert spec.n_workers == 8
        assert spec.n_servers == 8
        assert all(n.kind == "gpu" for n in spec.workers)
        assert spec.workers[0].flops > spec.servers[0].flops

    def test_cpu_preset_shape(self):
        spec = cpu_cluster(16, n_servers=1)
        assert spec.n_workers == 16
        assert spec.n_servers == 1
        assert spec.workers[0].nic.bandwidth_Bps == pytest.approx(1.0 * GBPS)

    def test_unique_node_names(self):
        spec = gpu_cluster_p2(4, 2)
        names = [n.name for n in spec.workers + spec.servers]
        assert len(set(names)) == len(names)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            gpu_cluster_p2(0)
        with pytest.raises(ValueError):
            cpu_cluster(0)

    def test_compute_to_network_ratio_orders_clusters(self):
        """The GPU cluster is compute-rich per byte of NIC; the CPU
        cluster is network-starved — the property behind Fig 6 vs 10."""
        gpu = gpu_cluster_p2(8)
        cpu = cpu_cluster(8)
        gpu_ratio = gpu.workers[0].flops / gpu.workers[0].nic.bandwidth_Bps
        cpu_ratio = cpu.workers[0].flops / cpu.workers[0].nic.bandwidth_Bps
        assert gpu_ratio > cpu_ratio
