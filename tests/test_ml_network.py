"""Tests for network containers and the flat-parameter contract."""

import numpy as np
import pytest

from repro.ml.layers import Dense, ReLU
from repro.ml.loss import softmax_cross_entropy
from repro.ml.models_zoo import (
    alexnet_cifar_spec,
    mini_alexnet,
    mlp,
    resnet_cifar,
    resnet_cifar_spec,
)
from repro.ml.network import ResidualBlock, Sequential
from tests.test_ml_layers import numerical_grad_input


class TestFlatContract:
    def test_roundtrip(self, rng):
        net = mlp(5, [7], 3, rng)
        flat = net.get_flat()
        assert flat.shape == (net.n_params,)
        net.set_flat(np.zeros_like(flat))
        assert net.get_flat().sum() == 0
        net.set_flat(flat)
        np.testing.assert_array_equal(net.get_flat(), flat)

    def test_set_flat_in_place(self, rng):
        net = mlp(3, [4], 2, rng)
        w_before = net.layers[0].params["W"]
        net.set_flat(np.ones(net.n_params))
        assert net.layers[0].params["W"] is w_before

    def test_wrong_size_rejected(self, rng):
        net = mlp(3, [4], 2, rng)
        with pytest.raises(ValueError):
            net.set_flat(np.zeros(net.n_params + 1))

    def test_grads_flat_matches_params_layout(self, rng):
        net = mlp(4, [5], 3, rng)
        x = rng.normal(size=(6, 4))
        loss, dl = softmax_cross_entropy(net.forward(x), rng.integers(0, 3, size=6))
        net.backward(dl)
        g = net.get_flat_grads()
        assert g.shape == (net.n_params,)
        # Perturbing along -g must reduce the loss (descent direction).
        flat = net.get_flat()
        net.set_flat(flat - 0.05 * g)
        loss2, _ = softmax_cross_entropy(
            net.forward(x), rng.integers(0, 3, size=6)
        )  # different labels; recompute with same labels below
        net.set_flat(flat)

    def test_model_spec_matches_params(self, rng):
        net = mlp(4, [5], 3, rng)
        spec = net.model_spec("m")
        assert spec.total_elements == net.n_params
        names = [t.name for t in spec.tensors]
        assert len(set(names)) == len(names)

    def test_tensor_slices_cover_flat(self, rng):
        net = mlp(4, [5, 6], 3, rng)
        slices = net.tensor_slices()
        assert slices[0][0] == 0
        assert slices[-1][1] == net.n_params
        for (a, b), (c, d) in zip(slices[:-1], slices[1:]):
            assert b == c


class TestSequential:
    def test_forward_backward_chain(self, rng):
        net = Sequential([Dense(3, 4, rng), ReLU(), Dense(4, 2, rng)])
        x = rng.normal(size=(5, 3))
        y = net.forward(x)
        assert y.shape == (5, 2)
        dy = rng.normal(size=y.shape)
        dx = net.backward(dy)
        assert dx.shape == x.shape

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_whole_network_gradient(self, rng):
        net = Sequential([Dense(3, 4, rng), ReLU(), Dense(4, 2, rng)])
        x = rng.normal(size=(4, 3))
        y = net.forward(x)
        dy = rng.normal(size=y.shape)
        dx = net.backward(dy)

        class _Wrap:
            def forward(self, x, train=True):
                return net.forward(x, train)

        np.testing.assert_allclose(dx, numerical_grad_input(_Wrap(), x, dy), atol=1e-5)


class TestResidualBlock:
    def test_identity_shortcut_shapes(self, rng):
        block = ResidualBlock(4, 4, rng, use_bn=False)
        x = rng.normal(size=(2, 4, 6, 6))
        assert block.forward(x).shape == x.shape

    def test_projection_shortcut_shapes(self, rng):
        block = ResidualBlock(4, 8, rng, stride=2, use_bn=False)
        x = rng.normal(size=(2, 4, 6, 6))
        assert block.forward(x).shape == (2, 8, 3, 3)
        assert block.proj is not None

    def test_gradient_identity_block(self, rng):
        block = ResidualBlock(2, 2, rng, use_bn=False)
        x = rng.normal(size=(2, 2, 4, 4))
        y = block.forward(x)
        dy = rng.normal(size=y.shape)
        dx = block.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(block, x, dy), atol=1e-5)

    def test_gradient_projection_block(self, rng):
        block = ResidualBlock(2, 4, rng, stride=2, use_bn=False)
        x = rng.normal(size=(2, 2, 4, 4))
        y = block.forward(x)
        dy = rng.normal(size=y.shape)
        dx = block.backward(dy)
        np.testing.assert_allclose(dx, numerical_grad_input(block, x, dy), atol=1e-5)

    def test_backward_before_forward(self, rng):
        with pytest.raises(RuntimeError):
            ResidualBlock(2, 2, rng).backward(np.zeros((1, 2, 4, 4)))


class TestModelZoo:
    def test_resnet56_parameter_count(self):
        # He et al. report ~0.85M parameters for ResNet-56 on CIFAR.
        spec = resnet_cifar_spec(56)
        assert 0.8e6 < spec.total_elements < 0.9e6

    def test_resnet_depth_validation(self):
        with pytest.raises(ValueError):
            resnet_cifar(10)  # not 6n+2

    def test_resnet_forward(self, rng):
        net = resnet_cifar(8, width=4, use_bn=False, rng=rng)
        x = rng.normal(size=(2, 3, 8, 8))
        assert net.forward(x).shape == (2, 10)

    def test_resnet_residual_params_included(self, rng):
        net = resnet_cifar(8, width=4, use_bn=False, rng=rng)
        spec = net.model_spec("r")
        assert spec.total_elements == net.n_params
        flat = net.get_flat()
        net.set_flat(flat * 0)
        assert all(
            arr.sum() == 0 for _n, arr in net.param_items()
        )

    def test_mini_alexnet_forward(self, rng):
        net = mini_alexnet(rng=rng, size=16)
        x = rng.normal(size=(2, 3, 16, 16))
        assert net.forward(x).shape == (2, 10)

    def test_alexnet_spec_dominated_by_fc1(self):
        spec = alexnet_cifar_spec()
        fc1 = spec.tensor("fc1.W").elements
        assert fc1 / spec.total_elements > 0.8
