"""Tests for the sweep executor and its deterministic run cache."""

import json

import pytest

from repro.bench import figures
from repro.bench.harness import TINY, ExperimentResult
from repro.bench.pool import (
    CACHE_SCHEMA,
    RunCache,
    RunTask,
    SweepExecutor,
    WorkerFailure,
    _sanitized_call,
    code_fingerprint,
    derive_task_seed,
    run_sweep,
)


def _tiny_arm(tag: str, seed: int) -> ExperimentResult:
    """A fast, deterministic arm for executor tests."""
    frag = ExperimentResult(f"pool-test/{tag}", headers=[])
    frag.add_row(tag, seed, seed * 2.5)
    frag.record(tag, seed=float(seed))
    return frag


def _boom(tag: str, seed: int) -> ExperimentResult:
    raise ValueError(f"kaboom in {tag}")


def _sleepy(tag: str, seed: int) -> ExperimentResult:
    import time

    time.sleep(30.0)
    return _tiny_arm(tag, seed)


def _task(fn=_tiny_arm, tag="a", seed=1, timeout=None) -> RunTask:
    return RunTask(fn=fn, kwargs={"tag": tag, "seed": seed},
                   key=f"pool-test/{tag}", timeout=timeout)


class TestDerivedSeeds:
    def test_stable_golden_value(self):
        # Pinned: a change here silently invalidates every committed result.
        assert derive_task_seed("fig7", "N8", 0) == derive_task_seed("fig7", "N8", 0)
        assert derive_task_seed("fig7", "N8", 0) == 1089719681

    def test_in_31_bit_range(self):
        for seed in (0, 1, 2**31, -7):
            assert 0 <= derive_task_seed("e", "v", seed) < 2**31

    def test_sensitive_to_every_component(self):
        base = derive_task_seed("fig7", "N8", 0)
        assert derive_task_seed("fig9", "N8", 0) != base
        assert derive_task_seed("fig7", "N16", 0) != base
        assert derive_task_seed("fig7", "N8", 1) != base


class TestFingerprints:
    def test_task_fingerprint_tracks_inputs(self):
        a, b = _task(seed=1), _task(seed=2)
        assert a.fingerprint() != b.fingerprint()
        assert _task(seed=1).fingerprint() == a.fingerprint()
        assert _task(fn=_boom).fingerprint() != a.fingerprint()

    def test_fingerprint_handles_rich_kwargs(self):
        t = RunTask(fn=_tiny_arm, kwargs={"scale": TINY, "params": {"s": 3}})
        assert t.fingerprint() == RunTask(
            fn=_tiny_arm, kwargs={"params": {"s": 3}, "scale": TINY}
        ).fingerprint()

    def test_code_fingerprint_tracks_source(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = code_fingerprint(tmp_path)
        assert before == code_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        assert code_fingerprint(tmp_path) != before


class TestRunCache:
    def test_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path))
        task = _task()
        digest = cache.key_for(task)
        assert cache.get(digest) is None
        result = _tiny_arm("a", 1)
        cache.put(digest, task, result.to_dict())
        assert ExperimentResult.from_dict(cache.get(digest)).to_json() == result.to_json()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(str(tmp_path))
        digest = cache.key_for(_task())
        path = cache._path(digest)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(digest) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = RunCache(str(tmp_path))
        digest = cache.key_for(_task())
        path = cache._path(digest)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": CACHE_SCHEMA + 1, "result": {}}))
        assert cache.get(digest) is None


class TestSweepExecutor:
    def test_inline_matches_pooled(self):
        tasks = [_task(tag=t, seed=i) for i, t in enumerate("abcd")]
        inline = run_sweep(tasks)
        with SweepExecutor(jobs=2) as pool:
            pooled = pool.map(tasks)
        assert [r.to_json() for r in inline] == [r.to_json() for r in pooled]

    def test_results_in_submission_order(self):
        tasks = [_task(tag=t, seed=i) for i, t in enumerate("zyx")]
        with SweepExecutor(jobs=2) as pool:
            out = pool.map(tasks)
        assert [r.experiment for r in out] == [f"pool-test/{t}" for t in "zyx"]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_transported_with_traceback(self, jobs):
        with SweepExecutor(jobs=jobs) as pool:
            with pytest.raises(WorkerFailure) as exc_info:
                pool.map([_task(fn=_boom, tag="bad")])
        failure = exc_info.value
        assert failure.key == "pool-test/bad"
        assert "kaboom in bad" in str(failure)
        assert "ValueError" in failure.remote_traceback

    def test_one_bad_task_does_not_block_siblings(self, tmp_path):
        cache = RunCache(str(tmp_path))
        tasks = [_task(tag="ok", seed=3), _task(fn=_boom, tag="bad")]
        with SweepExecutor(jobs=2, cache=cache) as pool:
            with pytest.raises(WorkerFailure):
                pool.map(tasks)
            # The sibling still ran and landed in the cache.
            assert cache.get(cache.key_for(tasks[0])) is not None
            assert pool.stats.executed == 2
            assert pool.stats.failed == 1

    def test_per_task_timeout(self):
        with SweepExecutor(jobs=2) as pool:
            with pytest.raises(WorkerFailure, match="timed out"):
                pool.map([_task(fn=_sleepy, tag="slow", timeout=0.5)])

    def test_cache_hit_on_second_map(self, tmp_path):
        cache = RunCache(str(tmp_path))
        tasks = [_task(tag=t) for t in "ab"]
        with SweepExecutor(jobs=1, cache=cache) as pool:
            first = pool.map(tasks)
            assert (pool.stats.cache_hits, pool.stats.cache_misses) == (0, 2)
            second = pool.map(tasks)
            assert (pool.stats.cache_hits, pool.stats.cache_misses) == (2, 2)
        assert [r.to_json() for r in first] == [r.to_json() for r in second]

    def test_stats_reported_to_ambient_registry(self, tmp_path):
        from repro.obs import MetricsRegistry, Observability, observed

        obs = Observability(MetricsRegistry("pool-test"))
        with observed(obs):
            with SweepExecutor(jobs=1, cache=RunCache(str(tmp_path))) as pool:
                pool.map([_task()])
                pool.map([_task()])
        counter = obs.registry.counter("bench_pool_tasks", "")
        assert counter.value(outcome="cache_miss") == 1
        assert counter.value(outcome="cache_hit") == 1
        assert counter.value(outcome="executed") == 1


class TestSanitizeInWorkers:
    def test_sanitized_call_checks_real_events(self):
        seed = derive_task_seed("fig7", "N2", 0)
        result, n_events = _sanitized_call(
            figures._fig7_arm, {"scale": TINY, "n": 2, "seed": seed}
        )
        assert n_events > 0
        assert result.to_json() == figures._fig7_arm(TINY, 2, seed).to_json()

    def test_executor_sanitizes_inside_workers(self):
        seed = derive_task_seed("fig7", "N2", 0)
        task = RunTask(
            fn=figures._fig7_arm,
            kwargs={"scale": TINY, "n": 2, "seed": seed},
            key="fig7/N2",
        )
        with SweepExecutor(jobs=2, sanitize=True) as pool:
            (pooled,) = pool.map([task])
        assert pooled.to_json() == figures._fig7_arm(TINY, 2, seed).to_json()


class TestExperimentDeterminism:
    def test_cli_jobs1_matches_jobs4(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        d1, d4 = tmp_path / "j1", tmp_path / "j4"
        common = ["--scale", "tiny", "--only", "fig7", "fig10", "--no-cache"]
        assert main([*common, "--jobs", "1", "--save-dir", str(d1)]) == 0
        assert main([*common, "--jobs", "4", "--save-dir", str(d4)]) == 0
        capsys.readouterr()
        files = sorted(p.name for p in d1.glob("*.json"))
        assert files == sorted(p.name for p in d4.glob("*.json")) and files
        for name in files:
            assert (d1 / name).read_bytes() == (d4 / name).read_bytes()

    def test_warm_cache_reproduces_cold_bytes(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        save, cache = tmp_path / "out", tmp_path / "cache"
        common = ["--scale", "tiny", "--only", "fig7", "--save-dir", str(save),
                  "--cache-dir", str(cache)]
        assert main(common) == 0
        cold = {p.name: p.read_bytes() for p in save.glob("*.json")}
        assert main(common) == 0
        out = capsys.readouterr().out
        assert "cache_misses=0" in out.rsplit("[pool:", 1)[-1]
        assert {p.name: p.read_bytes() for p in save.glob("*.json")} == cold

    def test_cli_reports_worker_failure_and_continues(self, tmp_path, capsys,
                                                      monkeypatch):
        from repro.bench import __main__ as bench_main

        def fail(scale, seed, pool):
            return pool.map([_task(fn=_boom, tag="cli")])

        monkeypatch.setitem(bench_main.EXPERIMENTS, "fig7", fail)
        rc = bench_main.main([
            "--scale", "tiny", "--only", "fig7", "fig10", "--no-cache",
            "--save-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "fig7: FAILED" in out
        assert "kaboom" in out
        # fig10 still ran and saved despite fig7's failure.
        assert any("figure_10" in p.name for p in tmp_path.glob("*.json"))
