"""Tests for the SpecSync baseline."""

import numpy as np
import pytest

from repro.baselines.specsync import SpecSyncConfig, SpecSyncRunner, run_specsync
from repro.bench.workloads import blobs_task
from repro.core.models import asp
from repro.sim.cluster import cpu_cluster
from repro.sim.runner import SimConfig
from repro.sim.stragglers import DeterministicCompute, HeterogeneousCompute


def make_config(n=4, iters=40, threshold=3, sync=None, compute=None, task=True,
                slices=4, seed=0):
    sim = SimConfig(
        cluster=cpu_cluster(n, 1),
        max_iter=iters,
        sync=sync or asp(),
        task=blobs_task(n, n_train=200, n_test=60, seed=seed) if task else None,
        workload=None if task else __import__(
            "repro.ml.models_zoo", fromlist=["alexnet_cifar_workload"]
        ).alexnet_cifar_workload(),
        seed=seed + 1,
        base_compute_time=0.4,
        compute_model=compute or HeterogeneousCompute(n, spread=0.4),
    )
    return SpecSyncConfig(sim=sim, abort_threshold=threshold, abort_check_slices=slices)


class TestConfig:
    def test_validation(self):
        cfg = make_config()
        with pytest.raises(ValueError):
            SpecSyncConfig(sim=cfg.sim, abort_threshold=0)
        with pytest.raises(ValueError):
            SpecSyncConfig(sim=cfg.sim, abort_check_slices=0)

    def test_model_list_rejected(self):
        cfg = make_config()
        sim = cfg.sim
        object.__setattr__(sim, "sync", None)  # dataclass not frozen; set directly
        sim.sync = [asp()]
        with pytest.raises(ValueError, match="one global model"):
            SpecSyncRunner(SpecSyncConfig(sim=sim))


class TestExecution:
    def test_completes_and_trains(self):
        r = run_specsync(make_config())
        assert r.iterations == 40
        assert np.isfinite(r.final_params).all()

    def test_aborts_occur_under_heterogeneity(self):
        runner = SpecSyncRunner(make_config(n=6, iters=60, threshold=3))
        runner.run()
        assert runner.aborts > 0
        assert runner.wasted_compute > 0

    def test_high_threshold_means_no_aborts(self):
        runner = SpecSyncRunner(make_config(n=4, iters=30, threshold=10**6))
        r = runner.run()
        assert runner.aborts == 0
        assert r.iterations == 30

    def test_deterministic_compute_few_aborts(self):
        # With lockstep workers, freshness accumulates evenly; a threshold
        # above N-1 never trips between a worker's own pulls.
        runner = SpecSyncRunner(
            make_config(n=4, iters=30, threshold=4, compute=DeterministicCompute())
        )
        runner.run()
        assert runner.aborts == 0

    def test_aborts_slow_the_run_down(self):
        fast = run_specsync(make_config(n=6, iters=50, threshold=10**6, seed=3))
        churn = run_specsync(make_config(n=6, iters=50, threshold=2, seed=3))
        assert churn.duration > fast.duration

    def test_timing_only_mode(self):
        r = run_specsync(make_config(task=False, n=4, iters=20))
        assert r.final_params is None
        assert r.duration > 0
