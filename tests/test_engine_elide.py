"""Differential tests: protocol-quiet elision vs event-by-event service.

``Engine(elide=False)`` is the oracle: elision's correctness claim is
*exact* semantic equivalence — a same-instant run of elidable process
resumes batch-served inside a quiet region must produce the same
observation stream, byte for byte, as serving each resume through the
full per-event clock/merge/sweep bookkeeping.  These tests run identical
seeded programs through both engines (heap regime and calendar-window
regime), force mid-region cancels and same-instant re-posts (the two
invalidation triggers that must break a region back to event-by-event
service), and then compare entire co-simulated training runs on every
cluster preset × sync model × compute model cell — delivery traces,
protocol instant streams, durations, and trained parameters.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import blobs_task
from repro.core.models import ssp
from repro.core.server import ExecutionMode
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.obs import MetricsRegistry, Observability
from repro.sim.cluster import cpu_cluster
from repro.sim.engine import Engine
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.stragglers import DeterministicCompute, LogNormalCompute

from tests.test_engine_fastforward import _preset_configs


def _wave_program(n, waves, seed, jitter_frac=0.0, plain_frac=0.0):
    """Build-callable: ``n`` elidable processes resuming in lockstep waves.

    Every process yields the same per-wave delay, so each wave is one
    same-instant run of elidable resumes — the protocol-quiet shape the
    runner produces when homogeneous workers finish compute together.
    ``jitter_frac`` desynchronizes that fraction of the processes
    (regions must simply not form there); ``plain_frac`` interleaves
    non-elidable processes at the same instants (regions must break
    around them, stream unchanged).
    """
    rng = np.random.default_rng(seed)
    jittered = rng.random(n) < jitter_frac
    delays = [float(d) for d in rng.uniform(0.5, 2.5, size=waves)]
    offsets = [float(o) for o in rng.uniform(1e-4, 1e-2, size=n)]
    n_plain = int(round(n * plain_frac))

    def build(eng, seen):
        def worker(i):
            for k, d in enumerate(delays):
                yield d + (offsets[i] if jittered[i] else 0.0)
                seen.append((eng.now, i, k))

        def bystander(i):
            for k, d in enumerate(delays):
                yield d
                seen.append((eng.now, ["plain", i], k))

        for i in range(n):
            eng.spawn(worker(i), name=f"w{i}", elidable=True)
        for i in range(n_plain):
            eng.spawn(bystander(i), name=f"p{i}")

    return build


def _run_both(build, **fast_kw):
    fast = Engine(**fast_kw)
    slow = Engine(elide=False, **fast_kw)
    seen_fast, seen_slow = [], []
    build(fast, seen_fast)
    build(slow, seen_slow)
    fast.run()
    slow.run()
    return fast, slow, seen_fast, seen_slow


class TestSeededDifferential:
    """Seeded lockstep programs through both engines, both queue regimes."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_byte_identical_stream_heap_regime(self, seed):
        build = _wave_program(200, waves=5, seed=seed)
        fast, slow, seen_fast, seen_slow = _run_both(build)
        # Serialize through JSON so the comparison is on bytes, not on
        # float objects that might compare equal after rounding.
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert seen_fast  # the program actually produced observations
        assert fast.events_elided > 0
        assert fast.quiet_regions > 0
        assert slow.events_elided == 0 == slow.quiet_regions
        assert fast.now == slow.now
        assert fast.events_processed == slow.events_processed

    @pytest.mark.parametrize("seed", [3, 4])
    def test_byte_identical_stream_window_regime(self, seed):
        # A near-zero calendar threshold forces sweeps, so the waves are
        # served out of the presorted fast-forward window (the regime the
        # 10k/100k macros actually run in).
        build = _wave_program(600, waves=4, seed=seed)
        fast, slow, seen_fast, seen_slow = _run_both(build, calendar_threshold=64)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.calendar_sweeps >= 1 <= slow.calendar_sweeps
        assert fast.events_elided > 0
        assert fast.quiet_regions > 0
        assert slow.events_elided == 0
        assert fast.now == slow.now
        assert fast.events_processed == slow.events_processed

    @pytest.mark.parametrize("seed", [5, 6])
    def test_jitter_and_plain_interleaving(self, seed):
        """Half the workers desynchronized, non-elidable processes landing
        at the quiet instants: regions must shrink/break, never corrupt."""
        build = _wave_program(120, waves=6, seed=seed, jitter_frac=0.5, plain_frac=0.25)
        fast, slow, seen_fast, seen_slow = _run_both(build)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.events_elided > 0  # the synchronized half still elides
        assert fast.now == slow.now

    def test_non_elidable_spawns_never_elide(self):
        """Same lockstep program, but nothing is declared elidable: the
        engine must not batch-serve anything."""
        rng_delays = [1.0, 2.0, 3.0]

        def build(eng, seen):
            def worker(i):
                for k, d in enumerate(rng_delays):
                    yield d
                    seen.append((eng.now, i, k))

            for i in range(50):
                eng.spawn(worker(i), name=f"w{i}")

        fast, slow, seen_fast, seen_slow = _run_both(build)
        assert seen_fast == seen_slow
        assert fast.events_elided == 0 == fast.quiet_regions


class TestRegionInvalidation:
    """Cancels and same-instant re-posts must break the region."""

    def _lockstep(self, n, action_at=None, action=None):
        """One wave of ``n`` elidable resumes at t=1; the ``action_at``-th
        resume fires ``action(eng)`` from inside the quiet region."""
        victims = {}

        def build(eng, seen):
            def worker(i):
                yield 1.0
                seen.append((eng.now, i))
                if action is not None and i == action_at:
                    action(eng, seen)

            for i in range(n):
                eng.spawn(worker(i), name=f"w{i}", elidable=True)
            # A far-future victim event for the cancel action, keyed per
            # engine — both engines build from this one callable.
            victims[id(eng)] = eng.schedule(
                50.0, lambda: seen.append((eng.now, "victim"))
            )

        build.victims = victims
        return build

    def test_single_wave_is_two_regions(self):
        # Two quiet regions: the t=0 spawn resumes and the t=1 wave.
        build = self._lockstep(40)
        fast, slow, seen_fast, seen_slow = _run_both(build)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.quiet_regions == 2
        assert fast.events_elided == 80

    def test_mid_region_cancel_breaks_region(self):
        """A cancel fired from inside the region turns the tombstone set
        truthy; the drain must fall back to event-by-event service (the
        boundary scan) and still match the oracle byte for byte."""

        def cancel(eng, seen):
            cancel.build.victims[id(eng)].cancel()

        build = self._lockstep(40, action_at=10, action=cancel)
        cancel.build = build
        fast, slow, seen_fast, seen_slow = _run_both(build)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        # The t=1 wave fragmented: more regions, fewer elided in total
        # than the unbroken run above.
        assert fast.quiet_regions > 2
        assert fast.events_elided < 80
        assert not any(obs[1] == "victim" for obs in seen_fast)

    def test_mid_region_same_instant_repost_is_exact(self):
        """A callback scheduling new work at the *current* instant from
        inside the region: the new event carries a higher seq, so it must
        run after the remaining same-instant elidable resumes — in both
        engines, byte-identically."""

        def repost(eng, seen):
            eng.schedule(0.0, lambda: seen.append((eng.now, "reposted")))

        build = self._lockstep(40, action_at=10, action=repost)
        fast, slow, seen_fast, seen_slow = _run_both(build)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        # The re-post ran at the quiet instant, after every worker.
        tail = seen_fast[-2]
        assert tail[1] == "reposted" and tail[0] == 1.0

    def test_mid_region_repost_in_window_regime_falls_back(self):
        """Window regime: a same-instant re-post lands in the ingest heap
        and must conservatively break the batch run (window seqs predate
        heap seqs, but the drain cannot assume that mid-region)."""

        def build(eng, seen):
            def worker(i):
                yield 1.0
                seen.append((eng.now, i))
                if i == 100:
                    eng.schedule(0.0, lambda: seen.append((eng.now, "re")))

            for i in range(400):
                eng.spawn(worker(i), name=f"w{i}", elidable=True)
            # Padding events beyond the wave so the sweep has a span.
            for i in range(200):
                eng.call_at(5.0 + 0.01 * i, seen.append, ("pad", i))

        fast, slow, seen_fast, seen_slow = _run_both(build, calendar_threshold=32)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.calendar_sweeps >= 1
        assert ("re" in {obs[1] for obs in seen_fast if len(obs) == 2})

    @given(
        n=st.integers(min_value=2, max_value=24),
        action_at=st.integers(min_value=0, max_value=23),
        action_name=st.sampled_from(["none", "cancel", "repost"]),
        threshold=st.sampled_from([None, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_mid_region_actions_preserve_stream(
        self, n, action_at, action_name, threshold
    ):
        """Any mid-region cancel or same-instant re-post, at any position,
        in either queue regime: the elided stream equals the oracle."""
        action_at = action_at % n

        def cancel(eng, seen):
            cancel.build.victims[id(eng)].cancel()

        def repost(eng, seen):
            eng.schedule(0.0, lambda: seen.append((eng.now, "re")))

        action = {"none": None, "cancel": cancel, "repost": repost}[action_name]
        build = self._lockstep(n, action_at=action_at, action=action)
        cancel.build = build
        kw = {} if threshold is None else {"calendar_threshold": threshold}
        fast, slow, seen_fast, seen_slow = _run_both(build, **kw)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.now == slow.now
        assert fast.events_processed == slow.events_processed
        assert fast.pending_events == 0 == slow.pending_events
        if action_name == "none":
            if threshold is None:
                assert fast.events_elided == 2 * n  # the t=0 and t=1 waves
            else:
                # Post-sweep, a wave re-ingested through the heap-vs-window
                # merge is served singly (conservatively, no elision), so
                # only the windowed wave is guaranteed to batch.
                assert fast.events_elided >= n
        assert slow.events_elided == 0


def _run_elide(cfg_kwargs, elide, **extra):
    """One full run with a delivery trace and protocol instant stream."""
    obs = Observability(MetricsRegistry("elide" if elide else "oracle"))
    cfg = SimConfig(engine_elide=elide, obs=obs, **extra, **cfg_kwargs)
    runner = FluentPSSimRunner(cfg)
    trace = []
    runner.net.on_delivery(
        lambda m: trace.append(
            (m.msg_id, m.src, m.dst, m.tag, m.size_bytes, m.send_time, m.deliver_time)
        )
    )
    result = runner.run()
    # Server uids come from a process-global counter, so two consecutive
    # runs never share raw values; remap to dense first-seen ids (the
    # identity structure is what the protocol stream cares about).
    uid_map = {}
    instants = []
    for e in obs.instants:
        args = dict(e.args)
        if "uid" in args:
            args["uid"] = uid_map.setdefault(args["uid"], len(uid_map))
        instants.append((e.name, e.t, e.actor, args))
    return trace, instants, result, runner


class TestRunnerDifferential:
    """Entire co-simulated runs: elide default vs ``engine_elide=False``."""

    # Explicit Observability below; the ambient conftest bundle would
    # double-report the same stream.
    pytestmark = pytest.mark.no_sanitize

    @pytest.mark.parametrize("cfg_kwargs", _preset_configs())
    def test_run_traces_identical(self, cfg_kwargs):
        e_trace, e_instants, e_result, e_runner = _run_elide(cfg_kwargs, True)
        o_trace, o_instants, o_result, o_runner = _run_elide(cfg_kwargs, False)
        assert json.dumps(e_trace) == json.dumps(o_trace)
        assert e_trace  # the run actually produced traffic
        # The S001..S016 protocol event stream is byte-identical too.
        assert json.dumps(e_instants, default=str) == json.dumps(
            o_instants, default=str
        )
        assert e_instants
        assert e_result.duration == o_result.duration
        assert e_result.messages_on_wire == o_result.messages_on_wire
        assert e_result.bytes_on_wire == o_result.bytes_on_wire
        assert e_runner.engine.events_processed == o_runner.engine.events_processed
        assert o_runner.engine.events_elided == 0 == o_runner.engine.quiet_regions

    def test_homogeneous_workers_actually_elide(self):
        """Deterministic compute at 8 workers: every wave of compute
        completions is one quiet region, so the counters must move."""
        kwargs = dict(
            cluster=cpu_cluster(8, n_servers=2),
            max_iter=4,
            sync=ssp(3),
            workload=alexnet_cifar_workload(),
            compute_model=DeterministicCompute(),
            seed=9,
        )
        _, _, _, e_runner = _run_elide(kwargs, True)
        assert e_runner.engine.elide_enabled is True
        assert e_runner.engine.events_elided > 0
        assert e_runner.engine.quiet_regions > 0

    def test_training_run_params_identical(self):
        """A real (non-timing-only) soft-barrier run: final parameters
        must be bit-equal.  The task is built fresh per run — training
        mutates it in place."""

        def kwargs():
            return dict(
                cluster=cpu_cluster(3, n_servers=2),
                max_iter=8,
                sync=ssp(2),
                task=blobs_task(3, n_train=120, n_test=60),
                execution=ExecutionMode.SOFT_BARRIER,
                compute_model=LogNormalCompute(0.2),
                seed=11,
            )

        _, _, e_result, _ = _run_elide(kwargs(), True)
        _, _, o_result, _ = _run_elide(kwargs(), False)
        assert e_result.final_params is not None
        assert np.array_equal(e_result.final_params, o_result.final_params)
        assert e_result.duration == o_result.duration

    def test_oracle_flag_reported(self):
        eng = Engine(elide=False)
        assert eng.elide_enabled is False
        eng2 = Engine()
        assert eng2.elide_enabled is True
