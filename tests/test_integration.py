"""Cross-module integration tests: full pipelines at small scale."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.pslite import run_pslite
from repro.baselines.sspable import SSPTableConfig, run_ssptable
from repro.bench.workloads import blobs_task
from repro.core import (
    ExecutionMode,
    ParameterServerSystem,
    VirtualClockDriver,
    pssp,
    ssp,
)
from repro.parallel import ThreadedRunner
from repro.sim.cluster import cpu_cluster
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import HeterogeneousCompute

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestThreeRunnersAgree:
    """The virtual-clock driver, the co-simulation and the thread runner
    drive the SAME server code; their synchronization accounting must be
    structurally consistent on the same workload."""

    def _task(self, n):
        return blobs_task(n, n_train=400, n_test=100, seed=11)

    def test_push_pull_counts_match_protocol(self):
        n, servers, iters = 4, 2, 50
        task = self._task(n)
        system = ParameterServerSystem(
            task.spec, task.init_params, n, servers, ssp(2), ExecutionMode.LAZY, seed=0
        )
        r_driver = VirtualClockDriver(
            system, task.step_fn, max_iter=iters,
            compute_model=HeterogeneousCompute(n, spread=0.3), seed=1,
        ).run()
        assert r_driver.metrics.pushes == n * servers * iters
        assert r_driver.metrics.immediate_pulls + r_driver.metrics.dprs == r_driver.metrics.pulls

        task2 = self._task(n)
        r_sim = run_fluentps(SimConfig(
            cluster=cpu_cluster(n, servers), max_iter=iters, sync=ssp(2),
            task=task2, seed=0, base_compute_time=0.4,
        ))
        assert r_sim.metrics.pushes == n * servers * iters

        task3 = self._task(n)
        system3 = ParameterServerSystem(
            task3.spec, task3.init_params, n, servers, ssp(2), ExecutionMode.LAZY, seed=0
        )
        r_thr = ThreadedRunner(system3, task3.step_fn, max_iter=iters, seed=1).run()
        assert r_thr.ok
        assert r_thr.metrics.pushes == n * servers * iters

    def test_all_runners_learn(self):
        n = 4
        accs = []
        for runner in ("driver", "sim", "threads"):
            task = self._task(n)
            if runner == "driver":
                system = ParameterServerSystem(
                    task.spec, task.init_params, n, 2, pssp(2, 0.5),
                    ExecutionMode.LAZY, seed=0,
                )
                r = VirtualClockDriver(system, task.step_fn, max_iter=150, seed=1).run()
                final = r.final_params
            elif runner == "sim":
                r = run_fluentps(SimConfig(
                    cluster=cpu_cluster(n, 2), max_iter=150, sync=pssp(2, 0.5),
                    task=task, seed=0, base_compute_time=0.4,
                ))
                final = r.final_params
            else:
                system = ParameterServerSystem(
                    task.spec, task.init_params, n, 2, pssp(2, 0.5),
                    ExecutionMode.LAZY, seed=0,
                )
                res = ThreadedRunner(system, task.step_fn, max_iter=150, seed=1).run()
                assert res.ok
                final = res.final_params
            accs.append(self._task(n).eval_fn(final))
        # Every execution substrate trains the model well above chance.
        assert min(accs) > 0.45, accs


class TestSystemsComparison:
    def test_fluentps_vs_baselines_end_to_end(self):
        n, iters = 4, 150
        def cfg():
            return SimConfig(
                cluster=cpu_cluster(n, 1), max_iter=iters, sync=ssp(3),
                task=blobs_task(n, n_train=600, n_test=150, seed=4),
                seed=2, base_compute_time=0.4,
            )
        r_fl = run_fluentps(cfg())
        r_ps = run_pslite(cfg())
        r_tb = run_ssptable(SSPTableConfig(sim=cfg(), staleness=3))
        evaluator = blobs_task(n, n_train=600, n_test=150, seed=4)
        accs = {
            "fluentps": evaluator.eval_fn(r_fl.final_params),
            "pslite": evaluator.eval_fn(r_ps.final_params),
            "ssptable": evaluator.eval_fn(r_tb.final_params),
        }
        # At this tiny scale all three should learn; FluentPS is not worse.
        assert accs["fluentps"] > 0.5
        assert accs["fluentps"] >= accs["ssptable"] - 0.1


class TestLargeBatchLARS:
    """The paper trains its large batches with LARS (§IV-A); run it
    end-to-end through the co-simulation."""

    def test_lars_trains_through_the_ps(self):
        from repro.ml.data import gaussian_blobs
        from repro.ml.models_zoo import proxy_classifier
        from repro.ml.optim import LARS, warmup
        from repro.ml.training import TrainingTask

        n = 4
        ds = gaussian_blobs(n_classes=6, dim=24, n_train=1200, n_test=300, seed=9)
        task = TrainingTask(
            lambda: proxy_classifier(ds, hidden=(32,), seed=1),
            ds,
            n_workers=n,
            batch_size=64,  # large batch per worker — LARS's regime
            optimizer_factory=lambda net: LARS(
                net.tensor_slices(), lr=warmup(2.0, warmup_iters=20),
                momentum=0.9, weight_decay=1e-4, eta=0.01,
            ),
            seed=2,
        )
        r = run_fluentps(SimConfig(
            cluster=cpu_cluster(n, 2), max_iter=250, sync=ssp(2),
            task=task, seed=3, base_compute_time=0.4, eval_every=250,
        ))
        assert np.isfinite(r.final_params).all()
        assert r.eval_by_iteration.final() > 0.5


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "elastic_slicing.py", "threaded_training.py",
     "fault_tolerance.py"],
)
def test_examples_run(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()
