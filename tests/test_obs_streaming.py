"""Tests for the disk-spilling instant log and streamed sanitization.

At 100k workers a sanitized run emits millions of protocol instants; the
``InstantLog`` keeps at most ``spill_cap`` of them in memory and spills
the rest to a JSONL temp file, and the sanitizer replays the spilled
prefix from disk in chunks.  These tests pin the invariant that spilling
is invisible: same events, same order, same sanitizer verdict.
"""

import json

import pytest

from repro.analysis import iter_events_from_instants, sanitize_observability
from repro.core.models import ssp
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.obs import MetricsRegistry, Observability
from repro.obs.export import DEFAULT_INSTANT_SPILL_CAP, InstantLog
from repro.sim.cluster import cpu_cluster
from repro.sim.runner import FluentPSSimRunner, SimConfig
from repro.sim.stragglers import DeterministicCompute


def _fill(log, n):
    for i in range(n):
        log.record(f"ev{i % 7}", float(i), f"actor-{i % 3}", idx=i, half=i / 2)
    return log


def _as_list(log):
    return [(e.name, e.t, e.actor, e.args) for e in log]


class TestInstantLogSpill:
    def test_spilled_equals_in_memory(self):
        spilled = _fill(InstantLog(spill_cap=16), 500)
        resident = _fill(InstantLog(spill_cap=10_000), 500)
        assert spilled.spilled_events == 500 - (500 % 16 or 16) or spilled.spilled_events > 0
        assert resident.spilled_events == 0
        assert len(spilled) == len(resident) == 500
        assert _as_list(spilled) == _as_list(resident)

    def test_by_name_filters_across_spill_boundary(self):
        log = _fill(InstantLog(spill_cap=8), 100)
        want = [e for e in _as_list(log) if e[0] == "ev3"]
        got = [(e.name, e.t, e.actor, e.args) for e in log.by_name("ev3")]
        assert got == want
        assert len(want) > 0

    def test_nested_iteration_is_reentrant(self):
        log = _fill(InstantLog(spill_cap=8), 60)
        pairs = [(a.args["idx"], b.args["idx"]) for a in log for b in log]
        assert len(pairs) == 60 * 60

    def test_record_after_iterate(self):
        log = _fill(InstantLog(spill_cap=8), 20)
        first = _as_list(log)
        log.record("late", 99.0, "actor-x")
        again = _as_list(log)
        assert again[:-1] == first
        assert again[-1] == ("late", 99.0, "actor-x", {})
        assert len(log) == 21

    def test_args_roundtrip_through_json(self):
        log = InstantLog(spill_cap=1)
        log.record("a", 1.0, "w", nested={"k": [1, 2.5, "s", None]}, inf=float("inf"))
        log.record("b", 2.0, "w")  # push "a" over the spill boundary
        events = _as_list(log)
        assert events[0] == ("a", 1.0, "w", {"nested": {"k": [1, 2.5, "s", None]}, "inf": float("inf")})

    def test_env_var_sets_default_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTANT_SPILL_CAP", "3")
        log = _fill(InstantLog(), 10)
        assert log.spilled_events > 0
        assert _as_list(log) == _as_list(_fill(InstantLog(spill_cap=100), 10))
        monkeypatch.delenv("REPRO_INSTANT_SPILL_CAP")
        assert InstantLog().spill_cap == DEFAULT_INSTANT_SPILL_CAP

    def test_iter_events_streams_lazily(self):
        log = InstantLog(spill_cap=8)
        for i in range(40):
            log.record("push", float(i), f"w{i % 3}", shard=0, worker=i % 3)
        it = iter_events_from_instants(log)
        first = next(it)
        assert first.index == 0 and first.name == "push"
        rest = list(it)
        assert len(rest) == 39
        assert [e.index for e in rest] == list(range(1, 40))


def _sim_instant_stream(obs):
    return json.dumps(
        [
            [i.name, i.t, i.actor, {k: v for k, v in sorted(i.args.items()) if k != "uid"}]
            for i in obs.last_run.instants
        ]
    )


class TestSanitizeSpilledRun:
    @pytest.mark.no_sanitize
    def test_sanitizer_replays_from_disk(self, monkeypatch):
        def run(cap):
            if cap is not None:
                monkeypatch.setenv("REPRO_INSTANT_SPILL_CAP", str(cap))
            else:
                monkeypatch.delenv("REPRO_INSTANT_SPILL_CAP", raising=False)
            obs = Observability(MetricsRegistry("spill-test"), causal=False)
            cfg = SimConfig(
                cluster=cpu_cluster(12, n_servers=3),
                max_iter=4,
                sync=ssp(3),
                workload=alexnet_cifar_workload(),
                compute_model=DeterministicCompute(),
                seed=11,
                obs=obs,
            )
            FluentPSSimRunner(cfg).run()
            report = sanitize_observability(obs)
            return obs, report

        obs_spill, rep_spill = run(50)
        obs_mem, rep_mem = run(None)
        assert obs_spill.last_run.instants.spilled_events > 0
        assert obs_mem.last_run.instants.spilled_events == 0
        assert rep_spill.ok, rep_spill.violations
        assert rep_mem.ok
        assert rep_spill.n_events == rep_mem.n_events > 0
        assert _sim_instant_stream(obs_spill) == _sim_instant_stream(obs_mem)
