"""Differential tests: the calendar queue vs the binary heap.

The calendar/fast-forward core's correctness claim is *exact* semantic
equivalence — not a single callback may fire at a different time or in a
different order than under the plain binary heap (``Engine(calendar=
False)``).  These tests run identical seeded programs through both
queues and compare the full observation streams byte-for-byte, then
stress the bucket machinery with adversarial timestamp clustering
(everything in one bucket, one event per bucket, regime changes across
sweeps that force a width resize).
"""

import json

import numpy as np
import pytest

from repro.sim.engine import _CAL_NEAR, _CAL_THRESHOLD, Engine


def _seeded_program(n, seed, cancel_frac=0.1, repost=25, horizon=50.0):
    """Build-callable for a random program of ``n`` events.

    Schedules ``n`` events at seeded-uniform times, cancels a random
    subset, and re-posts a few at exactly the cancelled timestamps (the
    tombstone-collision case).  Each callback records ``(now, tag)`` so
    the comparison covers both order *and* the exact clock value.
    """
    rng = np.random.default_rng(seed)
    times = [float(t) for t in rng.uniform(0.0, horizon, size=n)]
    dead = rng.random(n) < cancel_frac
    reposted = [int(i) for i in np.flatnonzero(dead)[:repost]]

    def build(eng, seen):
        handles = [
            eng.schedule(t, lambda i=i: seen.append((eng.now, i)))
            for i, t in enumerate(times)
        ]
        for i, is_dead in enumerate(dead):
            if is_dead:
                handles[i].cancel()
        for i in reposted:
            eng.schedule(times[i], lambda i=i: seen.append((eng.now, ["re", i])))

    return build


def _run_both(build, threshold=None, **fast_kw):
    fast = Engine(calendar_threshold=threshold, **fast_kw)
    slow = Engine(calendar=False)
    seen_fast, seen_slow = [], []
    build(fast, seen_fast)
    build(slow, seen_slow)
    fast.run()
    slow.run()
    return fast, slow, seen_fast, seen_slow


class TestSeededDifferential:
    """Seeded random programs at 1k and 10k pending events."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_byte_identical_stream_1k(self, seed):
        build = _seeded_program(1_000, seed)
        fast, slow, seen_fast, seen_slow = _run_both(build, threshold=64)
        # Serialize through JSON so the comparison is on bytes, not on
        # float objects that might compare equal after rounding.
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.calendar_sweeps >= 1
        assert fast.events_skipped > 0
        assert fast.now == slow.now
        assert fast.events_processed == slow.events_processed

    @pytest.mark.parametrize("seed", [3, 4])
    def test_byte_identical_stream_10k(self, seed):
        # 10k pending with an explicit mesoscale threshold (the shipped
        # constant is tuned for ~10k-worker runner scale and sits above
        # 10k raw events; auto-migration at the constant itself is
        # covered by test_byte_identical_stream_past_shipped_constant).
        build = _seeded_program(10_000, seed)
        fast, slow, seen_fast, seen_slow = _run_both(build, threshold=4096)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.calendar_sweeps >= 1
        assert fast.events_skipped > 0
        assert fast.windows_collapsed > 0
        assert fast.pending_events == 0 == slow.pending_events

    def test_byte_identical_stream_past_shipped_constant(self):
        # Crosses the *default* threshold: no override, so this
        # exercises auto-migration at the shipped constant.
        build = _seeded_program(_CAL_THRESHOLD + 5_000, seed=3)
        fast, slow, seen_fast, seen_slow = _run_both(build)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.calendar_sweeps >= 1
        assert fast.events_skipped > 0
        assert fast.pending_events == 0 == slow.pending_events

    def test_below_threshold_stays_on_heap(self):
        build = _seeded_program(200, seed=5)
        fast, slow, seen_fast, seen_slow = _run_both(build)  # shipped default
        assert seen_fast == seen_slow
        assert fast.calendar_sweeps == 0

    def test_heap_fallback_reports_disabled(self):
        eng = Engine(calendar=False)
        assert eng.calendar_enabled is False
        for i in range(10):
            eng.call_in(float(i + 1), lambda: None)
        eng.run()
        assert eng.calendar_sweeps == 0
        assert eng.events_skipped == 0
        assert eng.windows_collapsed == 0


class TestAdversarialClustering:
    """Bucket-resize behavior at the timestamp-distribution extremes."""

    def test_all_events_in_one_bucket(self):
        """Zero span past the window: the degenerate guard must keep
        everything windowed instead of deriving a zero bucket width."""
        n = 4 * _CAL_NEAR

        def build(eng, seen):
            for i in range(n):
                eng.call_at(1.0, seen.append, i)

        fast, slow, seen_fast, seen_slow = _run_both(build, threshold=32)
        assert seen_fast == seen_slow == list(range(n))  # FIFO preserved
        assert fast.calendar_sweeps >= 1

    def test_one_event_per_bucket(self):
        """Wide distinct spacing: at most one event lands in each bucket,
        so every refill sorts a singleton."""
        n = 2 * _CAL_NEAR

        def build(eng, seen):
            for i in range(n):
                eng.call_at(1.0 + 997.0 * i, seen.append, i)

        fast, slow, seen_fast, seen_slow = _run_both(build, threshold=32)
        assert seen_fast == seen_slow == list(range(n))
        assert fast.calendar_sweeps >= 1
        assert fast.windows_collapsed > 0

    def test_regime_change_resizes_buckets(self):
        """A tight cluster followed (mid-run) by a wide spread: the second
        sweep re-derives the bucket width from the new span."""
        n = 3 * _CAL_NEAR

        def build(eng, seen):
            for i in range(n):
                eng.call_at(100.0 + 1e-3 * i, seen.append, ("tight", i))

            def spread():
                for i in range(n):
                    eng.call_at(200.0 + 0.9 * i, seen.append, ("wide", i))

            eng.call_at(150.0, spread)

        fast, slow, seen_fast, seen_slow = _run_both(build, threshold=32)
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.calendar_sweeps >= 2  # one per regime

    def test_near_degenerate_relative_span(self):
        """Span tiny relative to the horizon: the relative-span guard
        keeps the cluster windowed rather than bucketing at float noise."""
        n = 2 * _CAL_NEAR

        def build(eng, seen):
            base = 1e9
            for i in range(n):
                eng.call_at(base + 1e-7 * i, seen.append, i)

        fast, slow, seen_fast, seen_slow = _run_both(build, threshold=32)
        assert seen_fast == seen_slow


class TestRunControls:
    """until/max_events and the choice-hook flush keep exact semantics."""

    def test_until_equivalent(self):
        build = _seeded_program(2_000, seed=6, horizon=10.0)
        fast = Engine(calendar_threshold=64)
        slow = Engine(calendar=False)
        seen_fast, seen_slow = [], []
        build(fast, seen_fast)
        build(slow, seen_slow)
        for until in (2.5, 5.0, 7.5, None):
            fast.run(until=until)
            slow.run(until=until)
            assert fast.now == slow.now
            assert fast.pending_events == slow.pending_events
            assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.calendar_sweeps >= 1

    def test_max_events_equivalent(self):
        build = _seeded_program(2_000, seed=7)
        fast = Engine(calendar_threshold=64)
        slow = Engine(calendar=False)
        seen_fast, seen_slow = [], []
        build(fast, seen_fast)
        build(slow, seen_slow)
        for budget in (300, 700, None):
            fast.run(max_events=budget)
            slow.run(max_events=budget)
            assert fast.events_processed == slow.events_processed
            assert fast.now == slow.now
            assert fast.pending_events == slow.pending_events
            assert seen_fast == seen_slow

    def test_choice_hook_flushes_calendar(self):
        """Installing a choice hook (the schedule explorer) must drain the
        calendar back into the flat heap with nothing lost, and a
        default-taking hook must not perturb the stream."""
        build = _seeded_program(2_000, seed=8)
        fast = Engine(calendar_threshold=64)
        slow = Engine(calendar=False)
        seen_fast, seen_slow = [], []
        build(fast, seen_fast)
        build(slow, seen_slow)
        # Bounded runs route through the per-event slow path and never
        # sweep, so populate the window + buckets directly.
        fast._sweep()
        assert fast.calendar_sweeps == 1
        before = fast.pending_events
        fast.set_choice_hook(lambda when, group: 0)
        slow.set_choice_hook(lambda when, group: 0)
        assert fast.pending_events == before  # flush loses nothing
        fast.run()
        slow.run()
        assert json.dumps(seen_fast) == json.dumps(seen_slow)
        assert fast.now == slow.now

    def test_pending_events_accounting(self):
        eng = Engine(calendar_threshold=64)
        handles = [eng.schedule(float(i + 1), lambda: None) for i in range(2_000)]
        for h in handles[::10]:
            h.cancel()
        live = 2_000 - len(handles[::10])
        assert eng.pending_events == live
        eng.run(max_events=300)
        assert eng.pending_events == live - 300
        eng.run()
        assert eng.pending_events == 0
        assert eng.events_processed == live


class TestDefaults:
    def test_default_threshold_is_shipped_constant(self):
        eng = Engine()
        assert eng.calendar_enabled is True
        n = _CAL_THRESHOLD + 500
        for i in range(n):
            eng.call_in(float(i + 1), lambda: None)
        eng.run()
        assert eng.calendar_sweeps >= 1
        assert eng.events_processed == n

    def test_threshold_zero_clamped(self):
        eng = Engine(calendar_threshold=0)
        for i in range(8):
            eng.call_in(float(i + 1), lambda: None)
        eng.run()
        assert eng.events_processed == 8
