"""Perfetto trace export, snapshot scraping, and end-to-end observability."""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.workloads import blobs_task
from repro.core.models import bsp, pssp, ssp
from repro.obs import (
    InstantLog,
    MetricsRegistry,
    Observability,
    dump_metrics,
    dump_trace,
    observed,
)
from repro.obs.export import actor_tracks, default_metrics_path, events_of_phase, load_trace
from repro.obs.snapshot import ServerSnapshotter
from repro.sim.cluster import cpu_cluster
from repro.sim.engine import Engine
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import HeterogeneousCompute
from repro.sim.trace import SpanKind, TraceRecorder

# These tests assert ambient-observability defaults (disabled NULL_OBS);
# the sanitizer fixture's ambient bundle would shadow that behaviour.
pytestmark = pytest.mark.no_sanitize


def make_trace():
    tr = TraceRecorder()
    tr.record_span("worker0", SpanKind.COMPUTE, 0.0, 1.0, iteration=0)
    tr.record_span("worker0", SpanKind.PULL, 1.0, 1.5, iteration=0)
    tr.record_span("worker1", SpanKind.COMPUTE, 0.0, 2.0, iteration=0, note="straggler")
    return tr


class TestTraceExport:
    def test_round_trip_invariants(self, tmp_path):
        instants = InstantLog()
        instants.record("dpr_buffered", 1.2, actor="server0", worker=1)
        instants.record("global_note", 1.3)  # no actor -> process scope
        path = tmp_path / "trace.json"
        dump_trace(path, make_trace(), instants, process_name="test-run")
        doc = json.load(open(path))
        assert doc["displayTimeUnit"] == "ms"
        tracks = actor_tracks(doc)
        # server0 gets a track from its instant alone
        assert set(tracks) == {"worker0", "worker1", "server0"}
        assert len(set(tracks.values())) == 3
        xs = events_of_phase(doc, "X")
        assert len(xs) == 3
        for ev in xs:
            assert ev["dur"] >= 0
            assert ev["tid"] in tracks.values()
        compute = events_of_phase(doc, "X", "compute")
        assert {e["ts"] for e in compute} == {0.0}
        assert {e["dur"] for e in compute} == {1e6, 2e6}
        note = [e for e in compute if e["args"].get("note")][0]
        assert note["args"]["note"] == "straggler"
        insts = events_of_phase(doc, "i")
        scoped = {e["name"]: e["s"] for e in insts}
        assert scoped == {"dpr_buffered": "t", "global_note": "p"}
        proc = events_of_phase(doc, "M", "process_name")
        assert proc[0]["args"]["name"] == "test-run"

    def test_load_trace_helper(self, tmp_path):
        path = dump_trace(tmp_path / "t.json", make_trace())
        assert load_trace(path)["traceEvents"]

    def test_spanless_trace_rejected(self, tmp_path):
        tr = TraceRecorder(keep_spans=False)
        with pytest.raises(ValueError, match="keep_spans"):
            dump_trace(tmp_path / "t.json", tr)

    def test_default_metrics_path(self):
        assert str(default_metrics_path("/x/trace.json")).endswith("/x/trace.metrics.json")

    def test_dump_metrics(self, tmp_path):
        reg = MetricsRegistry("t")
        reg.counter("c").inc(shard=2)
        path = dump_metrics(tmp_path / "m.json", reg)
        doc = json.load(open(path))
        assert doc["metrics"]["c"]["values"] == {"shard=2": 1.0}


class TestSnapshotter:
    def test_scrape_records_per_shard_and_nic_series(self):
        class FakeServer:
            def __init__(self, shard_id):
                self.shard_id = shard_id
                self.buffered_pulls = shard_id
                self.v_train = 10 + shard_id
                self.version = 20
                self.callbacks = {}
                self.snapshot_copies = 3
                self.snapshot_copies_avoided = 7
                self.metrics = type("M", (), {"dprs": 5})()

        reg = MetricsRegistry("t")
        snap = ServerSnapshotter(reg, [FakeServer(0), FakeServer(1)])
        snap.scrape(1.0)
        snap.scrape(2.0)
        depth = reg.get("ps_dpr_queue_depth")
        assert depth.value(shard=1) == 1
        ts, vs = depth.series(shard=1)
        assert ts == [0.0, 0.0] or len(ts) == 2  # clock not installed -> 0s
        assert vs == [1.0, 1.0]
        assert reg.get("ps_frontier").value(shard=0) == 10

    def test_install_validates_interval(self):
        reg = MetricsRegistry("t")
        snap = ServerSnapshotter(reg, [])
        with pytest.raises(ValueError):
            snap.install(Engine(), 0.0)

    def test_daemon_sampler_does_not_keep_engine_alive(self):
        eng = Engine()
        reg = MetricsRegistry("t")
        snap = ServerSnapshotter(reg, [])

        def work():
            yield eng.timeout(10.0)

        eng.spawn(work())
        snap.install(eng, 1.0)
        end = eng.run()
        # the sampler ticks through the workload then stops with it:
        # the run ends when the work does, not one sampler period later
        assert end == pytest.approx(10.0)
        assert snap.scrapes >= 10


def quick_sim_config(sync, obs=None, max_iter=8):
    # One persistent straggler (spread 1.5, no jitter) guarantees DPRs
    # under BSP/SSP within a handful of iterations.
    return SimConfig(
        cluster=cpu_cluster(n_workers=3, n_servers=2),
        max_iter=max_iter,
        sync=sync,
        base_compute_time=0.01,
        compute_model=HeterogeneousCompute(3, spread=1.5, jitter_sigma=0.0),
        task=blobs_task(n_workers=3, n_train=60, n_test=20, dim=8, hidden=(8,)),
        obs=obs,
    )


class TestEndToEndSim:
    def test_sim_run_with_obs_collects_everything(self, tmp_path):
        obs = Observability(MetricsRegistry("e2e"))
        res = run_fluentps(quick_sim_config(bsp(), obs=obs))
        assert res.iterations == 8
        # per-shard counters from the servers
        pulls = obs.registry.get("ps_pulls_total")
        assert pulls.value(shard=0) > 0 and pulls.value(shard=1) > 0
        # snapshot gauge series exist per shard
        depth = obs.registry.get("ps_dpr_queue_depth")
        for shard in (0, 1):
            ts, vs = depth.series(shard=shard)
            assert len(ts) >= 2
        # a straggler under BSP guarantees buffered DPRs + instants
        run = obs.last_run
        assert run is not None
        assert run.instants.by_name("dpr_buffered")
        assert run.instants.by_name("frontier_advance")
        # the captured trace exports cleanly with >= 2 actor tracks
        path = dump_trace(tmp_path / "sim.json", run.trace, run.instants)
        tracks = actor_tracks(json.load(open(path)))
        assert len(tracks) >= 2

    def test_pssp_instants_record_pass_pause(self):
        obs = Observability(MetricsRegistry("pssp"))
        run_fluentps(quick_sim_config(pssp(1, 0.5), obs=obs, max_iter=20))
        events = obs.last_run.instants
        flips = len(events.by_name("pssp_pass")) + len(events.by_name("pssp_pause"))
        assert flips > 0
        m = obs.registry
        assert (
            m.get("sync_probabilistic_passes").value()
            + m.get("sync_probabilistic_pauses").value()
            == flips
        )

    def test_ambient_observability_used_when_config_silent(self):
        obs = Observability(MetricsRegistry("ambient"))
        with observed(obs):
            run_fluentps(quick_sim_config(ssp(2)))
        assert obs.runs, "runner did not pick up the ambient bundle"
        assert obs.registry.get("ps_pulls_total").total() > 0

    def test_disabled_obs_records_nothing(self):
        res = run_fluentps(quick_sim_config(bsp()))
        assert res.iterations == 8  # default NULL_OBS: run works, no capture


class TestBenchFlag:
    def test_trace_out_writes_valid_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "bench.json"
        rc = bench_main(
            ["--only", "fig5", "--trace-out", str(trace), "--save-dir", str(tmp_path / "r")]
        )
        assert rc == 0
        doc = json.load(open(trace))
        assert len(actor_tracks(doc)) >= 2
        assert events_of_phase(doc, "i", "dpr_buffered")
        metrics = json.load(open(default_metrics_path(trace)))
        depth = metrics["metrics"]["ps_dpr_queue_depth"]
        assert any(k.startswith("shard=") for k in depth["series"])
        out = capsys.readouterr().out
        assert "observability report" in out
