"""Tests for synchronization metrics."""

import pytest

from repro.core.metrics import SyncMetrics


class TestRecording:
    def test_pull_counting(self):
        m = SyncMetrics()
        m.record_pull(immediate=True, iteration=0)
        m.record_pull(immediate=False, iteration=1)
        m.record_pull(immediate=False, iteration=1)
        assert m.pulls == 3
        assert m.immediate_pulls == 1
        assert m.dprs == 2
        assert m.dpr_fraction == pytest.approx(2 / 3)

    def test_response_staleness_histogram(self):
        m = SyncMetrics()
        m.record_response(missing=0)
        m.record_response(missing=2)
        m.record_response(missing=2, waited=1.5)
        assert m.staleness_hist[0] == 1
        assert m.staleness_hist[2] == 2
        assert m.mean_staleness() == pytest.approx(4 / 3)
        assert m.max_staleness() == 2
        assert m.dpr_wait_total == 1.5

    def test_negative_missing_clamped(self):
        m = SyncMetrics()
        m.record_response(missing=-3)
        assert m.staleness_hist[0] == 1

    def test_empty_stats(self):
        m = SyncMetrics()
        assert m.dpr_fraction == 0.0
        assert m.mean_staleness() == 0.0
        assert m.max_staleness() == 0
        assert m.mean_dpr_wait() == 0.0


class TestSeries:
    def test_dprs_per_100(self):
        m = SyncMetrics()
        for i in range(30):
            m.record_pull(immediate=False, iteration=i)
        assert m.dprs_per_100_iterations(300) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            m.dprs_per_100_iterations(0)

    def test_dpr_series_buckets(self):
        m = SyncMetrics()
        for it in (0, 5, 99, 100, 250):
            m.record_pull(immediate=False, iteration=it)
        series = m.dpr_series(300, bucket=100)
        assert series == [3, 1, 1]

    def test_dpr_series_overflow_clamped(self):
        m = SyncMetrics()
        m.record_pull(immediate=False, iteration=999)
        assert m.dpr_series(100, bucket=100) == [1]

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            SyncMetrics().dpr_series(100, bucket=0)


class TestMerge:
    def test_merge_adds_counters(self):
        a, b = SyncMetrics(), SyncMetrics()
        a.record_pull(immediate=True, iteration=0)
        a.record_response(missing=1)
        b.record_pull(immediate=False, iteration=2)
        b.record_push()
        merged = a.merge(b)
        assert merged.pulls == 2
        assert merged.pushes == 1
        assert merged.dprs == 1
        assert merged.staleness_hist[1] == 1
        assert merged.dpr_iterations == [2]

    def test_merge_all(self):
        parts = []
        for i in range(4):
            m = SyncMetrics()
            m.record_push()
            parts.append(m)
        assert SyncMetrics.merge_all(parts).pushes == 4

    def test_merge_does_not_mutate_inputs(self):
        a, b = SyncMetrics(), SyncMetrics()
        a.record_push()
        a.merge(b)
        assert b.pushes == 0

    def test_summary_keys(self):
        s = SyncMetrics().summary()
        for key in ("pulls", "pushes", "dprs", "mean_staleness", "frontier_advances"):
            assert key in s
