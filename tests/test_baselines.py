"""Tests for the PS-Lite and SSPtable baseline systems."""

import numpy as np
import pytest

from repro.baselines.pslite import PSLiteSimRunner, run_pslite
from repro.baselines.sspable import (
    SSPTableConfig,
    SSPTableRunner,
    _TableServer,
    run_ssptable,
)
from repro.bench.workloads import blobs_task
from repro.core.keyspace import ElasticSlicer
from repro.core.models import asp, bsp, ssp
from repro.ml.models_zoo import alexnet_cifar_workload
from repro.sim.cluster import cpu_cluster, gpu_cluster_p2
from repro.sim.runner import SimConfig, run_fluentps
from repro.sim.stragglers import DeterministicCompute, ExponentialTailCompute


def pslite_config(n=4, servers=4, iters=8, sync=None, **kw):
    return SimConfig(
        cluster=gpu_cluster_p2(n, servers),
        max_iter=iters,
        sync=sync or bsp(),
        workload=alexnet_cifar_workload(),
        batch_per_worker=64,
        compute_model=kw.pop("compute_model", DeterministicCompute()),
        seed=kw.pop("seed", 0),
        **kw,
    )


class TestPSLite:
    def test_completes(self):
        r = run_pslite(pslite_config())
        assert r.iterations == 8
        assert r.duration > 0

    def test_default_slicing_is_range_key(self):
        runner = PSLiteSimRunner(pslite_config())
        loads = runner.layout.assignment.bytes_per_server()
        # Sequential keys in a uint32 space all land on server 0.
        assert loads[0] == alexnet_cifar_workload().spec.total_bytes

    def test_slower_than_fluentps_overlap(self):
        common = dict(n=8, servers=4, iters=10,
                      compute_model=ExponentialTailCompute(0.1, 2.0))
        r_ps = run_pslite(pslite_config(**common))
        r_fl = run_fluentps(pslite_config(slicer=ElasticSlicer(), **common))
        assert r_ps.duration > r_fl.duration

    def test_bounded_delay_and_asp_supported(self):
        for sync in (ssp(2), asp()):
            r = run_pslite(pslite_config(sync=sync,
                                         compute_model=ExponentialTailCompute(0.2, 2.0)))
            assert r.iterations == 8

    def test_per_server_models_rejected(self):
        cfg = pslite_config(sync=bsp())
        cfg = SimConfig(**{**cfg.__dict__, "sync": [bsp(), bsp(), bsp(), bsp()]})
        with pytest.raises(ValueError, match="one global model"):
            PSLiteSimRunner(cfg)

    def test_training_through_pslite(self):
        n = 4
        task = blobs_task(n, n_train=300, n_test=100, seed=5)
        cfg = SimConfig(
            cluster=cpu_cluster(n, 1), max_iter=80, sync=bsp(), task=task,
            seed=1, base_compute_time=0.5, eval_every=40,
        )
        r = run_pslite(cfg)
        assert r.eval_by_iteration.final() > 0.5

    def test_bsp_pull_waits_for_global_barrier(self):
        """Under BSP the grant cannot be issued before every worker
        reported the iteration: blocked spans must exist when compute
        times vary."""
        cfg = pslite_config(n=4, iters=6, keep_spans=True,
                            compute_model=ExponentialTailCompute(0.4, 3.0))
        r = run_pslite(cfg)
        from repro.sim.trace import SpanKind

        assert r.trace.total_by_kind(SpanKind.BLOCKED) > 0


class TestTableServer:
    def test_min_clock_blocking(self):
        srv = _TableServer(0, n_workers=2, params=None, raw_additive=True)
        got = []
        srv.handle_read(0, require=1, respond=got.append)
        assert got == []
        srv.handle_update(0, clock=1, shard=None, on_clock_advance=lambda c: None)
        assert got == []  # min clock still 0 (worker 1)
        srv.handle_update(1, clock=1, shard=None, on_clock_advance=lambda c: None)
        assert got == [1]

    def test_immediate_read_when_fresh(self):
        srv = _TableServer(0, n_workers=1, params=None, raw_additive=True)
        got = []
        srv.handle_read(0, require=0, respond=got.append)
        assert got == [0]

    def test_raw_additive_vs_averaged(self):
        raw = _TableServer(0, 2, np.zeros(2), raw_additive=True)
        avg = _TableServer(0, 2, np.zeros(2), raw_additive=False)
        for srv in (raw, avg):
            srv.handle_update(0, 1, np.ones(2), lambda c: None)
        np.testing.assert_allclose(raw.params, 1.0)
        np.testing.assert_allclose(avg.params, 0.5)

    def test_clock_advance_callback(self):
        srv = _TableServer(0, 2, None, True)
        advances = []
        srv.handle_update(0, 1, None, advances.append)
        srv.handle_update(1, 1, None, advances.append)
        assert advances == [1]


class TestSSPTableRunner:
    def _cfg(self, n, iters=60, seed=1):
        task = blobs_task(n, n_train=300, n_test=100, seed=5)
        return SSPTableConfig(
            sim=SimConfig(
                cluster=cpu_cluster(n, 1), max_iter=iters, sync=ssp(3),
                task=task, seed=seed, base_compute_time=0.5,
            ),
            staleness=3,
        )

    def test_completes_and_trains(self):
        r = run_ssptable(self._cfg(2))
        assert r.final_params is not None
        assert np.isfinite(r.final_params).all()

    def test_invalidations_scale_with_workers(self):
        r2 = SSPTableRunner(self._cfg(2))
        r2.run()
        r6 = SSPTableRunner(self._cfg(6))
        r6.run()
        assert r6.invalidations_sent > r2.invalidations_sent

    def test_accuracy_degrades_with_scale(self):
        """The Figure 1/7 mechanism: raw-additive updates tuned for small
        N diverge as N grows."""
        task_eval = blobs_task(2, n_train=300, n_test=100, seed=5)
        small = run_ssptable(self._cfg(2, iters=100))
        big = run_ssptable(self._cfg(12, iters=100))
        acc_small = task_eval.eval_fn(small.final_params)
        acc_big = task_eval.eval_fn(big.final_params)
        assert acc_small > acc_big

    def test_reads_are_rare_relative_to_iterations(self):
        """SSPtable refreshes roughly every s iterations, not every one."""
        r = run_ssptable(self._cfg(4, iters=80))
        reads = r.metrics.pulls
        assert reads < 80 * 4  # strictly fewer reads than iterations x workers

    def test_invalid_staleness(self):
        cfg = self._cfg(2)
        with pytest.raises(ValueError):
            SSPTableConfig(sim=cfg.sim, staleness=-1)
