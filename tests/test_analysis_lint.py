"""Tests for the custom AST lint pass (ANA001–ANA005)."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.lint import lint_file

pytestmark = pytest.mark.no_sanitize  # pure static analysis, no servers

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def lint_snippet(tmp_path, code, rel="repro/sim/bad.py"):
    """Write ``code`` at ``rel`` under a fake src root and lint it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return [i.code for i in lint_file(path, tmp_path)]


class TestWallClock:
    def test_time_time_flagged_in_sim(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time
            def f():
                return time.time()
            ''',
        )
        assert "ANA001" in codes

    def test_aliased_import_resolved(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time as _t
            def f():
                return _t.monotonic()
            ''',
        )
        assert "ANA001" in codes

    def test_from_import_resolved(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            from time import perf_counter
            def f():
                return perf_counter()
            ''',
        )
        assert "ANA001" in codes

    def test_wall_clock_allowed_outside_sim_core(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time
            def f():
                return time.time()
            ''',
            rel="repro/bench/ok.py",
        )
        assert "ANA001" not in codes


class TestGlobalRNG:
    def test_numpy_global_rng_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import numpy as np
            def f():
                return np.random.random()
            ''',
            rel="repro/core/bad.py",
        )
        assert "ANA002" in codes

    def test_seeded_generator_allowed(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed)
            ''',
            rel="repro/core/ok.py",
        )
        assert "ANA002" not in codes

    def test_stdlib_random_import_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import random
            ''',
        )
        assert "ANA002" in codes

    def test_stdlib_random_from_import_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            from random import randint
            ''',
        )
        assert "ANA002" in codes


class TestServerStateDiscipline:
    def test_non_handler_mutation_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class ShardServer:
                """Doc."""
                def __init__(self):
                    self.v_train = 0
                def handle_push(self):
                    self.v_train += 1
                def sneaky_reset(self):
                    self.v_train = 0
            ''',
            rel="repro/core/server.py",
        )
        assert "ANA003" in codes

    def test_helper_called_from_handler_allowed(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class ShardServer:
                """Doc."""
                def __init__(self):
                    self.v_train = 0
                def handle_push(self):
                    self._advance()
                def _advance(self):
                    self.v_train += 1
            ''',
            rel="repro/core/server.py",
        )
        assert "ANA003" not in codes

    def test_external_write_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def hack(server):
                server.v_train = 10
            ''',
            rel="repro/core/api.py",
        )
        assert "ANA003" in codes

    def test_container_mutator_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class ShardServer:
                """Doc."""
                def __init__(self):
                    self.callbacks = {}
                def not_a_handler(self):
                    self.callbacks.clear()
            ''',
            rel="repro/core/server.py",
        )
        assert "ANA003" in codes


class TestTimestampEquality:
    def test_float_eq_on_timestamp_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(t0, t1):
                return t0 == t1
            ''',
        )
        assert "ANA004" in codes

    def test_suffix_time_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(obj, end_time):
                return obj.enqueue_time != end_time
            ''',
        )
        assert "ANA004" in codes

    def test_ordering_comparison_allowed(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(t0, t1):
                return t0 <= t1
            ''',
        )
        assert "ANA004" not in codes

    def test_none_check_allowed(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(t0):
                return t0 == None  # noqa: E711 (deliberate)
            ''',
        )
        assert "ANA004" not in codes


class TestDocstrings:
    def test_missing_module_docstring_flagged(self, tmp_path):
        codes = lint_snippet(tmp_path, "x = 1\n", rel="repro/util.py")
        assert "ANA005" in codes

    def test_missing_class_docstring_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class Public:
                pass
            ''',
            rel="repro/util.py",
        )
        assert "ANA005" in codes

    def test_private_class_exempt(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class _Private:
                pass
            ''',
            rel="repro/util.py",
        )
        assert "ANA005" not in codes


class TestRealTree:
    def test_repo_src_is_lint_clean(self):
        issues = lint_paths([REPO_SRC])
        assert issues == [], "\n".join(i.describe() for i in issues)

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        issues = lint_file(bad, tmp_path)
        assert [i.code for i in issues] == ["ANA000"]
