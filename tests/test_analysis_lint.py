"""Tests for the custom AST lint pass (ANA001–ANA007)."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.lint import lint_file

pytestmark = pytest.mark.no_sanitize  # pure static analysis, no servers

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def lint_snippet(tmp_path, code, rel="repro/sim/bad.py"):
    """Write ``code`` at ``rel`` under a fake src root and lint it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return [i.code for i in lint_file(path, tmp_path)]


class TestWallClock:
    def test_time_time_flagged_in_sim(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time
            def f():
                return time.time()
            ''',
        )
        assert "ANA001" in codes

    def test_aliased_import_resolved(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time as _t
            def f():
                return _t.monotonic()
            ''',
        )
        assert "ANA001" in codes

    def test_from_import_resolved(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            from time import perf_counter
            def f():
                return perf_counter()
            ''',
        )
        assert "ANA001" in codes

    def test_wall_clock_allowed_outside_sim_core(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time
            def f():
                return time.time()
            ''',
            rel="repro/bench/ok.py",
        )
        assert "ANA001" not in codes


class TestGlobalRNG:
    def test_numpy_global_rng_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import numpy as np
            def f():
                return np.random.random()
            ''',
            rel="repro/core/bad.py",
        )
        assert "ANA002" in codes

    def test_seeded_generator_allowed(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed)
            ''',
            rel="repro/core/ok.py",
        )
        assert "ANA002" not in codes

    def test_stdlib_random_import_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import random
            ''',
        )
        assert "ANA002" in codes

    def test_stdlib_random_from_import_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            from random import randint
            ''',
        )
        assert "ANA002" in codes


class TestServerStateDiscipline:
    def test_non_handler_mutation_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class ShardServer:
                """Doc."""
                def __init__(self):
                    self.v_train = 0
                def handle_push(self):
                    self.v_train += 1
                def sneaky_reset(self):
                    self.v_train = 0
            ''',
            rel="repro/core/server.py",
        )
        assert "ANA003" in codes

    def test_helper_called_from_handler_allowed(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class ShardServer:
                """Doc."""
                def __init__(self):
                    self.v_train = 0
                def handle_push(self):
                    self._advance()
                def _advance(self):
                    self.v_train += 1
            ''',
            rel="repro/core/server.py",
        )
        assert "ANA003" not in codes

    def test_external_write_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def hack(server):
                server.v_train = 10
            ''',
            rel="repro/core/api.py",
        )
        assert "ANA003" in codes

    def test_container_mutator_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class ShardServer:
                """Doc."""
                def __init__(self):
                    self.callbacks = {}
                def not_a_handler(self):
                    self.callbacks.clear()
            ''',
            rel="repro/core/server.py",
        )
        assert "ANA003" in codes


class TestTimestampEquality:
    def test_float_eq_on_timestamp_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(t0, t1):
                return t0 == t1
            ''',
        )
        assert "ANA004" in codes

    def test_suffix_time_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(obj, end_time):
                return obj.enqueue_time != end_time
            ''',
        )
        assert "ANA004" in codes

    def test_ordering_comparison_allowed(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(t0, t1):
                return t0 <= t1
            ''',
        )
        assert "ANA004" not in codes

    def test_none_check_allowed(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(t0):
                return t0 == None  # noqa: E711 (deliberate)
            ''',
        )
        assert "ANA004" not in codes


class TestDocstrings:
    def test_missing_module_docstring_flagged(self, tmp_path):
        codes = lint_snippet(tmp_path, "x = 1\n", rel="repro/util.py")
        assert "ANA005" in codes

    def test_missing_class_docstring_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class Public:
                pass
            ''',
            rel="repro/util.py",
        )
        assert "ANA005" in codes

    def test_private_class_exempt(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            class _Private:
                pass
            ''',
            rel="repro/util.py",
        )
        assert "ANA005" not in codes


class TestSetOrder:
    def test_loop_over_set_into_schedule_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(engine, pending):
                for node in set(pending):
                    engine.schedule(1.0, node)
            ''',
        )
        assert "ANA006" in codes

    def test_set_display_into_heappush_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import heapq
            def f(heap, a, b):
                for x in {a, b}:
                    heapq.heappush(heap, x)
            ''',
        )
        assert "ANA006" in codes

    def test_set_comprehension_arg_to_dumps_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import json
            def f(items):
                return json.dumps([x.name for x in {i for i in items}])
            ''',
        )
        assert "ANA006" in codes

    def test_sorted_set_is_clean(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(engine, pending):
                for node in sorted(set(pending)):
                    engine.schedule(1.0, node)
            ''',
        )
        assert "ANA006" not in codes

    def test_set_loop_without_order_sink_is_clean(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(pending):
                total = 0
                for node in set(pending):
                    total += node.cost
                return total
            ''',
        )
        assert "ANA006" not in codes

    def test_outside_sim_core_is_clean(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            def f(engine, pending):
                for node in set(pending):
                    engine.schedule(1.0, node)
            ''',
            rel="repro/bench/ok.py",
        )
        assert "ANA006" not in codes


class TestCoroutineOSCalls:
    def test_time_sleep_in_generator_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time
            def proc(env):
                time.sleep(0.1)
                yield 1.0
            ''',
        )
        assert "ANA007" in codes

    def test_threading_event_in_generator_flagged(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import threading
            def proc(env):
                done = threading.Event()
                yield 1.0
                done.wait()
            ''',
        )
        assert "ANA007" in codes

    def test_aliased_import_resolved(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            from time import sleep
            def proc(env):
                sleep(0.1)
                yield 1.0
            ''',
        )
        assert "ANA007" in codes

    def test_plain_function_is_clean(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time
            def helper():
                time.sleep(0.1)
            ''',
        )
        assert "ANA007" not in codes

    def test_nested_plain_def_inside_generator_is_clean(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time
            def proc(env):
                def callback():
                    time.sleep(0.1)
                yield callback
            ''',
        )
        assert "ANA007" not in codes

    def test_outside_sim_core_is_clean(self, tmp_path):
        codes = lint_snippet(
            tmp_path,
            '''
            """Mod."""
            import time
            def proc(env):
                time.sleep(0.1)
                yield 1.0
            ''',
            rel="repro/bench/ok.py",
        )
        assert "ANA007" not in codes


class TestRealTree:
    def test_repo_src_is_lint_clean(self):
        issues = lint_paths([REPO_SRC])
        assert issues == [], "\n".join(i.describe() for i in issues)

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        issues = lint_file(bad, tmp_path)
        assert [i.code for i in issues] == ["ANA000"]
